//! Shape checks against the paper's claims, at test-sized scale: these
//! assert the *relative* behaviours the paper reports (who wins, what
//! grows), not absolute seconds.

use dcdatalog_repro::datagen;
use dcdatalog_repro::engine::{queries, Engine, EngineConfig, Tuple};
use dcdatalog_repro::runtime::simulator::{
    figure3_workload, simulate, SimConfig, SimStrategy, SimWorkload,
};

/// Figure 3: DWS ≺ SSP ≺ Global on the worked example, with DWS roughly
/// halving Global (paper: 67 vs 128 units).
#[test]
fn fig3_schedule_ordering() {
    let w = figure3_workload();
    let cfg = SimConfig::default();
    let g = simulate(&w, &cfg, SimStrategy::Global).makespan;
    let s = simulate(&w, &cfg, SimStrategy::Ssp(1)).makespan;
    let d = simulate(&w, &cfg, SimStrategy::Dws { omega: 4, tau: 3 }).makespan;
    assert!(
        d < s && s < g,
        "expected DWS < SSP < Global, got {d}/{s}/{g}"
    );
    let ratio = d as f64 / g as f64;
    let paper = 67.0 / 128.0;
    assert!(
        (ratio - paper).abs() < 0.15,
        "DWS/Global {ratio:.2} should be near the paper's {paper:.2}"
    );
}

/// Figure 8 shape (simulated, 32 workers, realistic cost model): DWS best,
/// Global worst.
#[test]
fn fig8_strategy_ordering_at_32_workers() {
    let edges: Vec<(u64, u64)> = datagen::livejournal_like(20_000, 0xDC_DA7A ^ 0x11)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    let cfg = SimConfig::realistic();
    let w = |n| SimWorkload::cc_partitioned(&edges, n);
    let g = simulate(&w(32), &cfg, SimStrategy::Global).makespan;
    let s = simulate(&w(32), &cfg, SimStrategy::Ssp(5)).makespan;
    let d = simulate(&w(32), &cfg, SimStrategy::DwsAuto).makespan;
    assert!(d < g, "DWS ({d}) must beat Global ({g})");
    assert!(s < g, "SSP ({s}) must beat Global ({g})");
    assert!(d <= s, "DWS ({d}) must be at least as good as SSP ({s})");
}

/// Figure 9(a) shape: simulated makespan shrinks with workers.
#[test]
fn fig9a_worker_scaling_shape() {
    let edges: Vec<(u64, u64)> = datagen::livejournal_like(20_000, 1)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    let cfg = SimConfig::default();
    let mut prev = u64::MAX;
    for n in [1usize, 4, 16] {
        let m = simulate(
            &SimWorkload::cc_partitioned(&edges, n),
            &cfg,
            SimStrategy::DwsAuto,
        )
        .makespan;
        assert!(m < prev, "{n} workers: {m} should beat {prev}");
        prev = m;
    }
}

/// Figure 9(b) shape: evaluation time grows roughly linearly with data.
#[test]
fn fig9b_data_scaling_shape() {
    let mut times = Vec::new();
    for n in [2_000usize, 4_000, 8_000] {
        let edges = datagen::symmetrize(&datagen::rmat(n, 5));
        let mut e = Engine::new(queries::cc().unwrap(), EngineConfig::with_workers(1)).unwrap();
        e.load_edges("arc", &edges).unwrap();
        // Warm once, then take the best of 3 to damp noise.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let r = e.run().unwrap();
            best = best.min(r.stats.elapsed.as_secs_f64());
        }
        times.push(best);
    }
    // Doubling the data should not blow up super-linearly (paper: time
    // proportional to size). Allow generous noise: ratio in (1.2, 5).
    for w in times.windows(2) {
        let ratio = w[1] / w[0];
        assert!(
            (1.05..5.0).contains(&ratio),
            "doubling data changed time by {ratio:.2} ({times:?})"
        );
    }
}

/// Table 3 shape: broadcast routing exchanges strictly more tuples than
/// two-partition routing on the non-linear APSP, and the gap widens with
/// the graph.
#[test]
fn tab3_broadcast_exchanges_more() {
    let mut gaps = Vec::new();
    for n in [32usize, 64] {
        let edges = datagen::weighted(&datagen::rmat(n, 3), 50, 3);
        let rows: Vec<Tuple> = edges
            .iter()
            .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
            .collect();
        let mut routed =
            Engine::new(queries::apsp().unwrap(), EngineConfig::with_workers(4)).unwrap();
        routed.load_edb("warc", rows.clone()).unwrap();
        let mut cfg = EngineConfig::with_workers(4);
        cfg.broadcast_routing = true;
        let mut bcast = Engine::new(queries::apsp().unwrap(), cfg).unwrap();
        bcast.load_edb("warc", rows).unwrap();
        let routed_sent = routed.run().unwrap().stats.total_sent();
        let bcast_sent = bcast.run().unwrap().stats.total_sent();
        assert!(
            bcast_sent > routed_sent,
            "n={n}: broadcast {bcast_sent} ≤ routed {routed_sent}"
        );
        gaps.push(bcast_sent as f64 / routed_sent.max(1) as f64);
    }
    assert!(
        gaps[1] >= gaps[0] * 0.8,
        "gap should not collapse: {gaps:?}"
    );
}

/// Table 4 shape: disabling the §6.2 optimizations must cost measurable
/// extra work (the linear-scan aggregate path) without changing results.
#[test]
fn tab4_optimizations_speed_shape() {
    let edges = datagen::symmetrize(&datagen::rmat(3_000, 7));
    let run = |optimized: bool| {
        let mut e = Engine::new(
            queries::cc().unwrap(),
            EngineConfig::with_workers(1).optimizations(optimized),
        )
        .unwrap();
        e.load_edges("arc", &edges).unwrap();
        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        for _ in 0..2 {
            let r = e.run().unwrap();
            best = best.min(r.stats.elapsed.as_secs_f64());
            rows = r.sorted("cc");
        }
        (best, rows)
    };
    let (fast, rows_fast) = run(true);
    let (slow, rows_slow) = run(false);
    assert_eq!(rows_fast, rows_slow);
    assert!(
        slow > fast,
        "w/o optimizations ({slow:.4}s) should be slower than w/ ({fast:.4}s)"
    );
}
