//! Cross-crate integration tests: datagen → frontend → engine → baselines,
//! exercised through the workspace umbrella crate exactly the way a
//! downstream user would.

use dcdatalog_repro::baselines::Reference;
use dcdatalog_repro::datagen;
use dcdatalog_repro::engine::{queries, Engine, EngineConfig, Program, Strategy, Tuple};
use dcdatalog_repro::runtime::simulator::{simulate, SimConfig, SimStrategy, SimWorkload};

#[test]
fn generated_graph_through_engine_matches_reference() {
    let edges = datagen::rmat_with(48, 120, 17);
    let mut reference = Reference::new(queries::TC).unwrap();
    reference.load_edges("arc", &edges);
    let expected = reference.run().unwrap();

    let mut engine = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(3)).unwrap();
    engine.load_edges("arc", &edges).unwrap();
    let got = engine.run().unwrap();
    assert_eq!(got.sorted("tc"), expected["tc"]);
}

#[test]
fn engine_and_simulator_agree_on_components() {
    // The DES and the real engine implement the same CC semantics; their
    // final labelings must agree on a generated graph.
    let edges = datagen::gnp(60, 0.06, 3);
    let sym = datagen::symmetrize(&edges);

    let mut engine = Engine::new(queries::cc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    engine.load_edges("arc", &sym).unwrap();
    let result = engine.run().unwrap();

    let sim_edges: Vec<(u64, u64)> = edges.iter().map(|&(a, b)| (a as u64, b as u64)).collect();
    let sim = simulate(
        &SimWorkload::cc_partitioned(&sim_edges, 4),
        &SimConfig::default(),
        SimStrategy::DwsAuto,
    );

    for row in result.relation("cc") {
        let v = row.values()[0].expect_int() as u64;
        let label = row.values()[1].expect_int() as u64;
        assert_eq!(sim.labels[&v], label, "vertex {v}");
    }
}

#[test]
fn broadcast_and_routed_runs_agree() {
    let edges = datagen::weighted(&datagen::rmat_with(32, 90, 9), 50, 9);
    let rows: Vec<Tuple> = edges
        .iter()
        .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
        .collect();
    let mut routed = Engine::new(queries::apsp().unwrap(), EngineConfig::with_workers(3)).unwrap();
    routed.load_edb("warc", rows.clone()).unwrap();
    let mut cfg = EngineConfig::with_workers(3);
    cfg.broadcast_routing = true;
    let mut broadcast = Engine::new(queries::apsp().unwrap(), cfg).unwrap();
    broadcast.load_edb("warc", rows).unwrap();
    let a = routed.run().unwrap();
    let b = broadcast.run().unwrap();
    assert_eq!(a.sorted("apsp"), b.sorted("apsp"));
    // Broadcast must exchange at least as many tuples.
    assert!(b.stats.total_sent() >= a.stats.total_sent());
}

#[test]
fn strategies_agree_on_a_custom_program() {
    // A program not among the paper's eight: weighted reachability with a
    // cost cap (constraint in recursion).
    let src = "cheap(Y, min<C>) <- Y = start, C = 0.
               cheap(Y, min<C>) <- cheap(X, C0), warc(X, Y, W), C = C0 + W, C <= 40.";
    let edges = datagen::weighted(&datagen::rmat_with(64, 200, 5), 15, 5);
    let mut results = Vec::new();
    for strat in [Strategy::Global, Strategy::Ssp { s: 2 }, Strategy::Dws] {
        let program = Program::parse(src).unwrap().with_param("start", 0i64);
        let mut e = Engine::new(program, EngineConfig::with_workers(3).strategy(strat)).unwrap();
        e.load_weighted_edges("warc", &edges).unwrap();
        results.push(e.run().unwrap().sorted("cheap"));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    // The cap must hold.
    assert!(results[0].iter().all(|r| r.values()[1].expect_int() <= 40));
}

#[test]
fn timeout_aborts_cleanly_and_engine_remains_usable() {
    let edges: Vec<(i64, i64)> = (0..300).map(|i| (i, (i + 1) % 300)).collect();
    let mut cfg = EngineConfig::with_workers(2);
    cfg.timeout = Some(std::time::Duration::from_nanos(1));
    let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
    e.load_edges("arc", &edges).unwrap();
    let err = e.run().unwrap_err();
    assert!(err.to_string().contains("timed out"), "{err}");
    // A fresh engine over the same data still works.
    let mut e2 = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    e2.load_edges("arc", &[(1, 2)]).unwrap();
    assert_eq!(e2.run().unwrap().relation("tc").len(), 1);
}

#[test]
fn optimizations_do_not_change_results() {
    let edges = datagen::symmetrize(&datagen::livejournal_like(100_000, 11));
    let mut on = Engine::new(queries::cc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    on.load_edges("arc", &edges).unwrap();
    let mut off = Engine::new(
        queries::cc().unwrap(),
        EngineConfig::with_workers(2).optimizations(false),
    )
    .unwrap();
    off.load_edges("arc", &edges).unwrap();
    assert_eq!(
        on.run().unwrap().sorted("cc"),
        off.run().unwrap().sorted("cc")
    );
}

#[test]
fn delivery_on_generated_bom_matches_reference() {
    let assbl = datagen::n_tree(400, 23);
    let basic = datagen::trees::leaf_days(&assbl, 30, 23);
    let mut reference = Reference::new(queries::DELIVERY).unwrap();
    reference.load_edges("assbl", &assbl);
    reference.load_edges("basic", &basic);
    let expected = reference.run().unwrap();

    let mut engine =
        Engine::new(queries::delivery().unwrap(), EngineConfig::with_workers(4)).unwrap();
    engine.load_edges("assbl", &assbl).unwrap();
    engine.load_edges("basic", &basic).unwrap();
    let got = engine.run().unwrap();
    assert_eq!(got.sorted("results"), expected["results"]);
}

#[test]
fn frontend_explain_is_exposed_end_to_end() {
    let e = Engine::new(queries::apsp().unwrap(), EngineConfig::with_workers(2)).unwrap();
    let text = e.explain();
    assert!(text.contains("routes=[0, 1]"), "{text}");
    assert!(text.contains("⋈index path"), "{text}");
}
