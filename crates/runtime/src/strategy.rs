//! Coordination strategy selection (§4).

use crate::dws::DwsConfig;

/// How workers coordinate between local iterations of the parallel
/// semi-naive evaluation.
#[derive(Clone, Debug, Default)]
pub enum Strategy {
    /// Algorithm 1: a global barrier after every iteration (the paper's
    /// `Global` baseline, coordination-wise equivalent to DeALS-MC).
    Global,
    /// Stale-Synchronous Parallel: fast workers may run up to `s` local
    /// iterations ahead of the slowest active worker (§4.1).
    Ssp {
        /// Staleness bound; the paper tunes `s = 5` empirically.
        s: usize,
    },
    /// The paper's contribution: Dynamic Weight-based Strategy with
    /// on-the-fly `ω_i`/`τ_i` from queueing theory (§4.2).
    #[default]
    Dws,
    /// DWS with explicit tuning.
    DwsWith(DwsConfig),
}

impl Strategy {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Global => "Global",
            Strategy::Ssp { .. } => "SSP",
            Strategy::Dws | Strategy::DwsWith(_) => "DWS",
        }
    }

    /// DWS configuration if this strategy is DWS-based.
    pub fn dws_config(&self) -> Option<DwsConfig> {
        match self {
            Strategy::Dws => Some(DwsConfig::default()),
            Strategy::DwsWith(cfg) => Some(cfg.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Strategy::Global.name(), "Global");
        assert_eq!(Strategy::Ssp { s: 5 }.name(), "SSP");
        assert_eq!(Strategy::Dws.name(), "DWS");
        assert_eq!(Strategy::DwsWith(DwsConfig::default()).name(), "DWS");
    }

    #[test]
    fn dws_config_only_for_dws() {
        assert!(Strategy::Global.dws_config().is_none());
        assert!(Strategy::Ssp { s: 1 }.dws_config().is_none());
        assert!(Strategy::Dws.dws_config().is_some());
    }

    #[test]
    fn default_is_dws() {
        assert_eq!(Strategy::default().name(), "DWS");
    }
}
