//! Multi-Producer Single-Consumer queue (first-party `SegQueue`
//! replacement).
//!
//! The runtime's cross-worker fan-in paths (and the termination tests)
//! need a queue any worker can push into while one owner drains it.
//! [`SpscQueue`](crate::spsc::SpscQueue) covers the 1→1 paths; this
//! module covers n→1 with the same standard-library-only discipline.
//!
//! Design: Vyukov's non-intrusive MPSC linked queue. Producers are
//! lock-free — `push` is one allocation, one `swap`, one `store` — and
//! never contend with the consumer. The consumer side holds a tiny
//! `Mutex` around its head pointer, which producers never touch, so the
//! lock is uncontended in the single-consumer pattern this queue is
//! for, while keeping the API safe for any caller.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

impl<T> Node<T> {
    fn alloc(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// An unbounded MPSC FIFO queue: lock-free producers, mutex-guarded
/// (but producer-independent) consumer.
pub struct MpscQueue<T> {
    /// Last enqueued node; producers swap themselves in here.
    tail: AtomicPtr<Node<T>>,
    /// The stub/consumed node preceding the first live element; only the
    /// consumer path takes this lock.
    head: Mutex<*mut Node<T>>,
    /// Element count — `push` increments after linking, `pop` decrements
    /// after unlinking, so `len` may transiently lag but converges.
    len: AtomicUsize,
}

// SAFETY: nodes are owned by the queue; producers only touch `tail` and
// the `next` pointer of the node they previously owned, the consumer
// only walks from `head` under its mutex. `T` crosses threads, hence
// `T: Send` on both bounds.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let stub = Node::alloc(None);
        MpscQueue {
            tail: AtomicPtr::new(stub),
            head: Mutex::new(stub),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueues `value`. Safe from any number of threads concurrently;
    /// never blocks (one heap allocation per element).
    pub fn push(&self, value: T) {
        let node = Node::alloc(Some(value));
        // Claim the tail slot, then link the previous tail to us. Between
        // the swap and the store the queue is momentarily "split"; pop
        // observes that as a transient empty and retries later.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` is a node we have exclusive linking rights to —
        // only the producer that swapped it out of `tail` stores its
        // `next`, and the consumer frees it only after `next` is read
        // non-null.
        unsafe {
            (*prev).next.store(node, Ordering::Release);
        }
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Dequeues the oldest element, or `None` when the queue is empty
    /// (or momentarily split by an in-flight `push`).
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.lock().unwrap();
        let stub = *head;
        // SAFETY: `*head` is always a valid node owned by the consumer
        // side; producers never read or free it.
        let next = unsafe { (*stub).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` was published by a producer's release-store,
        // so its `value` write happened-before; the old stub is ours to
        // free now that head has moved past it.
        let value = unsafe {
            *head = next;
            let v = (*next).value.take();
            drop(Box::from_raw(stub));
            v
        };
        self.len.fetch_sub(1, Ordering::Release);
        debug_assert!(value.is_some(), "non-stub node carries a value");
        value
    }

    /// Number of enqueued elements (exact when quiescent, approximate
    /// under concurrent pushes).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        MpscQueue::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Drain live elements, then free the final stub.
        while self.pop().is_some() {}
        let stub = *self.head.get_mut().unwrap();
        // SAFETY: after draining, `stub` is the only remaining node.
        unsafe {
            drop(Box::from_raw(stub));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpscQueue::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = MpscQueue::new();
        for round in 0..1000 {
            q.push(round);
            q.push(round + 1000);
            assert_eq!(q.pop(), Some(round));
            assert_eq!(q.pop(), Some(round + 1000));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn many_producers_one_consumer() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 20_000;
        let q = Arc::new(MpscQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i);
                }
            }));
        }
        // Consume concurrently with production.
        let mut seen = Vec::with_capacity((PRODUCERS * PER_PRODUCER) as usize);
        while seen.len() < (PRODUCERS * PER_PRODUCER) as usize {
            match q.pop() {
                Some(v) => seen.push(v),
                None => std::thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        // Every value exactly once, and per-producer order preserved.
        let mut last = vec![None::<u64>; PRODUCERS as usize];
        for &v in &seen {
            let p = (v / PER_PRODUCER) as usize;
            assert!(last[p] < Some(v), "per-producer FIFO violated");
            last[p] = Some(v);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), (PRODUCERS * PER_PRODUCER) as usize);
    }

    #[test]
    fn drop_releases_queued_values() {
        let sentinel = Arc::new(());
        {
            let q = MpscQueue::new();
            for _ in 0..5 {
                q.push(Arc::clone(&sentinel));
            }
            assert_eq!(Arc::strong_count(&sentinel), 6);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let q = MpscQueue::new();
        q.push('a');
        q.push('b');
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
