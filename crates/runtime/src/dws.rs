//! The Dynamic Weight-based Strategy controller (§4.2).
//!
//! Each worker owns a [`DwsController`] that models itself as a G/G/1
//! queue. Producers stamp batches with their send time; the consumer folds
//! per-source inter-arrival statistics `(λ_j, σ_a,j)`, aggregates them with
//! Equation (1), combines with its own service statistics `(μ, σ_s)`, and
//! sets
//!
//! * `ω_i = L_q` — Kingman's estimate of the mean queue length (Eq. 2),
//! * `τ_i = L_q / λ = ω_i / λ` — the mean waiting time,
//!
//! so the worker waits for tuples only when the queueing model predicts a
//! meaningful batch will form (Algorithm 2, lines 5–8), with a hard
//! timeout as deadlock avoidance.

use dcd_common::stats::Ewma;
use std::time::{Duration, Instant};

/// Tuning for the DWS controller.
#[derive(Clone, Debug)]
pub struct DwsConfig {
    /// EWMA weight for arrival/service samples (non-stationary workload ⇒
    /// favour recent samples).
    pub ewma_alpha: f64,
    /// Hard cap on `τ_i` — the deadlock-avoidance timeout of Alg. 2 l.7.
    pub max_wait: Duration,
    /// Cap on `ω_i` so a near-saturated queue (ρ → 1) cannot demand an
    /// unbounded batch.
    pub max_omega: usize,
    /// Minimum EWMA samples before an arrival track or the service
    /// estimator is trusted. A single sample carries variance 0, which
    /// lets Kingman's formula compute ρ and L_q from one observation —
    /// wildly unstable at the start of a stratum.
    pub min_samples: u64,
}

impl Default for DwsConfig {
    fn default() -> Self {
        DwsConfig {
            ewma_alpha: 0.25,
            max_wait: Duration::from_millis(2),
            max_omega: 1 << 16,
            min_samples: 8,
        }
    }
}

/// Per-source arrival tracker: `λ_j` and `σ_a,j` from batch timestamps.
struct ArrivalTrack {
    /// EWMA of per-tuple inter-arrival time (seconds).
    inter: Ewma,
    last: Option<Instant>,
    /// Tuples received from this source since the last parameter update
    /// (the `|M_i^j|` weight of Eq. 1).
    recent: u64,
}

impl ArrivalTrack {
    fn new(alpha: f64) -> Self {
        ArrivalTrack {
            inter: Ewma::new(alpha),
            last: None,
            recent: 0,
        }
    }
}

/// The per-worker DWS parameter estimator.
pub struct DwsController {
    cfg: DwsConfig,
    arrivals: Vec<ArrivalTrack>,
    /// EWMA of per-tuple service time (seconds).
    service: Ewma,
    omega: usize,
    tau: Duration,
}

impl DwsController {
    /// Creates a controller for a worker receiving from `sources` peers.
    pub fn new(sources: usize, cfg: DwsConfig) -> Self {
        let alpha = cfg.ewma_alpha;
        DwsController {
            arrivals: (0..sources).map(|_| ArrivalTrack::new(alpha)).collect(),
            service: Ewma::new(alpha),
            omega: 0,
            tau: Duration::ZERO,
            cfg,
        }
    }

    /// Records the arrival of `ntuples` from source `from`, stamped
    /// `sent_at` by the producer.
    pub fn on_batch(&mut self, from: usize, ntuples: usize, sent_at: Instant) {
        if ntuples == 0 {
            return;
        }
        let track = &mut self.arrivals[from];
        if let Some(prev) = track.last {
            let gap = sent_at.saturating_duration_since(prev).as_secs_f64();
            track.inter.push(gap / ntuples as f64);
        }
        track.last = Some(sent_at);
        track.recent += ntuples as u64;
    }

    /// Records one completed local iteration that processed
    /// `tuples_processed` delta tuples in `elapsed`.
    pub fn on_iteration(&mut self, tuples_processed: usize, elapsed: Duration) {
        if tuples_processed == 0 {
            return;
        }
        self.service
            .push(elapsed.as_secs_f64() / tuples_processed as f64);
    }

    /// Recomputes `ω_i` and `τ_i` (Algorithm 2, line 12).
    pub fn update_params(&mut self) {
        // Equation (1): weighted harmonic mean of per-source rates and the
        // matching pooled variance, weighted by |M_i^j| (recent counts).
        let mut weight_sum = 0.0;
        let mut inv_rate_weighted = 0.0;
        let mut var_weighted = 0.0;
        let min_samples = self.cfg.min_samples;
        for t in &mut self.arrivals {
            if t.recent == 0 || t.inter.count() < min_samples || t.inter.mean() <= 0.0 {
                t.recent = 0;
                continue;
            }
            let w = t.recent as f64;
            let inter_mean = t.inter.mean(); // = 1/λ_j
            weight_sum += w;
            inv_rate_weighted += w * inter_mean;
            var_weighted += w * (t.inter.variance() + inter_mean * inter_mean);
            // Exponential decay of window counts between updates.
            t.recent /= 2;
        }
        if weight_sum == 0.0 || self.service.count() < min_samples || self.service.mean() <= 0.0 {
            self.omega = 0;
            self.tau = Duration::ZERO;
            return;
        }
        let inv_lambda = inv_rate_weighted / weight_sum; // 1/λ
        let lambda = 1.0 / inv_lambda;
        let sigma_a2 = (var_weighted / weight_sum - inv_lambda * inv_lambda).max(0.0);

        let mu = 1.0 / self.service.mean();
        let sigma_s2 = self.service.variance();

        let rho = lambda / mu;
        if rho >= 1.0 {
            // Saturated queue: waiting cannot pay off — proceed immediately.
            self.omega = 0;
            self.tau = Duration::ZERO;
            return;
        }
        // Equation (2): Kingman.
        let ca2 = lambda * lambda * sigma_a2;
        let cs2 = mu * mu * sigma_s2;
        let lq = rho * rho * (ca2 + cs2) / (2.0 * (1.0 - rho));
        let omega = lq.round().max(0.0) as usize;
        self.omega = omega.min(self.cfg.max_omega);
        let tau = Duration::from_secs_f64((self.omega as f64 * inv_lambda).max(0.0));
        self.tau = tau.min(self.cfg.max_wait);
    }

    /// Current threshold `ω_i`: proceed when the delta holds at least this
    /// many tuples.
    #[inline]
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Current wait budget `τ_i`.
    #[inline]
    pub fn tau(&self) -> Duration {
        self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn cold_controller_never_waits() {
        let mut c = DwsController::new(3, DwsConfig::default());
        c.update_params();
        assert_eq!(c.omega(), 0);
        assert_eq!(c.tau(), Duration::ZERO);
    }

    #[test]
    fn saturated_queue_disables_waiting() {
        let mut c = DwsController::new(1, DwsConfig::default());
        let base = t0();
        // Arrivals every 1 µs per tuple, service 1 ms per tuple ⇒ ρ ≫ 1.
        for i in 1..20 {
            c.on_batch(0, 1, base + Duration::from_micros(i));
        }
        for _ in 0..10 {
            c.on_iteration(10, Duration::from_millis(10));
        }
        c.update_params();
        assert_eq!(c.omega(), 0, "ρ ≥ 1 must disable waiting");
    }

    #[test]
    fn stable_queue_yields_positive_params() {
        let mut c = DwsController::new(1, DwsConfig::default());
        let base = t0();
        // Bursty arrivals (alternating 100 µs / 1900 µs gaps ⇒ mean 1 ms,
        // high C_a²) with service at 0.9 ms/tuple ⇒ ρ = 0.9: Kingman
        // predicts a queue of a few tuples.
        let mut ts = base;
        for i in 0..200 {
            ts += Duration::from_micros(if i % 2 == 0 { 100 } else { 1900 });
            c.on_batch(0, 1, ts);
            if i % 5 == 0 {
                c.on_iteration(5, Duration::from_micros(4500));
            }
        }
        c.update_params();
        // With ρ near 1 and high arrival variability, Kingman predicts a
        // positive queue.
        assert!(c.omega() >= 1, "omega = {}", c.omega());
        assert!(c.tau() > Duration::ZERO);
        assert!(c.tau() <= DwsConfig::default().max_wait);
    }

    #[test]
    fn low_utilization_queue_predicts_no_waiting() {
        let mut c = DwsController::new(1, DwsConfig::default());
        let base = t0();
        // Steady arrivals every 1 ms, service 0.4 ms ⇒ ρ = 0.4, low
        // variability: L_q ≈ 0 ⇒ proceed immediately.
        let mut ts = base;
        for i in 0..100 {
            ts += Duration::from_millis(1);
            c.on_batch(0, 1, ts);
            if i % 5 == 0 {
                c.on_iteration(5, Duration::from_micros(2000));
            }
        }
        c.update_params();
        assert_eq!(c.omega(), 0);
    }

    #[test]
    fn tau_capped_by_max_wait() {
        let cfg = DwsConfig {
            max_wait: Duration::from_micros(50),
            ..DwsConfig::default()
        };
        let mut c = DwsController::new(1, cfg);
        let base = t0();
        let mut ts = base;
        for i in 0..100 {
            // Slow, bursty arrivals: 10 ms apart ⇒ τ would be large.
            ts += Duration::from_millis(10);
            c.on_batch(0, 1, ts);
            if i % 10 == 0 {
                c.on_iteration(10, Duration::from_millis(5));
            }
        }
        c.update_params();
        assert!(c.tau() <= Duration::from_micros(50));
    }

    #[test]
    fn single_sample_does_not_prime_the_estimator() {
        // Regression: `Ewma::is_primed()` is true after one sample with
        // variance 0, which used to let Kingman's formula compute ρ and
        // L_q from a single observation. The controller must not trust
        // λ/μ until `min_samples` observations exist on both sides.
        let cfg = DwsConfig {
            min_samples: 8,
            ..DwsConfig::default()
        };
        let mut c = DwsController::new(1, cfg);
        let base = t0();
        // Two batches ⇒ one inter-arrival sample; one service sample.
        c.on_batch(0, 1, base + Duration::from_micros(100));
        c.on_batch(0, 1, base + Duration::from_micros(2000));
        c.on_iteration(1, Duration::from_micros(1800));
        c.update_params();
        assert_eq!(c.omega(), 0, "one sample per estimator must not prime");
        assert_eq!(c.tau(), Duration::ZERO);

        // Once both estimators cross min_samples with a stable-but-bursty
        // pattern, the controller may produce parameters again.
        let mut ts = base + Duration::from_micros(2000);
        for i in 0..200 {
            ts += Duration::from_micros(if i % 2 == 0 { 100 } else { 1900 });
            c.on_batch(0, 1, ts);
            if i % 5 == 0 {
                c.on_iteration(5, Duration::from_micros(4500));
            }
        }
        c.update_params();
        assert!(c.omega() >= 1, "primed controller should wait again");
    }

    #[test]
    fn empty_batches_ignored() {
        let mut c = DwsController::new(2, DwsConfig::default());
        c.on_batch(0, 0, t0());
        c.on_iteration(0, Duration::from_millis(1));
        c.update_params();
        assert_eq!(c.omega(), 0);
    }

    #[test]
    fn multi_source_weights_by_volume() {
        let mut c = DwsController::new(2, DwsConfig::default());
        let base = t0();
        let mut ts = base;
        // Source 0: high volume, steady. Source 1: trickle.
        for i in 0..100 {
            ts += Duration::from_micros(100);
            c.on_batch(0, 10, ts);
            if i % 20 == 0 {
                c.on_batch(1, 1, ts);
            }
        }
        c.on_iteration(1000, Duration::from_micros(500));
        c.update_params();
        // Should produce a finite, bounded configuration.
        assert!(c.omega() <= DwsConfig::default().max_omega);
    }
}
