//! The per-worker message buffer matrix `M_i^j` (§4.1–4.2).
//!
//! Worker `W_j` sends the slice of its freshly derived delta that hashes to
//! worker `W_i` by appending a [`Batch`] to `M_i^j`. Each `(i, j)` cell is a
//! dedicated [`SpscQueue`], so races stay pairwise and lock-free (§6.1).
//!
//! Batches carry their rows as a flat [`Frame`] — one contiguous `Vec` of
//! values with a fixed arity stride — instead of a `Vec<Tuple>`, so the
//! exchange path moves one allocation per batch rather than one per row.
//! The matrix also accounts exchanged *bytes*, not just batches: every
//! successful [`WorkerEndpoints::send`] adds the frame's payload size to
//! the producer's byte counter, every [`WorkerEndpoints::recv`] to the
//! consumer's.

use crate::spsc::{Consumer, Producer, SpscQueue};
use dcd_common::{Frame, WorkerId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A batch of derived rows for one recursive relation, stamped with its
/// send time so the receiver can maintain arrival statistics for DWS.
pub struct Batch {
    /// Which recursive relation the rows belong to (catalog id).
    pub rel: u32,
    /// Which of the relation's partition columns routed these rows
    /// (index into the physical plan's `partition_cols`, §4.3).
    pub route: u8,
    /// The rows, flat and arity-strided.
    pub frame: Frame,
    /// When the producer finished the iteration that derived these rows.
    pub sent_at: Instant,
    /// Producer worker.
    pub from: WorkerId,
}

impl Batch {
    /// Number of rows in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// Whether the batch carries no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// Payload bytes that cross the exchange.
    #[inline]
    pub fn payload_bytes(&self) -> u64 {
        self.frame.payload_bytes()
    }
}

/// The full `n × n` matrix of SPSC queues.
///
/// `queues[i][j]` carries batches from producer `j` to consumer `i`.
pub struct BufferMatrix {
    queues: Vec<Vec<SpscQueue<Batch>>>,
    claimed: Vec<AtomicBool>,
    /// Bytes pushed by each producer (indexed by producer id).
    sent_bytes: Vec<AtomicU64>,
    /// Bytes drained by each consumer (indexed by consumer id).
    recv_bytes: Vec<AtomicU64>,
    n: usize,
}

/// Worker-local endpoints: producers towards every peer plus consumers for
/// the worker's own row of the matrix.
pub struct WorkerEndpoints<'a> {
    /// `to_peer[k]` sends to worker `k` (slot `me` unused but present so
    /// indexing matches worker ids; self-sends are legal and cheap).
    pub to_peer: Vec<Producer<'a, Batch>>,
    /// `from_peer[k]` receives batches produced by worker `k`.
    pub from_peer: Vec<Consumer<'a, Batch>>,
    /// This worker's id.
    pub me: WorkerId,
    sent_bytes: &'a AtomicU64,
    recv_bytes: &'a AtomicU64,
}

impl BufferMatrix {
    /// Builds the matrix for `n` workers with per-queue capacity
    /// `cap` batches.
    pub fn new(n: usize, cap: usize) -> Self {
        assert!(n >= 1);
        let queues = (0..n)
            .map(|_| (0..n).map(|_| SpscQueue::new(cap)).collect())
            .collect();
        BufferMatrix {
            queues,
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            sent_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recv_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            n,
        }
    }

    /// Number of workers.
    #[inline]
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Claims the endpoints for worker `me`. Panics on double-claim — each
    /// worker thread must claim exactly once (that is what makes the SPSC
    /// queues single-producer/single-consumer).
    pub fn claim(&self, me: WorkerId) -> WorkerEndpoints<'_> {
        assert!(me < self.n, "worker id out of range");
        assert!(
            !self.claimed[me].swap(true, Ordering::SeqCst),
            "worker {me} endpoints already claimed"
        );
        let to_peer = (0..self.n)
            .map(|k| {
                // Producer side of queue (consumer = k, producer = me).
                let (p, _c) = self.queues[k][me].split();
                p
            })
            .collect();
        let from_peer = (0..self.n)
            .map(|j| {
                let (_p, c) = self.queues[me][j].split();
                c
            })
            .collect();
        WorkerEndpoints {
            to_peer,
            from_peer,
            me,
            sent_bytes: &self.sent_bytes[me],
            recv_bytes: &self.recv_bytes[me],
        }
    }

    /// Whether every queue destined for worker `i` is currently empty
    /// (used by idle checks; approximate under concurrency).
    pub fn inbound_empty(&self, i: WorkerId) -> bool {
        self.queues[i].iter().all(|q| q.is_empty())
    }

    /// Total queued batches destined for worker `i` (approximate).
    pub fn inbound_len(&self, i: WorkerId) -> usize {
        self.queues[i].iter().map(|q| q.len()).sum()
    }

    /// Payload bytes pushed by worker `j` so far.
    pub fn sent_bytes(&self, j: WorkerId) -> u64 {
        self.sent_bytes[j].load(Ordering::Relaxed)
    }

    /// Payload bytes drained by worker `i` so far.
    pub fn recv_bytes(&self, i: WorkerId) -> u64 {
        self.recv_bytes[i].load(Ordering::Relaxed)
    }

    /// Total payload bytes exchanged (sum over producers).
    pub fn exchanged_bytes(&self) -> u64 {
        self.sent_bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }
}

impl WorkerEndpoints<'_> {
    /// True if any inbound queue has a batch ready.
    pub fn has_inbound(&self) -> bool {
        self.from_peer.iter().any(|c| !c.is_empty())
    }

    /// Pushes `batch` towards `dest`, accounting its bytes on success.
    /// On a full queue the batch is handed back, exactly like
    /// [`Producer::push`].
    pub fn send(&mut self, dest: WorkerId, batch: Batch) -> Result<(), Batch> {
        let bytes = batch.payload_bytes();
        self.to_peer[dest].push(batch)?;
        self.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Pops the next batch produced by worker `from`, accounting its bytes.
    pub fn recv(&mut self, from: WorkerId) -> Option<Batch> {
        let batch = self.from_peer[from].pop()?;
        self.recv_bytes
            .fetch_add(batch.payload_bytes(), Ordering::Relaxed);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_common::Tuple;

    fn batch(rel: u32, from: WorkerId, vals: &[i64]) -> Batch {
        let tuples: Vec<Tuple> = vals.iter().map(|&v| Tuple::from_ints(&[v])).collect();
        Batch {
            rel,
            route: 0,
            frame: Frame::from_tuples(1, &tuples),
            sent_at: Instant::now(),
            from,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let m = BufferMatrix::new(2, 16);
        let mut e0 = m.claim(0);
        let mut e1 = m.claim(1);
        e0.send(1, batch(0, 0, &[1, 2])).ok().unwrap();
        let got = e1.recv(0).unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.len(), 2);
        assert!(e1.recv(1).is_none());
        assert!(e0.recv(1).is_none());
    }

    #[test]
    fn self_send_works() {
        let m = BufferMatrix::new(1, 4);
        let mut e = m.claim(0);
        e.send(0, batch(7, 0, &[9])).ok().unwrap();
        assert!(e.has_inbound());
        let got = e.recv(0).unwrap();
        assert_eq!(got.rel, 7);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let m = BufferMatrix::new(2, 4);
        let _a = m.claim(1);
        let _b = m.claim(1);
    }

    #[test]
    fn inbound_accounting() {
        let m = BufferMatrix::new(3, 8);
        let mut e2 = m.claim(2);
        assert!(m.inbound_empty(0));
        e2.send(0, batch(0, 2, &[1])).ok().unwrap();
        assert!(!m.inbound_empty(0));
        assert_eq!(m.inbound_len(0), 1);
        assert!(m.inbound_empty(1));
    }

    #[test]
    fn byte_accounting_tracks_payloads() {
        let m = BufferMatrix::new(2, 8);
        let mut e0 = m.claim(0);
        let mut e1 = m.claim(1);
        let b = batch(0, 0, &[1, 2, 3]);
        let bytes = b.payload_bytes();
        assert!(bytes > 0);
        e0.send(1, b).ok().unwrap();
        assert_eq!(m.sent_bytes(0), bytes);
        assert_eq!(m.exchanged_bytes(), bytes);
        assert_eq!(m.recv_bytes(1), 0, "not drained yet");
        e1.recv(0).unwrap();
        assert_eq!(m.recv_bytes(1), bytes);
    }

    #[test]
    fn cross_thread_exchange() {
        let m = BufferMatrix::new(2, 64);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut e0 = m.claim(0);
                for i in 0..100 {
                    let mut b = batch(0, 0, &[i]);
                    while let Err(back) = e0.send(1, b) {
                        b = back;
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                let mut e1 = m.claim(1);
                let mut seen = 0;
                while seen < 100 {
                    if let Some(b) = e1.recv(0) {
                        assert_eq!(b.frame.tuple(0), Tuple::from_ints(&[seen]));
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(m.exchanged_bytes(), m.recv_bytes(1));
    }
}
