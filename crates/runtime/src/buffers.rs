//! The per-worker message buffer matrix `M_i^j` (§4.1–4.2).
//!
//! Worker `W_j` sends the slice of its freshly derived delta that hashes to
//! worker `W_i` by appending a [`Batch`] to `M_i^j`. Each `(i, j)` cell is a
//! dedicated [`SpscQueue`], so races stay pairwise and lock-free (§6.1).

use crate::spsc::{Consumer, Producer, SpscQueue};
use dcd_common::{Tuple, WorkerId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A batch of derived tuples for one recursive relation, stamped with its
/// send time so the receiver can maintain arrival statistics for DWS.
pub struct Batch {
    /// Which recursive relation the tuples belong to (catalog id).
    pub rel: u32,
    /// Which of the relation's partition columns routed these tuples
    /// (index into the physical plan's `partition_cols`, §4.3).
    pub route: u8,
    /// The tuples.
    pub tuples: Vec<Tuple>,
    /// When the producer finished the iteration that derived these tuples.
    pub sent_at: Instant,
    /// Producer worker.
    pub from: WorkerId,
}

/// The full `n × n` matrix of SPSC queues.
///
/// `queues[i][j]` carries batches from producer `j` to consumer `i`.
pub struct BufferMatrix {
    queues: Vec<Vec<SpscQueue<Batch>>>,
    claimed: Vec<AtomicBool>,
    n: usize,
}

/// Worker-local endpoints: producers towards every peer plus consumers for
/// the worker's own row of the matrix.
pub struct WorkerEndpoints<'a> {
    /// `to_peer[k]` sends to worker `k` (slot `me` unused but present so
    /// indexing matches worker ids; self-sends are legal and cheap).
    pub to_peer: Vec<Producer<'a, Batch>>,
    /// `from_peer[k]` receives batches produced by worker `k`.
    pub from_peer: Vec<Consumer<'a, Batch>>,
    /// This worker's id.
    pub me: WorkerId,
}

impl BufferMatrix {
    /// Builds the matrix for `n` workers with per-queue capacity
    /// `cap` batches.
    pub fn new(n: usize, cap: usize) -> Self {
        assert!(n >= 1);
        let queues = (0..n)
            .map(|_| (0..n).map(|_| SpscQueue::new(cap)).collect())
            .collect();
        BufferMatrix {
            queues,
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            n,
        }
    }

    /// Number of workers.
    #[inline]
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Claims the endpoints for worker `me`. Panics on double-claim — each
    /// worker thread must claim exactly once (that is what makes the SPSC
    /// queues single-producer/single-consumer).
    pub fn claim(&self, me: WorkerId) -> WorkerEndpoints<'_> {
        assert!(me < self.n, "worker id out of range");
        assert!(
            !self.claimed[me].swap(true, Ordering::SeqCst),
            "worker {me} endpoints already claimed"
        );
        let to_peer = (0..self.n)
            .map(|k| {
                // Producer side of queue (consumer = k, producer = me).
                let (p, _c) = self.queues[k][me].split();
                p
            })
            .collect();
        let from_peer = (0..self.n)
            .map(|j| {
                let (_p, c) = self.queues[me][j].split();
                c
            })
            .collect();
        WorkerEndpoints {
            to_peer,
            from_peer,
            me,
        }
    }

    /// Whether every queue destined for worker `i` is currently empty
    /// (used by idle checks; approximate under concurrency).
    pub fn inbound_empty(&self, i: WorkerId) -> bool {
        self.queues[i].iter().all(|q| q.is_empty())
    }

    /// Total queued batches destined for worker `i` (approximate).
    pub fn inbound_len(&self, i: WorkerId) -> usize {
        self.queues[i].iter().map(|q| q.len()).sum()
    }
}

impl WorkerEndpoints<'_> {
    /// True if any inbound queue has a batch ready.
    pub fn has_inbound(&self) -> bool {
        self.from_peer.iter().any(|c| !c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rel: u32, from: WorkerId, vals: &[i64]) -> Batch {
        Batch {
            rel,
            route: 0,
            tuples: vals.iter().map(|&v| Tuple::from_ints(&[v])).collect(),
            sent_at: Instant::now(),
            from,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let m = BufferMatrix::new(2, 16);
        let mut e0 = m.claim(0);
        let mut e1 = m.claim(1);
        e0.to_peer[1].push(batch(0, 0, &[1, 2])).ok().unwrap();
        let got = e1.from_peer[0].pop().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.tuples.len(), 2);
        assert!(e1.from_peer[1].pop().is_none());
        assert!(e0.from_peer[1].pop().is_none());
    }

    #[test]
    fn self_send_works() {
        let m = BufferMatrix::new(1, 4);
        let mut e = m.claim(0);
        e.to_peer[0].push(batch(7, 0, &[9])).ok().unwrap();
        assert!(e.has_inbound());
        let got = e.from_peer[0].pop().unwrap();
        assert_eq!(got.rel, 7);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let m = BufferMatrix::new(2, 4);
        let _a = m.claim(1);
        let _b = m.claim(1);
    }

    #[test]
    fn inbound_accounting() {
        let m = BufferMatrix::new(3, 8);
        let mut e2 = m.claim(2);
        assert!(m.inbound_empty(0));
        e2.to_peer[0].push(batch(0, 2, &[1])).ok().unwrap();
        assert!(!m.inbound_empty(0));
        assert_eq!(m.inbound_len(0), 1);
        assert!(m.inbound_empty(1));
    }

    #[test]
    fn cross_thread_exchange() {
        let m = BufferMatrix::new(2, 64);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut e0 = m.claim(0);
                for i in 0..100 {
                    while e0.to_peer[1].push(batch(0, 0, &[i])).is_err() {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                let mut e1 = m.claim(1);
                let mut seen = 0;
                while seen < 100 {
                    if let Some(b) = e1.from_peer[0].pop() {
                        assert_eq!(b.tuples[0], Tuple::from_ints(&[seen]));
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}
