//! The global-iteration barrier used by the `Global` baseline strategy
//! (Algorithm 1, line 13).
//!
//! A reusable generation barrier with a twist: each arriving worker
//! reports how many new tuples it derived in the round, and the last
//! arriver declares the global fixpoint when a full round produced
//! nothing anywhere.

use std::sync::{Condvar, Mutex};

struct BarrierState {
    arrived: usize,
    generation: u64,
    round_total: u64,
    done: bool,
}

/// A reusable barrier over `n` workers with fixpoint detection.
pub struct RoundBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

impl RoundBarrier {
    /// Creates a barrier for `n` workers.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        RoundBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                round_total: 0,
                done: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Arrives at the barrier reporting `new_tuples` derived this round.
    /// Blocks until all `n` workers arrive. Returns `true` to continue
    /// with the next global iteration, `false` when the global fixpoint
    /// (an all-zero round) was reached.
    pub fn arrive(&self, new_tuples: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.done {
            return false;
        }
        st.round_total += new_tuples;
        st.arrived += 1;
        if st.arrived == self.n {
            // Leader: decide and open the next generation.
            if st.round_total == 0 {
                st.done = true;
            }
            st.arrived = 0;
            st.round_total = 0;
            st.generation += 1;
            self.cv.notify_all();
            return !st.done;
        }
        let gen = st.generation;
        while st.generation == gen && !st.done {
            st = self.cv.wait(st).unwrap();
        }
        !st.done
    }

    /// Marks the barrier as finished, releasing all waiters (cancellation).
    pub fn cancel(&self) {
        let mut st = self.state.lock().unwrap();
        st.done = true;
        st.generation += 1;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_worker_runs_until_zero_round() {
        let b = RoundBarrier::new(1);
        assert!(b.arrive(5));
        assert!(b.arrive(1));
        assert!(!b.arrive(0));
        // Subsequent arrivals keep reporting done.
        assert!(!b.arrive(10));
    }

    #[test]
    fn rounds_synchronize_workers() {
        let n = 4;
        let b = Arc::new(RoundBarrier::new(n));
        let round_counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..n {
            let b = Arc::clone(&b);
            let rc = Arc::clone(&round_counter);
            handles.push(std::thread::spawn(move || {
                let mut rounds = 0u64;
                // Worker w produces tuples for w+1 rounds, then zeros.
                loop {
                    let produce = if rounds <= w as u64 { 1 } else { 0 };
                    rc.fetch_add(produce, Ordering::Relaxed);
                    if !b.arrive(produce) {
                        return rounds;
                    }
                    rounds += 1;
                }
            }));
        }
        let rounds: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All workers exit after the same number of rounds: the first
        // all-zero round is round n (0-indexed), since worker n-1 produces
        // through round n-1.
        assert!(rounds.iter().all(|&r| r == n as u64));
    }

    #[test]
    fn fixpoint_requires_all_zero() {
        let b = Arc::new(RoundBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            // This worker always produces 0; the other side decides.
            let mut cont = true;
            let mut rounds = 0;
            while cont {
                cont = b2.arrive(0);
                rounds += 1;
            }
            rounds
        });
        assert!(b.arrive(3)); // round 1: total 3 ⇒ continue
        assert!(!b.arrive(0)); // round 2: total 0 ⇒ done
        assert_eq!(h.join().unwrap(), 2);
    }

    #[test]
    fn cancel_releases_waiters() {
        let b = Arc::new(RoundBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.arrive(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        b.cancel();
        assert!(!h.join().unwrap());
    }
}
