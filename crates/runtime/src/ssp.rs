//! The Stale-Synchronous-Parallel clock (§4.1, after Das & Zaniolo \[14\]).
//!
//! SSP relaxes the global barrier: a worker may run at most `s` local
//! iterations ahead of the slowest *active* worker. Workers that reached a
//! local fixpoint step aside (their clock reads "finished") so they do not
//! hold anyone back, and rejoin at the global frontier when reactivated by
//! incoming tuples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const FINISHED: u64 = u64::MAX;

/// Per-worker iteration counters with bounded-staleness waiting.
pub struct SspClock {
    iters: Vec<AtomicU64>,
    s: u64,
}

impl SspClock {
    /// Creates a clock for `n` workers with staleness bound `s`.
    pub fn new(n: usize, s: usize) -> Self {
        SspClock {
            iters: (0..n).map(|_| AtomicU64::new(0)).collect(),
            s: s as u64,
        }
    }

    /// The staleness bound.
    pub fn staleness(&self) -> usize {
        self.s as usize
    }

    /// Current iteration of `w` (or `None` if finished).
    pub fn iteration(&self, w: usize) -> Option<u64> {
        match self.iters[w].load(Ordering::Acquire) {
            FINISHED => None,
            v => Some(v),
        }
    }

    /// Minimum iteration over all unfinished workers (or `None` when all
    /// finished).
    pub fn frontier(&self) -> Option<u64> {
        self.iters
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .filter(|&v| v != FINISHED)
            .min()
    }

    /// Marks worker `w` as having completed one more local iteration.
    pub fn advance(&self, w: usize) {
        let cur = self.iters[w].load(Ordering::Relaxed);
        debug_assert_ne!(cur, FINISHED, "advance after finish without rejoin");
        self.iters[w].store(cur + 1, Ordering::Release);
    }

    /// Marks worker `w` as locally finished (empty delta); it no longer
    /// constrains the frontier.
    pub fn finish(&self, w: usize) {
        self.iters[w].store(FINISHED, Ordering::Release);
    }

    /// Reactivates worker `w` at the current frontier after new tuples
    /// arrived for it.
    pub fn rejoin(&self, w: usize) {
        let frontier = self.frontier().unwrap_or(0);
        self.iters[w].store(frontier, Ordering::Release);
    }

    /// Blocks while `w` is more than `s` iterations ahead of the frontier.
    /// Polls with short sleeps (the SSP baseline is coordination-heavy by
    /// design). Returns `false` if `should_abort` fired.
    pub fn wait_if_ahead(&self, w: usize, mut should_abort: impl FnMut() -> bool) -> bool {
        loop {
            let mine = self.iters[w].load(Ordering::Acquire);
            if mine == FINISHED {
                return true;
            }
            match self.frontier() {
                Some(f) if mine > f + self.s => {
                    if should_abort() {
                        return false;
                    }
                    std::thread::sleep(Duration::from_micros(20));
                }
                _ => return true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn frontier_tracks_minimum() {
        let c = SspClock::new(3, 1);
        assert_eq!(c.frontier(), Some(0));
        c.advance(0);
        c.advance(0);
        c.advance(1);
        assert_eq!(c.frontier(), Some(0));
        c.advance(2);
        assert_eq!(c.frontier(), Some(1));
    }

    #[test]
    fn finished_workers_do_not_constrain() {
        let c = SspClock::new(2, 0);
        c.finish(1);
        c.advance(0);
        c.advance(0);
        assert_eq!(c.frontier(), Some(2));
        assert!(c.wait_if_ahead(0, || false));
    }

    #[test]
    fn all_finished_frontier_is_none() {
        let c = SspClock::new(2, 1);
        c.finish(0);
        c.finish(1);
        assert_eq!(c.frontier(), None);
        assert_eq!(c.iteration(0), None);
    }

    #[test]
    fn rejoin_lands_on_frontier() {
        let c = SspClock::new(3, 1);
        c.advance(0);
        c.advance(0);
        c.advance(1);
        c.finish(2);
        c.rejoin(2);
        assert_eq!(c.iteration(2), Some(1));
    }

    #[test]
    fn wait_if_ahead_blocks_until_frontier_moves() {
        let c = Arc::new(SspClock::new(2, 1));
        // Worker 0 is 3 ahead of worker 1 (s = 1): must wait.
        c.advance(0);
        c.advance(0);
        c.advance(0);
        let released = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&c);
        let r2 = Arc::clone(&released);
        let h = std::thread::spawn(move || {
            let ok = c2.wait_if_ahead(0, || false);
            r2.store(true, Ordering::SeqCst);
            ok
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!released.load(Ordering::SeqCst), "should still be blocked");
        c.advance(1);
        c.advance(1);
        assert!(h.join().unwrap());
    }

    #[test]
    fn abort_unblocks() {
        let c = SspClock::new(2, 0);
        c.advance(0);
        c.advance(0);
        let mut calls = 0;
        let ok = c.wait_if_ahead(0, || {
            calls += 1;
            calls > 3
        });
        assert!(!ok);
    }
}
