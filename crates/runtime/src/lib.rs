#![warn(missing_docs)]
//! Parallel execution substrate for DCDatalog (paper §4 and §6.1).
//!
//! This crate provides the coordination machinery the engine runs on:
//!
//! * [`spsc`] — the lock-free Single-Producer Single-Consumer ring queue
//!   (Figure 6) that carries delta batches between workers.
//! * [`mpsc`] — an unbounded Vyukov-style Multi-Producer Single-Consumer
//!   queue for n→1 fan-in paths (first-party `SegQueue` replacement).
//! * [`buffers`] — the `n × n` message-buffer matrix `M_i^j`.
//! * [`termination`] — counter-based global-fixpoint detection.
//! * [`barrier`] — the per-global-iteration barrier of the `Global`
//!   baseline (Algorithm 1).
//! * [`ssp`] — the bounded-staleness clock of the SSP baseline.
//! * [`dws`] — the Dynamic Weight-based Strategy controller: G/G/1
//!   arrival/service tracking, Equation (1) aggregation and Kingman's
//!   formula (Equation 2) for `ω_i`/`τ_i`.
//! * [`metrics`] — the per-worker observability layer: relaxed-atomic
//!   counters for the Gather/Iterate/Distribute loop and a fixed-capacity
//!   ring of ω/τ samples.
//! * [`strategy`] — strategy selection shared by the engine and benches.
//! * [`simulator`] — a deterministic discrete-event replay of the three
//!   coordination schedules (reproduces Figure 3 in abstract time units).
//! * [`trace`] — the per-worker event tracer: bounded ring of phase
//!   spans and instant marks on a run-relative clock, exported as
//!   Chrome/Perfetto trace JSON; the simulator emits the same schema in
//!   abstract ticks.

pub mod barrier;
pub mod buffers;
pub mod dws;
pub mod metrics;
pub mod mpsc;
pub mod simulator;
pub mod spsc;
pub mod ssp;
pub mod strategy;
pub mod termination;
pub mod trace;

pub use barrier::RoundBarrier;
pub use buffers::{Batch, BufferMatrix, WorkerEndpoints};
pub use dws::{DwsConfig, DwsController};
pub use metrics::{DwsSample, MetricsRecorder, MetricsSnapshot};
pub use mpsc::MpscQueue;
pub use spsc::SpscQueue;
pub use ssp::SspClock;
pub use strategy::Strategy;
pub use termination::{IdleOutcome, Termination};
pub use trace::{chrome_trace_json, IterationPoint, TraceEvent, TraceMeta, Tracer, WorkerTrace};
