//! Per-worker observability: low-overhead counters plus a fixed-capacity
//! ring of DWS parameter samples.
//!
//! The DWS controller (§4.2) is a feedback loop driven by per-worker
//! arrival/service statistics; diagnosing it — and parallel imbalance in
//! general — needs the per-worker load/idle breakdown to be visible. One
//! [`MetricsRecorder`] exists per worker; the worker thread is the only
//! writer, other threads (the engine, a future live exporter) read via
//! [`MetricsRecorder::snapshot`]. All counters are relaxed atomics: a
//! counter bump is one uncontended add on a cache line owned by the
//! recording worker, so the overhead budget stays well under the 2%
//! envelope documented in DESIGN.md §6.
//!
//! The ω/τ trajectory of the DWS controller is captured in a
//! [`SampleRing`]: a fixed-capacity ring that keeps the *last* `cap`
//! samples (the tail of the trajectory is what matters near the fixpoint)
//! and counts how many older ones were overwritten.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One observation of the DWS controller state, taken after
/// `update_params` (Algorithm 2, line 12).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DwsSample {
    /// Local iteration index at which the sample was taken.
    pub iteration: u64,
    /// The batch-size threshold `ω_i` chosen by Kingman's formula.
    pub omega: u64,
    /// The wait budget `τ_i`, in nanoseconds.
    pub tau_ns: u64,
    /// Pending delta size when the worker proceeded to iterate.
    pub delta_len: u64,
}

/// Fixed-capacity ring of [`DwsSample`]s: keeps the newest `cap` samples.
struct SampleRing {
    buf: Vec<DwsSample>,
    /// Total samples ever pushed (so `pushed - buf.len()` were dropped).
    pushed: u64,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    cap: usize,
}

impl SampleRing {
    fn new(cap: usize) -> Self {
        SampleRing {
            buf: Vec::with_capacity(cap.min(1024)),
            pushed: 0,
            next: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, s: DwsSample) {
        self.pushed += 1;
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            self.buf[self.next] = s;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Samples in chronological order.
    fn chronological(&self) -> Vec<DwsSample> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// Default capacity of the ω/τ sample ring.
pub const DEFAULT_SAMPLE_CAP: usize = 256;

/// Per-worker metrics: counters for the Gather/Iterate/Distribute loop,
/// wall-clock time splits, cache effectiveness, and the DWS ω/τ
/// trajectory.
pub struct MetricsRecorder {
    iterations: AtomicU64,
    tuples_processed: AtomicU64,
    tuples_sent: AtomicU64,
    batches_out: AtomicU64,
    batches_in: AtomicU64,
    tuples_in: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_in: AtomicU64,
    edb_resident_bytes: AtomicU64,
    local_new: AtomicU64,
    backpressure_retries: AtomicU64,
    idle_ns: AtomicU64,
    omega_wait_ns: AtomicU64,
    gather_ns: AtomicU64,
    iterate_ns: AtomicU64,
    distribute_ns: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    probe_hits: AtomicU64,
    probe_reuse: AtomicU64,
    kernel_batches: AtomicU64,
    kernel_rows: AtomicU64,
    ring: Mutex<SampleRing>,
}

/// A coherent copy of one worker's metrics (taken after the worker
/// finished, or best-effort mid-run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Local semi-naive iterations executed.
    pub iterations: u64,
    /// Delta tuples fed into the Iterate operator.
    pub tuples_processed: u64,
    /// Tuples sent to other workers (each counted once per destination).
    pub tuples_sent: u64,
    /// Outgoing batches flushed into SPSC queues.
    pub batches_out: u64,
    /// Incoming batches drained.
    pub batches_in: u64,
    /// Tuples received in those batches.
    pub tuples_in: u64,
    /// Payload bytes in outgoing batches (frame values crossing the
    /// exchange, producer side).
    pub bytes_sent: u64,
    /// Payload bytes in drained inbound batches (consumer side).
    pub bytes_in: u64,
    /// Resident bytes of the EDB slices unique to this worker
    /// (partitioned relations only — replicated relations are shared
    /// and accounted once at the run level).
    pub edb_resident_bytes: u64,
    /// Local merges that produced a new/improved logical row.
    pub local_new: u64,
    /// Full-queue retry loops taken while flushing outgoing batches.
    pub backpressure_retries: u64,
    /// Nanoseconds parked in the idle/termination protocol.
    pub idle_ns: u64,
    /// Nanoseconds spent inside the DWS ω-wait window (Alg. 2 l. 5–8).
    pub omega_wait_ns: u64,
    /// Nanoseconds draining inbound queues (Gather).
    pub gather_ns: u64,
    /// Nanoseconds evaluating delta rules (Iterate).
    pub iterate_ns: u64,
    /// Nanoseconds routing/merging derived tuples (Distribute).
    pub distribute_ns: u64,
    /// Existence-cache hits across this worker's relation stores.
    pub cache_hits: u64,
    /// Existence-cache misses across this worker's relation stores.
    pub cache_misses: u64,
    /// Index descents performed by the batched kernel's first probes.
    pub probe_hits: u64,
    /// Batched first probes that reused the previous row's bucket instead
    /// of descending the index again.
    pub probe_reuse: u64,
    /// `(rel, route, rule)` batches the kernel executed.
    pub kernel_batches: u64,
    /// Delta rows fed through those batches.
    pub kernel_rows: u64,
    /// The newest ω/τ samples, chronological.
    pub dws_samples: Vec<DwsSample>,
    /// Older samples overwritten by the ring.
    pub samples_dropped: u64,
}

impl MetricsSnapshot {
    /// Existence-cache hit rate in `[0, 1]` (0 when the caches were idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean delta rows per kernel batch (0 when the batched kernel never
    /// ran, e.g. with `batch_kernel` off).
    pub fn rows_per_batch(&self) -> f64 {
        if self.kernel_batches == 0 {
            0.0
        } else {
            self.kernel_rows as f64 / self.kernel_batches as f64
        }
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new(DEFAULT_SAMPLE_CAP)
    }
}

impl MetricsRecorder {
    /// Creates a recorder whose sample ring keeps `sample_cap` entries.
    pub fn new(sample_cap: usize) -> Self {
        MetricsRecorder {
            iterations: AtomicU64::new(0),
            tuples_processed: AtomicU64::new(0),
            tuples_sent: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            batches_in: AtomicU64::new(0),
            tuples_in: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            edb_resident_bytes: AtomicU64::new(0),
            local_new: AtomicU64::new(0),
            backpressure_retries: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            omega_wait_ns: AtomicU64::new(0),
            gather_ns: AtomicU64::new(0),
            iterate_ns: AtomicU64::new(0),
            distribute_ns: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            probe_hits: AtomicU64::new(0),
            probe_reuse: AtomicU64::new(0),
            kernel_batches: AtomicU64::new(0),
            kernel_rows: AtomicU64::new(0),
            ring: Mutex::new(SampleRing::new(sample_cap)),
        }
    }

    /// Records one local iteration that processed `tuples` delta tuples.
    #[inline]
    pub fn note_iteration(&self, tuples: u64) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
        self.tuples_processed.fetch_add(tuples, Ordering::Relaxed);
    }

    /// Iterations recorded so far (cheap — used to stamp ω/τ samples).
    #[inline]
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Records one outgoing batch of `tuples` tuples carrying `bytes`
    /// payload bytes.
    #[inline]
    pub fn note_batch_out(&self, tuples: u64, bytes: u64) {
        self.batches_out.fetch_add(1, Ordering::Relaxed);
        self.tuples_sent.fetch_add(tuples, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one drained inbound batch of `tuples` tuples carrying
    /// `bytes` payload bytes.
    #[inline]
    pub fn note_batch_in(&self, tuples: u64, bytes: u64) {
        self.batches_in.fetch_add(1, Ordering::Relaxed);
        self.tuples_in.fetch_add(tuples, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records the resident bytes of this worker's private EDB slices
    /// (set once by the engine after the catalog is built).
    #[inline]
    pub fn record_edb_resident(&self, bytes: u64) {
        self.edb_resident_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Records `k` new/improved local merges.
    #[inline]
    pub fn note_local_new(&self, k: u64) {
        self.local_new.fetch_add(k, Ordering::Relaxed);
    }

    /// Records one full-queue retry while flushing an outgoing batch.
    #[inline]
    pub fn note_backpressure_retry(&self) {
        self.backpressure_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds time parked in the idle/termination protocol.
    #[inline]
    pub fn add_idle(&self, d: Duration) {
        self.idle_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds time spent inside the DWS ω-wait window.
    #[inline]
    pub fn add_omega_wait(&self, d: Duration) {
        self.omega_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds time draining inbound queues.
    #[inline]
    pub fn add_gather(&self, d: Duration) {
        self.gather_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds time evaluating delta rules.
    #[inline]
    pub fn add_iterate(&self, d: Duration) {
        self.iterate_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds time routing/merging derived tuples.
    #[inline]
    pub fn add_distribute(&self, d: Duration) {
        self.distribute_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Folds in cache hit/miss totals (called once per worker, at the end
    /// of the run, from the storage layer's counters).
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Folds in the batched kernel's probe-memoization counters (called
    /// once per worker, at the end of the run, from the eval scratch).
    pub fn record_probes(&self, hits: u64, reuse: u64) {
        self.probe_hits.fetch_add(hits, Ordering::Relaxed);
        self.probe_reuse.fetch_add(reuse, Ordering::Relaxed);
    }

    /// Records one batched-kernel invocation over `rows` delta rows.
    #[inline]
    pub fn note_kernel_batch(&self, rows: u64) {
        self.kernel_batches.fetch_add(1, Ordering::Relaxed);
        self.kernel_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Appends one ω/τ observation to the sample ring.
    pub fn push_sample(&self, sample: DwsSample) {
        self.ring.lock().unwrap().push(sample);
    }

    /// Takes a coherent copy of every counter plus the sample ring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ring = self.ring.lock().unwrap();
        MetricsSnapshot {
            iterations: self.iterations.load(Ordering::Relaxed),
            tuples_processed: self.tuples_processed.load(Ordering::Relaxed),
            tuples_sent: self.tuples_sent.load(Ordering::Relaxed),
            batches_out: self.batches_out.load(Ordering::Relaxed),
            batches_in: self.batches_in.load(Ordering::Relaxed),
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            edb_resident_bytes: self.edb_resident_bytes.load(Ordering::Relaxed),
            local_new: self.local_new.load(Ordering::Relaxed),
            backpressure_retries: self.backpressure_retries.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            omega_wait_ns: self.omega_wait_ns.load(Ordering::Relaxed),
            gather_ns: self.gather_ns.load(Ordering::Relaxed),
            iterate_ns: self.iterate_ns.load(Ordering::Relaxed),
            distribute_ns: self.distribute_ns.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            probe_reuse: self.probe_reuse.load(Ordering::Relaxed),
            kernel_batches: self.kernel_batches.load(Ordering::Relaxed),
            kernel_rows: self.kernel_rows.load(Ordering::Relaxed),
            dws_samples: ring.chronological(),
            samples_dropped: ring.pushed - ring.buf.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRecorder::default();
        m.note_iteration(10);
        m.note_iteration(5);
        m.note_batch_out(100, 1600);
        m.note_batch_in(40, 640);
        m.note_batch_in(2, 32);
        m.record_edb_resident(4096);
        m.note_local_new(7);
        m.note_backpressure_retry();
        m.add_idle(Duration::from_nanos(500));
        m.add_omega_wait(Duration::from_nanos(20));
        m.add_gather(Duration::from_nanos(30));
        m.add_iterate(Duration::from_nanos(40));
        m.add_distribute(Duration::from_nanos(50));
        m.record_cache(9, 1);
        m.record_probes(12, 30);
        m.note_kernel_batch(8);
        m.note_kernel_batch(4);
        let s = m.snapshot();
        assert_eq!(s.iterations, 2);
        assert_eq!(s.tuples_processed, 15);
        assert_eq!((s.batches_out, s.tuples_sent), (1, 100));
        assert_eq!((s.batches_in, s.tuples_in), (2, 42));
        assert_eq!((s.bytes_sent, s.bytes_in), (1600, 672));
        assert_eq!(s.edb_resident_bytes, 4096);
        assert_eq!(s.local_new, 7);
        assert_eq!(s.backpressure_retries, 1);
        assert_eq!(s.idle_ns, 500);
        assert_eq!(s.omega_wait_ns, 20);
        assert_eq!(s.gather_ns, 30);
        assert_eq!(s.iterate_ns, 40);
        assert_eq!(s.distribute_ns, 50);
        assert_eq!((s.cache_hits, s.cache_misses), (9, 1));
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!((s.probe_hits, s.probe_reuse), (12, 30));
        assert_eq!((s.kernel_batches, s.kernel_rows), (2, 12));
        assert!((s.rows_per_batch() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = MetricsRecorder::default().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.rows_per_batch(), 0.0);
    }

    #[test]
    fn sample_ring_keeps_newest_in_order() {
        let m = MetricsRecorder::new(4);
        for i in 0..10u64 {
            m.push_sample(DwsSample {
                iteration: i,
                omega: i * 2,
                tau_ns: i * 3,
                delta_len: i,
            });
        }
        let s = m.snapshot();
        assert_eq!(s.samples_dropped, 6);
        let iters: Vec<u64> = s.dws_samples.iter().map(|x| x.iteration).collect();
        assert_eq!(iters, vec![6, 7, 8, 9], "newest four, chronological");
    }

    #[test]
    fn sample_ring_below_capacity_keeps_all() {
        let m = MetricsRecorder::new(8);
        for i in 0..3u64 {
            m.push_sample(DwsSample {
                iteration: i,
                ..DwsSample::default()
            });
        }
        let s = m.snapshot();
        assert_eq!(s.samples_dropped, 0);
        assert_eq!(s.dws_samples.len(), 3);
        assert_eq!(s.dws_samples[2].iteration, 2);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let m = MetricsRecorder::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.note_iteration(1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().iterations, 4000);
    }
}
