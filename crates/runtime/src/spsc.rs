//! Single-Producer Single-Consumer ring queue (§6.1, Figure 6).
//!
//! DWS lets worker `W_j` append delta batches to the memory space `M_i^j`
//! owned by consumer `W_i`; because exactly one producer and one consumer
//! touch each buffer, the race condition reduces to a pair of atomic
//! head/tail counters on a ring array — no locks, no syscalls.
//!
//! This is the only module in the workspace using `unsafe`: slots are
//! `UnsafeCell`s published with release stores of the tail and acquired by
//! loads of the consumer.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads a counter to a cache line so producer and consumer indices do not
/// false-share.
#[repr(align(64))]
struct CachePadded(AtomicUsize);

/// A bounded lock-free SPSC ring queue.
///
/// `push` fails (returning the value) when the ring is full; callers decide
/// whether to spin, yield, or grow batches. The queue is safe to share via
/// `&SpscQueue` between exactly one producing thread and one consuming
/// thread; the [`split`](SpscQueue::split) handles enforce that statically.
pub struct SpscQueue<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to write; only the producer advances it.
    tail: CachePadded,
    /// Next slot to read; only the consumer advances it.
    head: CachePadded,
}

// SAFETY: the producer/consumer protocol ensures a slot is accessed by at
// most one thread at a time: the producer writes slot `t` before the
// release-store of `tail = t+1`, and the consumer reads it only after an
// acquire-load observes `tail > t`; symmetrically for `head` on reuse.
unsafe impl<T: Send> Sync for SpscQueue<T> {}
unsafe impl<T: Send> Send for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    /// Creates a queue with capacity `cap` (rounded up to a power of two).
    pub fn new(cap: usize) -> Self {
        let n = cap.next_power_of_two().max(2);
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..n)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        SpscQueue {
            buf,
            mask: n - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Splits into producer and consumer handles.
    pub fn split(&self) -> (Producer<'_, T>, Consumer<'_, T>) {
        (Producer { q: self }, Consumer { q: self })
    }

    /// Number of elements currently queued (approximate under concurrency).
    ///
    /// `head` is loaded *before* `tail`: both counters only advance and
    /// `tail >= head` always holds, so the later `tail` load can never
    /// land behind the earlier `head` load. The reverse order (tail first)
    /// let a concurrent pop slip in between and drive `head` past the
    /// stale `tail`, wrapping `t - h` to ~2^64 — which made
    /// `is_empty()`/`has_inbound()` spuriously report work. The distance
    /// is additionally saturated at capacity: pops after the `head` load
    /// can free slots the producer refills before the `tail` load, so the
    /// raw distance may overshoot by the amount consumed in between.
    pub fn len(&self) -> usize {
        let h = self.head.0.load(Ordering::Acquire);
        let t = self.tail.0.load(Ordering::Acquire);
        t.wrapping_sub(h).min(self.mask + 1)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_inner(&self, value: T) -> Result<(), T> {
        let t = self.tail.0.load(Ordering::Relaxed);
        let h = self.head.0.load(Ordering::Acquire);
        if t.wrapping_sub(h) > self.mask {
            return Err(value); // full
        }
        // SAFETY: slot `t & mask` is past the consumer's head, so the
        // consumer will not touch it until tail is published below.
        unsafe {
            (*self.buf[t & self.mask].get()).write(value);
        }
        self.tail.0.store(t.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    fn pop_inner(&self) -> Option<T> {
        let h = self.head.0.load(Ordering::Relaxed);
        let t = self.tail.0.load(Ordering::Acquire);
        if h == t {
            return None; // empty
        }
        // SAFETY: the acquire-load of `tail` above synchronizes with the
        // producer's release-store, so slot `h & mask` is initialized and
        // the producer will not rewrite it until head is published below.
        let value = unsafe { (*self.buf[h & self.mask].get()).assume_init_read() };
        self.head.0.store(h.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drain remaining initialized slots.
        while self.pop_inner().is_some() {}
    }
}

/// Producer handle: `push` only.
pub struct Producer<'a, T> {
    q: &'a SpscQueue<T>,
}

impl<T> Producer<'_, T> {
    /// Attempts to enqueue; returns the value back when the ring is full.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), T> {
        self.q.push_inner(value)
    }

    /// Pushes, spinning (with `yield_now`) until space frees up or
    /// `should_abort` returns true. Returns `false` on abort.
    pub fn push_blocking(&mut self, mut value: T, mut should_abort: impl FnMut() -> bool) -> bool {
        loop {
            match self.q.push_inner(value) {
                Ok(()) => return true,
                Err(v) => {
                    if should_abort() {
                        return false;
                    }
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Consumer handle: `pop` only.
pub struct Consumer<'a, T> {
    q: &'a SpscQueue<T>,
}

impl<T> Consumer<'_, T> {
    /// Dequeues the oldest element, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.q.pop_inner()
    }

    /// Number of queued elements (approximate).
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether nothing is queued (approximate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn fifo_single_thread() {
        let q = SpscQueue::new(8);
        let (mut p, mut c) = q.split();
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let q = SpscQueue::new(4);
        let (mut p, mut c) = q.split();
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert_eq!(p.push(99), Err(99));
        assert_eq!(c.pop(), Some(0));
        p.push(99).unwrap();
    }

    #[test]
    fn wraparound_many_times() {
        let q = SpscQueue::new(4);
        let (mut p, mut c) = q.split();
        for round in 0..1000 {
            p.push(round).unwrap();
            assert_eq!(c.pop(), Some(round));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_rounds_up() {
        let q: SpscQueue<u8> = SpscQueue::new(5);
        assert_eq!(q.mask + 1, 8);
    }

    #[test]
    fn drop_releases_queued_values() {
        // Box values would leak if Drop didn't drain; run under Miri or
        // with a leak checker to be strict — here we assert via Arc counts.
        use std::sync::Arc;
        let sentinel = Arc::new(());
        {
            let q = SpscQueue::new(8);
            let (mut p, _c) = q.split();
            for _ in 0..5 {
                p.push(Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 6);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn two_thread_stress_preserves_order_and_values() {
        const N: u64 = 200_000;
        let q = SpscQueue::new(1024);
        let (mut p, mut c) = q.split();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    while p.push(i).is_err() {
                        std::hint::spin_loop();
                    }
                }
            });
            s.spawn(move || {
                let mut expected = 0;
                while expected < N {
                    if let Some(v) = c.pop() {
                        assert_eq!(v, expected);
                        expected += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
    }

    #[test]
    fn len_never_exceeds_capacity_under_concurrency() {
        // Regression test for the tail-before-head load order: a pop
        // between the two loads could wrap `t - h` to ~2^64. An observer
        // thread hammers len()/is_empty() while producer and consumer run;
        // every observation must stay within [0, capacity].
        const N: u64 = 100_000;
        let q = SpscQueue::new(64);
        let cap = q.mask + 1;
        let stop = AtomicBool::new(false);
        let (mut p, mut c) = q.split();
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let l = q.len();
                    assert!(l <= cap, "len {l} exceeds capacity {cap}");
                }
            });
            s.spawn(move || {
                for i in 0..N {
                    while p.push(i).is_err() {
                        std::hint::spin_loop();
                    }
                }
            });
            let mut seen = 0;
            while seen < N {
                if c.pop().is_some() {
                    seen += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn push_blocking_aborts() {
        let q = SpscQueue::new(2);
        let (mut p, _c) = q.split();
        p.push(1).unwrap();
        p.push(2).unwrap();
        let abort = AtomicBool::new(true);
        assert!(!p.push_blocking(3, || abort.load(Ordering::Relaxed)));
    }

    #[test]
    fn push_blocking_succeeds_when_consumer_drains() {
        let q = SpscQueue::new(2);
        let (mut p, mut c) = q.split();
        p.push(1).unwrap();
        p.push(2).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                assert!(p.push_blocking(3, || false));
            });
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                assert_eq!(c.pop(), Some(1));
                // Give the producer room; it will complete.
                while c.pop().is_none() {
                    std::hint::spin_loop();
                }
            });
        });
    }
}
