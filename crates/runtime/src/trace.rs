//! Per-worker event tracing: the temporal companion to [`crate::metrics`].
//!
//! The aggregate counters of the observability layer (DESIGN.md §6) say
//! *how much* time each worker spent in each phase; they cannot say
//! *when*. Diagnosing a slow run — which worker stalled, in which phase,
//! at which iteration, how the DWS controller's ω-wait decisions actually
//! interleaved — needs a timeline: exactly the schedule structure the
//! paper's Figure 3 reasons about. This module records one, cheaply:
//!
//! * [`Tracer`] — a per-worker, fixed-capacity event buffer. The worker
//!   thread is the only writer; recording an event is one uncontended
//!   mutex acquire plus a `Vec` write into preallocated storage
//!   (allocation-free on the hot path). When the buffer is full, further
//!   events bump a relaxed-atomic drop counter instead of growing — a
//!   truncated trace is *detectable* (the count is surfaced per worker in
//!   the `EvalReport`) rather than silently misleading.
//! * [`TraceEvent`] — a fixed-size record: phase spans (Gather,
//!   EvalDelta, Distribute, Merge, ω-wait, backpressure, idle) and
//!   instant marks (iteration boundaries, DWS controller decisions,
//!   termination-detection rounds), stamped with a run-relative
//!   monotonic clock and the worker's local iteration counter.
//! * [`chrome_trace_json`] — serializes traces in the Chrome
//!   trace-event format, which Perfetto (`ui.perfetto.dev`) loads
//!   directly: one track per worker plus one for the DWS controller.
//!   The deterministic simulator emits the *same* schema in abstract
//!   time units, so a real DWS run and its simulated schedule open
//!   side-by-side in the same viewer.
//! * [`iteration_series`] — folds a trace into a per-iteration
//!   time-series table (delta rows in/out, queue depth, ω/τ estimates)
//!   for convergence-curve analysis; embedded in the schema-4 stats
//!   JSON.
//!
//! Clock domain: all workers of one evaluation share a single epoch
//! (`Instant` taken when the coordination state is built), so their
//! tracks align. Spans are recorded at *completion* (one event per
//! phase, not begin/end pairs), which means buffer order is sorted by
//! span **end** time; a nested span (e.g. a Merge inside an ω-wait)
//! precedes its parent in the buffer. Spans on one track are always
//! either disjoint or properly nested — never partially overlapping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version stamp of the trace schema (the JSON export carries it).
pub const TRACE_SCHEMA: u32 = 1;

/// Default per-worker event capacity (events are 64 bytes, so this is
/// 4 MiB per worker — roomy for hundreds of thousands of iterations).
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Worker-loop phases that appear as spans on a worker's track.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Draining inbound queues at the top of the loop.
    Gather,
    /// Evaluating delta rules (the Iterate operator).
    EvalDelta,
    /// Routing/staging/flushing derived tuples.
    Distribute,
    /// Merging a burst of inbound batches into the local stores
    /// (nested inside Gather, ω-wait or Backpressure).
    Merge,
    /// The DWS ω-wait window (Algorithm 2, lines 5–8).
    OmegaWait,
    /// A full-queue retry while flushing an outgoing batch (nested
    /// inside Distribute).
    Backpressure,
    /// Parked: stratum-entry barrier, the Global round barrier, or the
    /// idle/termination protocol.
    Idle,
}

impl Phase {
    /// Track-label for the exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Gather => "Gather",
            Phase::EvalDelta => "EvalDelta",
            Phase::Distribute => "Distribute",
            Phase::Merge => "Merge",
            Phase::OmegaWait => "OmegaWait",
            Phase::Backpressure => "Backpressure",
            Phase::Idle => "Idle",
        }
    }
}

/// Instant (zero-duration) marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mark {
    /// One local iteration completed. `a` = delta rows in, `b` = rows
    /// produced (local merges + remote sends), `c` = inbound queue depth
    /// (batches) at the boundary.
    Iteration,
    /// The DWS controller updated its parameters. `a` = ω, `b` = τ in
    /// clock units, `c` = pending delta size at the decision.
    DwsDecision,
    /// A termination-detection round resolved. `a` = 1 when the worker
    /// continues, 0 when the protocol declared global fixpoint.
    TerminationRound,
}

impl Mark {
    /// Event-name label for the exporter.
    pub fn name(self) -> &'static str {
        match self {
            Mark::Iteration => "iteration",
            Mark::DwsDecision => "dws-decision",
            Mark::TerminationRound => "termination-round",
        }
    }
}

/// Span or instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase with a duration.
    Span(Phase),
    /// A zero-duration mark.
    Instant(Mark),
}

/// One fixed-size trace record. Clock units are nanoseconds for the real
/// engine and abstract ticks for the simulator; both are run-relative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Start time, relative to the run epoch.
    pub ts: u64,
    /// Duration (0 for instants).
    pub dur: u64,
    /// The worker's local iteration counter when the event was recorded.
    pub iteration: u64,
    /// Kind-specific argument (see [`Mark`]).
    pub a: u64,
    /// Kind-specific argument.
    pub b: u64,
    /// Kind-specific argument.
    pub c: u64,
}

impl TraceEvent {
    /// End time (`ts + dur`).
    #[inline]
    pub fn end(&self) -> u64 {
        self.ts + self.dur
    }
}

/// One worker's collected trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTrace {
    /// Worker id (track id in the export).
    pub worker: usize,
    /// Events in recording order (sorted by span **end** time).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full — a non-zero value
    /// means the timeline is truncated and downstream analysis must not
    /// treat it as complete.
    pub dropped: u64,
}

impl WorkerTrace {
    /// Fraction of `[first ts, last end]` covered by *top-level* spans
    /// (nested spans are contained in their parents and would double
    /// count). 0.0 for an empty trace.
    pub fn span_coverage(&self) -> f64 {
        let spans: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Span(_)))
            .collect();
        if spans.is_empty() {
            return 0.0;
        }
        let lo = spans.iter().map(|e| e.ts).min().expect("non-empty");
        let hi = spans.iter().map(|e| e.end()).max().expect("non-empty");
        if hi == lo {
            return 1.0;
        }
        // Merge intervals (sorted by start) so nesting does not double
        // count.
        let mut ivals: Vec<(u64, u64)> = spans.iter().map(|e| (e.ts, e.end())).collect();
        ivals.sort_unstable();
        let mut covered = 0u64;
        let mut cur = (ivals[0].0, ivals[0].0);
        for (s, e) in ivals {
            if s > cur.1 {
                covered += cur.1 - cur.0;
                cur = (s, e);
            } else {
                cur.1 = cur.1.max(e);
            }
        }
        covered += cur.1 - cur.0;
        covered as f64 / (hi - lo) as f64
    }
}

/// The bounded event buffer behind a [`Tracer`].
struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
}

/// Per-worker event recorder. One exists per worker (indexed like
/// [`crate::MetricsRecorder`] in the engine's coordination state); the
/// worker thread is the only writer. A disabled tracer keeps no storage
/// and every record call is a single branch.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    ring: Mutex<TraceRing>,
    dropped: AtomicU64,
}

impl Tracer {
    /// An enabled tracer holding up to `cap` events (preallocated — the
    /// record path never allocates).
    pub fn new(cap: usize, epoch: Instant) -> Self {
        let cap = cap.max(1);
        Tracer {
            enabled: true,
            epoch,
            ring: Mutex::new(TraceRing {
                buf: Vec::with_capacity(cap),
                cap,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// A disabled tracer: no storage, every record call is a no-op.
    pub fn disabled(epoch: Instant) -> Self {
        Tracer {
            enabled: false,
            epoch,
            ring: Mutex::new(TraceRing {
                buf: Vec::new(),
                cap: 0,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds of `at` relative to the run epoch.
    #[inline]
    fn rel(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Records a phase span that started at `started` and ends now.
    #[inline]
    pub fn span(&self, phase: Phase, started: Instant, iteration: u64) {
        self.span_args(phase, started, iteration, 0, 0, 0);
    }

    /// Records a phase span with kind-specific arguments.
    #[inline]
    pub fn span_args(
        &self,
        phase: Phase,
        started: Instant,
        iteration: u64,
        a: u64,
        b: u64,
        c: u64,
    ) {
        if !self.enabled {
            return;
        }
        let ts = self.rel(started);
        let end = self.rel(Instant::now());
        self.push(TraceEvent {
            kind: EventKind::Span(phase),
            ts,
            dur: end.saturating_sub(ts),
            iteration,
            a,
            b,
            c,
        });
    }

    /// Records an instant mark stamped now.
    #[inline]
    pub fn instant(&self, mark: Mark, iteration: u64, a: u64, b: u64, c: u64) {
        if !self.enabled {
            return;
        }
        let ts = self.rel(Instant::now());
        self.push(TraceEvent {
            kind: EventKind::Instant(mark),
            ts,
            dur: 0,
            iteration,
            a,
            b,
            c,
        });
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.buf.len() < ring.cap {
            ring.buf.push(ev);
        } else {
            // Keep the oldest events: a trace truncated at the tail is a
            // coherent prefix of the schedule; the drop count says how
            // much is missing.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events recorded so far (cheap length probe for tests/benches).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped on a full ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains the buffer into a [`WorkerTrace`] for worker `worker`.
    pub fn take(&self, worker: usize) -> WorkerTrace {
        WorkerTrace {
            worker,
            events: std::mem::take(&mut self.ring.lock().unwrap().buf),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Run-level context for the JSON export.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    /// Strategy name (`"Global"`, `"SSP"`, `"DWS"`).
    pub strategy: String,
    /// Number of worker tracks.
    pub workers: usize,
    /// Clock domain: `"ns"` (real engine) or `"ticks"` (simulator).
    pub clock: &'static str,
}

/// One row of the per-iteration time-series table: the convergence curve
/// of a run, one point per (worker, local iteration).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterationPoint {
    /// Worker id.
    pub worker: usize,
    /// Local iteration index.
    pub iteration: u64,
    /// Completion time of the iteration (clock units from the epoch).
    pub ts: u64,
    /// Delta rows the iteration consumed.
    pub rows_in: u64,
    /// Rows it produced (local merges + remote sends).
    pub rows_out: u64,
    /// Inbound queue depth (batches) at the boundary.
    pub queue_depth: u64,
    /// The controller's ω estimate in force (0 outside DWS).
    pub omega: u64,
    /// The controller's τ estimate in force, clock units (0 outside DWS).
    pub tau: u64,
}

/// Folds traces into the per-iteration time-series: each
/// [`Mark::Iteration`] instant becomes a row, annotated with the most
/// recent [`Mark::DwsDecision`] of the same worker. Rows are ordered by
/// `(ts, worker)` so the table reads as one global timeline.
pub fn iteration_series(traces: &[WorkerTrace]) -> Vec<IterationPoint> {
    let mut out = Vec::new();
    for tr in traces {
        let (mut omega, mut tau) = (0u64, 0u64);
        for ev in &tr.events {
            match ev.kind {
                EventKind::Instant(Mark::DwsDecision) => {
                    omega = ev.a;
                    tau = ev.b;
                }
                EventKind::Instant(Mark::Iteration) => out.push(IterationPoint {
                    worker: tr.worker,
                    iteration: ev.iteration,
                    ts: ev.ts,
                    rows_in: ev.a,
                    rows_out: ev.b,
                    queue_depth: ev.c,
                    omega,
                    tau,
                }),
                _ => {}
            }
        }
    }
    out.sort_by_key(|p| (p.ts, p.worker));
    out
}

/// Serializes traces as a Chrome trace-event JSON document that Perfetto
/// loads directly: one `tid` per worker plus `tid = workers` for the DWS
/// controller track (every [`Mark::DwsDecision`] lands there, annotated
/// with the deciding worker). Timestamps are exported in microseconds
/// (the format's unit) from the clock in `meta`; one simulator tick maps
/// to one microsecond so abstract schedules render at a readable scale.
pub fn chrome_trace_json(traces: &[WorkerTrace], meta: &TraceMeta) -> String {
    let pid = 1;
    let controller_tid = meta.workers;
    // ns → µs with fractional part; ticks map 1:1 to µs.
    let scale = |v: u64| -> String {
        if meta.clock == "ns" {
            format!("{:.3}", v as f64 / 1000.0)
        } else {
            format!("{v}")
        }
    };
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"dcdatalog {} ({} clock)"}}}}"#,
        meta.strategy, meta.clock
    ));
    for w in 0..meta.workers {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{w},"args":{{"name":"worker {w}"}}}}"#
        ));
    }
    events.push(format!(
        r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{controller_tid},"args":{{"name":"dws-controller"}}}}"#
    ));
    let mut total_dropped = 0u64;
    for tr in traces {
        total_dropped += tr.dropped;
        let tid = tr.worker;
        for ev in &tr.events {
            match ev.kind {
                EventKind::Span(phase) => events.push(format!(
                    r#"{{"name":"{}","cat":"phase","ph":"X","pid":{pid},"tid":{tid},"ts":{},"dur":{},"args":{{"iteration":{},"a":{},"b":{},"c":{}}}}}"#,
                    phase.name(),
                    scale(ev.ts),
                    scale(ev.dur),
                    ev.iteration,
                    ev.a,
                    ev.b,
                    ev.c
                )),
                EventKind::Instant(Mark::DwsDecision) => events.push(format!(
                    r#"{{"name":"dws-decision","cat":"controller","ph":"i","s":"t","pid":{pid},"tid":{controller_tid},"ts":{},"dur":0,"args":{{"worker":{tid},"iteration":{},"omega":{},"tau":{},"delta_len":{}}}}}"#,
                    scale(ev.ts),
                    ev.iteration,
                    ev.a,
                    ev.b,
                    ev.c
                )),
                EventKind::Instant(mark) => events.push(format!(
                    r#"{{"name":"{}","cat":"mark","ph":"i","s":"t","pid":{pid},"tid":{tid},"ts":{},"dur":0,"args":{{"iteration":{},"a":{},"b":{},"c":{}}}}}"#,
                    mark.name(),
                    scale(ev.ts),
                    ev.iteration,
                    ev.a,
                    ev.b,
                    ev.c
                )),
            }
        }
    }
    format!(
        "{{\n\"schema\": {},\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"strategy\": \"{}\", \"clock\": \"{}\", \"workers\": {}, \"dropped_events\": {}}},\n\"traceEvents\": [\n{}\n]\n}}\n",
        TRACE_SCHEMA,
        meta.strategy,
        meta.clock,
        meta.workers,
        total_dropped,
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span_ev(phase: Phase, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span(phase),
            ts,
            dur,
            iteration: 0,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn records_spans_and_instants_in_run_relative_time() {
        let epoch = Instant::now();
        let t = Tracer::new(128, epoch);
        assert!(t.is_enabled());
        let started = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        t.span(Phase::Gather, started, 3);
        t.instant(Mark::Iteration, 3, 10, 4, 1);
        let tr = t.take(0);
        assert_eq!(tr.events.len(), 2);
        let g = &tr.events[0];
        assert_eq!(g.kind, EventKind::Span(Phase::Gather));
        assert!(g.dur >= 1_000_000, "span of a 2ms sleep, got {}ns", g.dur);
        assert_eq!(g.iteration, 3);
        let i = &tr.events[1];
        assert_eq!(i.kind, EventKind::Instant(Mark::Iteration));
        assert_eq!((i.a, i.b, i.c), (10, 4, 1));
        assert!(i.ts >= g.end(), "instant stamped after the span ended");
    }

    #[test]
    fn overflow_keeps_prefix_and_counts_drops() {
        // Satellite: a tiny ring must keep its first `cap` events and
        // report exactly how many later ones were discarded.
        let t = Tracer::new(4, Instant::now());
        for i in 0..10u64 {
            t.instant(Mark::Iteration, i, i, 0, 0);
        }
        assert_eq!(t.dropped(), 6);
        let tr = t.take(7);
        assert_eq!(tr.worker, 7);
        assert_eq!(tr.events.len(), 4, "first four kept");
        assert_eq!(tr.dropped, 6);
        let iters: Vec<u64> = tr.events.iter().map(|e| e.iteration).collect();
        assert_eq!(iters, vec![0, 1, 2, 3], "coherent prefix, not a ring tail");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled(Instant::now());
        assert!(!t.is_enabled());
        t.span(Phase::EvalDelta, Instant::now(), 1);
        t.instant(Mark::Iteration, 1, 0, 0, 0);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.take(0).events.is_empty());
    }

    #[test]
    fn span_coverage_merges_nested_intervals() {
        let tr = WorkerTrace {
            worker: 0,
            // Top-level [0,10] and [10,20]; [2,5] is nested in the first.
            events: vec![
                span_ev(Phase::Merge, 2, 3),
                span_ev(Phase::Gather, 0, 10),
                span_ev(Phase::EvalDelta, 10, 10),
            ],
            dropped: 0,
        };
        assert!((tr.span_coverage() - 1.0).abs() < 1e-12);
        let gap = WorkerTrace {
            worker: 0,
            events: vec![span_ev(Phase::Gather, 0, 5), span_ev(Phase::Idle, 15, 5)],
            dropped: 0,
        };
        assert!((gap.span_coverage() - 0.5).abs() < 1e-12);
        assert_eq!(WorkerTrace::default().span_coverage(), 0.0);
    }

    #[test]
    fn iteration_series_joins_decisions_to_iterations() {
        let mk = |mark: Mark, ts: u64, it: u64, a: u64, b: u64, c: u64| TraceEvent {
            kind: EventKind::Instant(mark),
            ts,
            dur: 0,
            iteration: it,
            a,
            b,
            c,
        };
        let traces = vec![
            WorkerTrace {
                worker: 0,
                events: vec![
                    mk(Mark::Iteration, 5, 1, 10, 3, 0),
                    mk(Mark::DwsDecision, 6, 1, 8, 1000, 4),
                    mk(Mark::Iteration, 9, 2, 4, 0, 2),
                ],
                dropped: 0,
            },
            WorkerTrace {
                worker: 1,
                events: vec![mk(Mark::Iteration, 7, 1, 2, 2, 1)],
                dropped: 0,
            },
        ];
        let series = iteration_series(&traces);
        assert_eq!(series.len(), 3);
        // Ordered by ts: w0/it1, w1/it1, w0/it2.
        assert_eq!((series[0].worker, series[0].iteration), (0, 1));
        assert_eq!((series[0].omega, series[0].tau), (0, 0), "no decision yet");
        assert_eq!((series[1].worker, series[1].rows_in), (1, 2));
        assert_eq!((series[2].omega, series[2].tau), (8, 1000));
        assert_eq!(series[2].queue_depth, 2);
    }

    #[test]
    fn chrome_export_has_worker_and_controller_tracks() {
        let t = Tracer::new(16, Instant::now());
        t.span(Phase::Gather, Instant::now(), 1);
        t.instant(Mark::DwsDecision, 1, 8, 500, 3);
        t.instant(Mark::Iteration, 1, 10, 2, 0);
        let traces = vec![t.take(0)];
        let meta = TraceMeta {
            strategy: "DWS".into(),
            workers: 2,
            clock: "ns",
        };
        let json = chrome_trace_json(&traces, &meta);
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains(r#""name":"worker 0""#));
        assert!(json.contains(r#""name":"worker 1""#));
        assert!(json.contains(r#""name":"dws-controller""#));
        // The decision lands on the controller track (tid == workers).
        assert!(json.contains(
            r#""name":"dws-decision","cat":"controller","ph":"i","s":"t","pid":1,"tid":2"#
        ));
        assert!(json.contains(r#""name":"Gather","cat":"phase","ph":"X""#));
        assert!(json.contains(r#""dropped_events": 0"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn tick_clock_exports_integral_timestamps() {
        let traces = vec![WorkerTrace {
            worker: 0,
            events: vec![span_ev(Phase::EvalDelta, 7, 3)],
            dropped: 0,
        }];
        let meta = TraceMeta {
            strategy: "Global".into(),
            workers: 1,
            clock: "ticks",
        };
        let json = chrome_trace_json(&traces, &meta);
        assert!(json.contains(r#""ts":7,"dur":3"#), "{json}");
        assert!(json.contains(r#""clock": "ticks""#));
    }

    #[test]
    fn tracer_is_shareable_across_threads() {
        let t = Tracer::new(1 << 12, Instant::now());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        t.instant(Mark::Iteration, i, 0, 0, 0);
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
    }
}
