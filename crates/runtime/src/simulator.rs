//! Deterministic coordination-schedule simulator (Figure 3).
//!
//! The paper's Figure 3 compares the Global, SSP and DWS schedules of the
//! Connected-Components program on a small, deliberately unbalanced graph,
//! measuring abstract "time units". This module replays min-label
//! propagation under each strategy in a discrete-event simulation with an
//! explicit cost model, so the schedule comparison is exact and
//! reproducible (no wall-clock noise).
//!
//! Cost model (one abstract tick each):
//! * scanning one adjacency entry during a local iteration,
//! * a fixed per-iteration overhead,
//! * per-source coordination cost when draining remote batches.
//!
//! Every simulated run also records a [`WorkerTrace`] per worker in the
//! *same* event schema as the real engine's tracer ([`crate::trace`]),
//! with abstract ticks in place of nanoseconds — so a simulated schedule
//! and a real `--trace-json` run open side-by-side in Perfetto
//! ([`SimReport::trace_json`]).

use crate::trace::{chrome_trace_json, EventKind, Mark, Phase, TraceEvent, TraceMeta, WorkerTrace};
use dcd_common::hash::FastMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A span event on the simulator's tick clock.
fn span_ev(phase: Phase, ts: u64, dur: u64, iteration: u64) -> TraceEvent {
    TraceEvent {
        kind: EventKind::Span(phase),
        ts,
        dur,
        iteration,
        a: 0,
        b: 0,
        c: 0,
    }
}

/// An instant mark on the simulator's tick clock.
fn mark_ev(mark: Mark, ts: u64, iteration: u64, a: u64, b: u64, c: u64) -> TraceEvent {
    TraceEvent {
        kind: EventKind::Instant(mark),
        ts,
        dur: 0,
        iteration,
        a,
        b,
        c,
    }
}

/// Strategy variants understood by the simulator. DWS uses static
/// `(omega, tau)` so runs stay deterministic.
#[derive(Clone, Copy, Debug)]
pub enum SimStrategy {
    /// Barrier after every global iteration.
    Global,
    /// Bounded staleness `s`.
    Ssp(u64),
    /// Wait up to `tau` ticks while the drained delta is smaller than
    /// `omega`.
    Dws {
        /// Minimum delta size to proceed without waiting.
        omega: usize,
        /// Maximum ticks to wait for more tuples.
        tau: u64,
    },
    /// DWS with self-calibrating parameters: `ω` tracks half the previous
    /// iteration's delta size and `τ` half its duration — the simulator's
    /// deterministic stand-in for the engine's Kingman estimation (§4.2).
    DwsAuto,
}

impl SimStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SimStrategy::Global => "Global",
            SimStrategy::Ssp(_) => "SSP",
            SimStrategy::Dws { .. } | SimStrategy::DwsAuto => "DWS",
        }
    }
}

/// Cost-model knobs.
///
/// The decisive difference between the strategies (§6.1) is *merge
/// concurrency*: merging exchanged tuples into the recursive tables under
/// Global/SSP happens inside a coarse-locked coordination phase — workers
/// serialize on the shared-memory critical section — while DWS merges
/// arrive through per-pair SPSC buffers and are applied concurrently with
/// plain atomic operations. Both pay the same `merge_cost` per tuple; the
/// locked strategies additionally contend for one global lock timeline.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Ticks per adjacency entry scanned during a local iteration.
    pub scan_cost: u64,
    /// Fixed ticks per local iteration.
    pub iter_overhead: u64,
    /// Ticks per exchanged tuple merged into the recursive table.
    pub merge_cost: u64,
    /// Fixed ticks per locked coordination round (barrier entry, system
    /// calls).
    pub barrier_cost: u64,
    /// Fraction (numerator/denominator) of locked merge work that
    /// serializes on the global lock; the rest proceeds concurrently.
    pub lock_serial_num: u64,
    /// See [`SimConfig::lock_serial_num`].
    pub lock_serial_den: u64,
    /// Straggler probability in percent per (worker, iteration):
    /// real machines jitter (cache misses, NUMA, OS preemption), and the
    /// barrier amplifies every straggler into whole-fleet idle time.
    /// 0 = the clean deterministic model (Figure 3's textbook setting).
    pub straggler_pct: u64,
    /// Multiplier applied to a straggling iteration's compute cost.
    pub straggler_factor: u64,
    /// Seed for the deterministic straggler draw.
    pub jitter_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scan_cost: 1,
            iter_overhead: 1,
            merge_cost: 1,
            barrier_cost: 1,
            lock_serial_num: 1,
            lock_serial_den: 1,
            straggler_pct: 0,
            straggler_factor: 1,
            jitter_seed: 0x51de,
        }
    }
}

impl SimConfig {
    /// The realistic multicore model used for Figures 8/9(a): partial lock
    /// serialization (25 %) and occasional 20× straggler iterations.
    pub fn realistic() -> Self {
        SimConfig {
            lock_serial_num: 1,
            lock_serial_den: 4,
            straggler_pct: 5,
            straggler_factor: 20,
            ..SimConfig::default()
        }
    }

    fn straggle(&self, worker: usize, iteration: u64, cost: u64) -> u64 {
        if self.straggler_pct == 0 || self.straggler_factor <= 1 {
            return cost;
        }
        let h = dcd_common::hash::combine(
            dcd_common::hash::mix64(worker as u64 ^ self.jitter_seed),
            iteration,
        );
        if h % 100 < self.straggler_pct {
            cost * self.straggler_factor
        } else {
            cost
        }
    }

    fn split_locked_merge(&self, merge_ticks: u64) -> (u64, u64) {
        let serial = merge_ticks * self.lock_serial_num / self.lock_serial_den.max(1);
        (serial, merge_ticks - serial)
    }
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total schedule length in ticks (the numbers of Figure 3(b)).
    pub makespan: u64,
    /// Local iterations executed per worker.
    pub iterations: Vec<u64>,
    /// Total cross-worker messages (tuples) sent.
    pub messages: u64,
    /// Final vertex → component-label assignment.
    pub labels: FastMap<u64, u64>,
    /// Strategy display name (for the trace export).
    pub strategy: &'static str,
    /// Per-worker schedule traces on the abstract tick clock — same
    /// event schema as the engine's tracer.
    pub traces: Vec<WorkerTrace>,
}

impl SimReport {
    /// Serializes the simulated schedule as Chrome/Perfetto trace JSON —
    /// identical in shape to [`crate::trace::chrome_trace_json`] output
    /// for a real run, with `"clock": "ticks"` (one tick renders as one
    /// microsecond).
    pub fn trace_json(&self) -> String {
        chrome_trace_json(
            &self.traces,
            &TraceMeta {
                strategy: self.strategy.to_string(),
                workers: self.iterations.len(),
                clock: "ticks",
            },
        )
    }
}

/// The simulated workload: weighted label-propagation edges plus an
/// explicit vertex → worker assignment (Figure 3 partitions by hand;
/// [`SimWorkload::cc_partitioned`] hashes like the engine).
///
/// The propagation generalizes both benchmark recursions the paper
/// ablates on: **CC** is min-label propagation (all weights 0, every
/// vertex seeded with its own id) and **SSSP** is min-distance relaxation
/// (weighted edges, only the source seeded with 0).
pub struct SimWorkload {
    /// Directed weighted edges `(src, dst, w)`; labels propagate src → dst
    /// as `label(src) + w`.
    pub edges: Vec<(u64, u64, u64)>,
    /// Vertex → owning worker.
    pub owner: FastMap<u64, usize>,
    /// Number of workers.
    pub workers: usize,
    /// Seed labels `(vertex, label)`.
    pub seeds: Vec<(u64, u64)>,
}

impl SimWorkload {
    /// CC workload: symmetrizes the edges (weight 0) and seeds every
    /// vertex with its own id.
    pub fn undirected(edges: &[(u64, u64)], owner: FastMap<u64, usize>, workers: usize) -> Self {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            all.push((a, b, 0));
            all.push((b, a, 0));
        }
        let seeds = owner.keys().map(|&v| (v, v)).collect();
        SimWorkload {
            edges: all,
            owner,
            workers,
            seeds,
        }
    }

    /// CC workload with hash partitioning over `workers` workers (the
    /// engine's `H`).
    pub fn cc_partitioned(edges: &[(u64, u64)], workers: usize) -> Self {
        let owner = hash_owner(edges.iter().flat_map(|&(a, b)| [a, b]), workers);
        Self::undirected(edges, owner, workers)
    }

    /// SSSP workload with hash partitioning: weighted edges, single seed
    /// at `source` with distance 0.
    pub fn sssp_partitioned(edges: &[(u64, u64, u64)], source: u64, workers: usize) -> Self {
        let owner = hash_owner(edges.iter().flat_map(|&(a, b, _)| [a, b]), workers);
        SimWorkload {
            edges: edges.to_vec(),
            owner,
            workers,
            seeds: vec![(source, 0)],
        }
    }
}

fn hash_owner(vertices: impl Iterator<Item = u64>, workers: usize) -> FastMap<u64, usize> {
    let part = dcd_common::Partitioner::new(workers);
    let mut owner = FastMap::default();
    for v in vertices {
        owner.entry(v).or_insert_with(|| part.of_key(v));
    }
    owner
}

/// A pending remote batch: (arrival tick, source worker, messages).
type SimBatch = (u64, usize, Vec<(u64, u64)>);

struct WorkerSim {
    /// Vertices owned, with weighted adjacency (out-edges of owned
    /// vertices).
    adj: FastMap<u64, Vec<(u64, u64)>>,
    labels: FastMap<u64, u64>,
    delta: FastMap<u64, u64>,
    /// Pending remote batches.
    inbox: Vec<SimBatch>,
    iterations: u64,
    /// Time at which this worker becomes free.
    free_at: u64,
    /// DWS: deadline after which we stop waiting for more tuples.
    wait_deadline: Option<u64>,
    /// DWS: tick at which the current ω-wait window opened (for the
    /// OmegaWait span once the worker proceeds).
    wait_started: Option<u64>,
    /// Previous iteration's delta size (DwsAuto ω calibration).
    prev_processed: usize,
    /// Previous iteration's duration in ticks (DwsAuto τ calibration).
    prev_cost: u64,
    /// Schedule trace on the tick clock (same schema as the engine's).
    events: Vec<TraceEvent>,
}

impl WorkerSim {
    /// Merges `(vertex, label)` candidates; returns improved count.
    fn merge(&mut self, msgs: &[(u64, u64)]) -> usize {
        let mut improved = 0;
        for &(v, lbl) in msgs {
            let cur = self.labels.entry(v).or_insert(u64::MAX);
            if lbl < *cur {
                *cur = lbl;
                self.delta.insert(v, lbl);
                improved += 1;
            }
        }
        improved
    }

    /// Drains inbox entries arrived by `now`; returns (sources, tuples).
    fn drain(&mut self, now: u64) -> (usize, usize) {
        let mut sources = std::collections::BTreeSet::new();
        let mut tuples = 0;
        let mut rest = Vec::new();
        for (at, from, msgs) in std::mem::take(&mut self.inbox) {
            if at <= now {
                sources.insert(from);
                tuples += msgs.len();
                self.merge(&msgs);
            } else {
                rest.push((at, from, msgs));
            }
        }
        self.inbox = rest;
        (sources.len(), tuples)
    }

    fn next_arrival(&self) -> Option<u64> {
        self.inbox.iter().map(|(at, _, _)| *at).min()
    }
}

fn build_workers(w: &SimWorkload) -> Vec<WorkerSim> {
    let mut workers: Vec<WorkerSim> = (0..w.workers)
        .map(|_| WorkerSim {
            adj: FastMap::default(),
            labels: FastMap::default(),
            delta: FastMap::default(),
            inbox: Vec::new(),
            iterations: 0,
            free_at: 0,
            wait_deadline: None,
            wait_started: None,
            prev_processed: 0,
            prev_cost: 0,
            events: Vec::new(),
        })
        .collect();
    // Base rule: seed labels (every vertex for CC, the source for SSSP).
    for &(v, lbl) in &w.seeds {
        let o = w.owner[&v];
        workers[o].labels.insert(v, lbl);
        workers[o].delta.insert(v, lbl);
    }
    for &(a, b, wt) in &w.edges {
        let o = w.owner[&a];
        workers[o].adj.entry(a).or_default().push((b, wt));
    }
    for wk in &mut workers {
        for lst in wk.adj.values_mut() {
            lst.sort_unstable();
        }
    }
    workers
}

/// One local iteration: scan the delta's adjacency, emit candidates
/// grouped by owner. Returns (cost, per-owner messages).
fn run_iteration(
    wk: &mut WorkerSim,
    owner: &FastMap<u64, usize>,
    cfg: &SimConfig,
    nworkers: usize,
) -> (u64, Vec<Vec<(u64, u64)>>) {
    let mut out: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nworkers];
    let mut scanned = 0u64;
    let delta = std::mem::take(&mut wk.delta);
    let mut items: Vec<(u64, u64)> = delta.into_iter().collect();
    items.sort_unstable();
    for (v, lbl) in items {
        if let Some(neigh) = wk.adj.get(&v) {
            for &(u, wt) in neigh {
                scanned += 1;
                out[owner[&u]].push((u, lbl + wt));
            }
        }
    }
    wk.iterations += 1;
    let base = cfg.iter_overhead + cfg.scan_cost * scanned;
    (base, out)
}

/// Simulates the Global strategy (synchronized rounds).
fn simulate_global(w: &SimWorkload, cfg: &SimConfig) -> SimReport {
    let mut workers = build_workers(w);
    let mut t = 0u64;
    let mut messages = 0u64;
    loop {
        // Run one global iteration: every active worker does one local
        // iteration; the round lasts as long as the slowest.
        let round_start = t;
        let mut round_max = 0u64;
        let mut outputs: Vec<Vec<Vec<(u64, u64)>>> = Vec::with_capacity(workers.len());
        let mut costs: Vec<u64> = Vec::with_capacity(workers.len());
        let mut any_active = false;
        for (i, wk) in workers.iter_mut().enumerate() {
            if wk.delta.is_empty() {
                outputs.push(vec![Vec::new(); w.workers]);
                costs.push(0);
                continue;
            }
            any_active = true;
            let iter_no = wk.iterations;
            let processed = wk.delta.len() as u64;
            let (cost, out) = run_iteration(wk, &w.owner, cfg, w.workers);
            let cost = cfg.straggle(i, iter_no, cost);
            round_max = round_max.max(cost);
            let sent: u64 = out
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != i)
                .map(|(_, m)| m.len() as u64)
                .sum();
            wk.events
                .push(span_ev(Phase::EvalDelta, round_start, cost, iter_no));
            wk.events.push(mark_ev(
                Mark::Iteration,
                round_start + cost,
                iter_no,
                processed,
                sent,
                0,
            ));
            outputs.push(out);
            costs.push(cost);
        }
        if !any_active {
            break;
        }
        t += round_max;
        // The barrier amplifies every straggler: everyone who finished
        // early idles until the slowest worker's iteration ends.
        for (i, wk) in workers.iter_mut().enumerate() {
            if costs[i] < round_max {
                wk.events.push(span_ev(
                    Phase::Idle,
                    round_start + costs[i],
                    round_max - costs[i],
                    wk.iterations,
                ));
            }
        }
        // Coordination: everyone exchanges with everyone under the global
        // lock — a share of the per-tuple merge work serializes across
        // workers (§6.1), the rest overlaps.
        let coord_start = t;
        let mut serialized = 0u64;
        let mut concurrent_max = 0u64;
        for (dst, wk) in workers.iter_mut().enumerate() {
            let mut mine = 0u64;
            for (src, out) in outputs.iter().enumerate() {
                let msgs = &out[dst];
                if msgs.is_empty() {
                    continue;
                }
                if src != dst {
                    messages += msgs.len() as u64;
                    mine += cfg.merge_cost * msgs.len() as u64;
                }
                wk.merge(msgs);
            }
            if mine > 0 {
                wk.events
                    .push(span_ev(Phase::Merge, coord_start, mine, wk.iterations));
            }
            let (serial, conc) = cfg.split_locked_merge(mine);
            serialized += serial;
            concurrent_max = concurrent_max.max(conc);
        }
        t += cfg.barrier_cost + serialized + concurrent_max;
        for wk in workers.iter_mut() {
            wk.events
                .push(mark_ev(Mark::TerminationRound, t, wk.iterations, 1, 0, 0));
        }
    }
    // The all-zero round: every worker observes global fixpoint.
    for wk in workers.iter_mut() {
        wk.events
            .push(mark_ev(Mark::TerminationRound, t, wk.iterations, 0, 0, 0));
    }
    SimReport {
        makespan: t,
        iterations: workers.iter().map(|w| w.iterations).collect(),
        messages,
        labels: collect_labels(&workers),
        strategy: "Global",
        traces: collect_traces(&mut workers),
    }
}

/// Event-driven simulation for SSP and DWS.
fn simulate_async(w: &SimWorkload, cfg: &SimConfig, strat: SimStrategy) -> SimReport {
    // SSP keeps the locked coordination of Algorithm 1 (merges serialize
    // on a global lock timeline); DWS merges concurrently through the
    // lock-free SPSC buffers (§6.1).
    let locked = !matches!(strat, SimStrategy::Dws { .. } | SimStrategy::DwsAuto);
    let mut lock_free_at = 0u64;
    let mut workers = build_workers(w);
    let n = w.workers;
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut messages = 0u64;
    let mut makespan = 0u64;
    for i in 0..n {
        heap.push(Reverse((0, seq, i)));
        seq += 1;
    }
    // Guard against pathological schedules in tests.
    let mut budget = 10_000_000u64;
    while let Some(Reverse((now, _, me))) = heap.pop() {
        budget = budget.checked_sub(1).expect("simulation did not terminate");
        makespan = makespan.max(now);
        // Drain what has arrived; merge cost is concurrent for DWS, but
        // serializes on the global lock for SSP.
        let (_sources, tuples) = workers[me].drain(now);
        let merge_ticks = cfg.merge_cost * tuples as u64;
        let merge_start = now;
        let mut now = if locked && merge_ticks > 0 {
            let (serial, conc) = cfg.split_locked_merge(merge_ticks);
            let start = now.max(lock_free_at);
            lock_free_at = start + serial;
            lock_free_at + conc
        } else {
            now + merge_ticks
        };
        if tuples > 0 && now > merge_start {
            let it = workers[me].iterations;
            workers[me]
                .events
                .push(span_ev(Phase::Merge, merge_start, now - merge_start, it));
        }

        if workers[me].delta.is_empty() {
            if let Some(at) = workers[me].next_arrival() {
                heap.push(Reverse((at.max(now), seq, me)));
                seq += 1;
            }
            // Otherwise: idle; reactivated when a batch is delivered.
            makespan = makespan.max(now);
            continue;
        }
        // Batching wait: wait up to τ while the delta is smaller than ω,
        // collecting more tuples. Static (ω, τ) for the textbook DWS,
        // self-calibrating halves of the previous iteration otherwise —
        // SSP exchanges at local-iteration granularity so it batches the
        // same way; its staleness bound is enforced afterwards.
        {
            let (omega, tau) = match strat {
                SimStrategy::Dws { omega, tau } => (omega, tau),
                _ => (
                    workers[me].prev_processed / 2,
                    (workers[me].prev_cost / 2).max(1),
                ),
            };
            let len = workers[me].delta.len();
            if len < omega {
                match workers[me].wait_deadline {
                    None => {
                        workers[me].wait_deadline = Some(now + tau);
                        workers[me].wait_started = Some(now);
                        let wake = workers[me]
                            .next_arrival()
                            .map_or(now + tau, |a| a.min(now + tau));
                        heap.push(Reverse((wake.max(now), seq, me)));
                        seq += 1;
                        continue;
                    }
                    Some(d) if now < d => {
                        let wake = workers[me].next_arrival().map_or(d, |a| a.min(d));
                        heap.push(Reverse((wake.max(now + 1), seq, me)));
                        seq += 1;
                        continue;
                    }
                    Some(_) => {
                        // Timeout: proceed (Alg. 2 line 7-8).
                        workers[me].wait_deadline = None;
                    }
                }
            } else {
                workers[me].wait_deadline = None;
            }
        }
        // The ω-wait window closes the moment we proceed (either the delta
        // grew past ω or τ expired) — record it as a span.
        if let Some(ws) = workers[me].wait_started.take() {
            if now > ws {
                let it = workers[me].iterations;
                workers[me]
                    .events
                    .push(span_ev(Phase::OmegaWait, ws, now - ws, it));
            }
        }
        // SSP staleness bound: may not run more than `s` iterations ahead
        // of the slowest worker that still has (or will get) work.
        if let SimStrategy::Ssp(s) = strat {
            let frontier = workers
                .iter()
                .enumerate()
                .filter(|(i, wk)| *i != me && (!wk.delta.is_empty() || !wk.inbox.is_empty()))
                .map(|(_, wk)| wk.iterations)
                .min();
            if let Some(f) = frontier {
                if workers[me].iterations > f + s {
                    // Blocked: re-check one tick later.
                    heap.push(Reverse((now + 1, seq, me)));
                    seq += 1;
                    continue;
                }
            }
        }
        // Run one local iteration.
        let processed = workers[me].delta.len();
        let iter_no = workers[me].iterations;
        let iter_start = now;
        let (base_cost, out) = run_iteration(&mut workers[me], &w.owner, cfg, n);
        let cost = cfg.straggle(me, iter_no, base_cost);
        workers[me].prev_processed = processed;
        // Calibrate ω/τ on the *typical* iteration cost: the Kingman
        // estimator tracks mean service rates, which straggler spikes do
        // not shift much.
        workers[me].prev_cost = base_cost;
        now += cost;
        workers[me].free_at = now;
        makespan = makespan.max(now);
        let sent: u64 = out
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != me)
            .map(|(_, m)| m.len() as u64)
            .sum();
        // Deliver: local merges immediately, remote at completion time.
        for (dst, msgs) in out.into_iter().enumerate() {
            if msgs.is_empty() {
                continue;
            }
            if dst == me {
                workers[me].merge(&msgs);
            } else {
                messages += msgs.len() as u64;
                let idle = workers[dst].delta.is_empty() && workers[dst].inbox.is_empty();
                workers[dst].inbox.push((now, me, msgs));
                if idle {
                    heap.push(Reverse((now, seq, dst)));
                    seq += 1;
                }
            }
        }
        workers[me]
            .events
            .push(span_ev(Phase::EvalDelta, iter_start, cost, iter_no));
        let depth = workers[me].inbox.len() as u64;
        workers[me].events.push(mark_ev(
            Mark::Iteration,
            now,
            iter_no,
            processed as u64,
            sent,
            depth,
        ));
        if matches!(strat, SimStrategy::Dws { .. } | SimStrategy::DwsAuto) {
            // The controller re-estimates (ω, τ) after each iteration; the
            // simulator's stand-in is the static pair or the half-previous
            // calibration.
            let (omega_next, tau_next) = match strat {
                SimStrategy::Dws { omega, tau } => (omega as u64, tau),
                _ => ((processed / 2) as u64, (base_cost / 2).max(1)),
            };
            let pending = workers[me].delta.len() as u64;
            workers[me].events.push(mark_ev(
                Mark::DwsDecision,
                now,
                iter_no,
                omega_next,
                tau_next,
                pending,
            ));
        }
        // Schedule own next step.
        heap.push(Reverse((now, seq, me)));
        seq += 1;
    }
    // Quiescence: every worker observes the empty-system fixpoint.
    for wk in workers.iter_mut() {
        wk.events.push(mark_ev(
            Mark::TerminationRound,
            makespan,
            wk.iterations,
            0,
            0,
            0,
        ));
    }
    SimReport {
        makespan,
        iterations: workers.iter().map(|w| w.iterations).collect(),
        messages,
        labels: collect_labels(&workers),
        strategy: strat.name(),
        traces: collect_traces(&mut workers),
    }
}

/// Moves each worker's event log into a [`WorkerTrace`], sorted by start
/// tick (the simulator never drops events: `dropped == 0`).
fn collect_traces(workers: &mut [WorkerSim]) -> Vec<WorkerTrace> {
    workers
        .iter_mut()
        .enumerate()
        .map(|(i, wk)| {
            let mut events = std::mem::take(&mut wk.events);
            events.sort_by_key(|e| (e.ts, e.end()));
            WorkerTrace {
                worker: i,
                events,
                dropped: 0,
            }
        })
        .collect()
}

fn collect_labels(workers: &[WorkerSim]) -> FastMap<u64, u64> {
    let mut out = FastMap::default();
    for wk in workers {
        for (&v, &l) in &wk.labels {
            out.insert(v, l);
        }
    }
    out
}

/// Runs the CC workload under `strat` and returns the schedule report.
pub fn simulate(w: &SimWorkload, cfg: &SimConfig, strat: SimStrategy) -> SimReport {
    match strat {
        SimStrategy::Global => simulate_global(w, cfg),
        _ => simulate_async(w, cfg, strat),
    }
}

/// The Figure-3-style workload: three workers, worker 0 lightly loaded,
/// workers 1 and 2 heavy (many edges per vertex) and long-diameter, with
/// the globally smallest label living on worker 0.
///
/// Under Global, worker 0's cheap iterations are paced by the heavy
/// workers' rounds, so the label-1 wave crosses its chain at slow-round
/// speed. SSP lets worker 0 run only `s` iterations ahead while workers
/// 1-2 are still actively converging internally. DWS never blocks worker
/// 0, so the wave reaches the heavy workers while they are still busy and
/// merges into their remaining iterations — the schedule the paper draws
/// in Figure 3(b)(3).
pub fn figure3_workload() -> SimWorkload {
    let mut owner = FastMap::default();
    let mut edges = Vec::new();
    // W0: cheap chain 1-2-...-8.
    for v in 1..=8u64 {
        owner.insert(v, 0);
    }
    for v in 1..8u64 {
        edges.push((v, v + 1));
    }
    // Heavy chain builder: spine of `len` vertices starting at `base`,
    // each spine vertex carrying `leaves` pendant leaves (same owner), so
    // every spine iteration scans many adjacency entries.
    let mut heavy =
        |base: u64, len: u64, leaves: u64, worker: usize, edges: &mut Vec<(u64, u64)>| {
            for i in 0..len {
                let v = base + i;
                owner.insert(v, worker);
                if i + 1 < len {
                    edges.push((v, v + 1));
                }
                for l in 0..leaves {
                    let leaf = base + 1000 + i * leaves + l;
                    owner.insert(leaf, worker);
                    edges.push((v, leaf));
                }
            }
        };
    heavy(100, 8, 6, 1, &mut edges);
    heavy(10_000, 8, 6, 2, &mut edges);
    // The label-1 wave: W0's tail feeds W1's spine head, whose tail feeds
    // W2's spine head.
    edges.push((8, 100));
    edges.push((107, 10_000));
    SimWorkload::undirected(&edges, owner, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn final_labels_correct(r: &SimReport, w: &SimWorkload) {
        // Single connected component in the figure-3 workload: everything
        // must converge to the smallest vertex id.
        let min = w.owner.keys().min().copied().unwrap();
        for (&v, &l) in &r.labels {
            assert_eq!(l, min, "vertex {v} has label {l}");
        }
    }

    #[test]
    fn all_strategies_compute_the_same_components() {
        let w = figure3_workload();
        let cfg = SimConfig::default();
        for strat in [
            SimStrategy::Global,
            SimStrategy::Ssp(1),
            SimStrategy::Dws { omega: 4, tau: 3 },
        ] {
            let r = simulate(&w, &cfg, strat);
            final_labels_correct(&r, &w);
        }
    }

    #[test]
    fn figure3_ordering_dws_beats_ssp_beats_global() {
        let w = figure3_workload();
        let cfg = SimConfig::default();
        let g = simulate(&w, &cfg, SimStrategy::Global).makespan;
        let s = simulate(&w, &cfg, SimStrategy::Ssp(1)).makespan;
        let d = simulate(&w, &cfg, SimStrategy::Dws { omega: 4, tau: 3 }).makespan;
        assert!(s < g, "SSP ({s}) should beat Global ({g})");
        assert!(d < s, "DWS ({d}) should beat SSP ({s})");
        // Figure 3 reports 128 / 88 / 67 units: DWS roughly halves Global.
        assert!(
            (d as f64) < 0.7 * g as f64,
            "DWS ({d}) should be well under Global ({g})"
        );
    }

    #[test]
    fn deterministic_replay() {
        let w = figure3_workload();
        let cfg = SimConfig::default();
        let a = simulate(&w, &cfg, SimStrategy::Dws { omega: 4, tau: 3 });
        let b = simulate(&w, &cfg, SimStrategy::Dws { omega: 4, tau: 3 });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn two_components_stay_separate() {
        let mut owner = FastMap::default();
        for v in 1..=4 {
            owner.insert(v, (v % 2) as usize);
        }
        let w = SimWorkload::undirected(&[(1, 2), (3, 4)], owner, 2);
        let r = simulate(&w, &SimConfig::default(), SimStrategy::Global);
        assert_eq!(r.labels[&1], 1);
        assert_eq!(r.labels[&2], 1);
        assert_eq!(r.labels[&3], 3);
        assert_eq!(r.labels[&4], 3);
    }

    #[test]
    fn sssp_propagates_weighted_distances() {
        let edges = [(1u64, 2, 10), (1, 3, 2), (3, 2, 3), (2, 4, 1)];
        for workers in [1, 2, 4] {
            let w = SimWorkload::sssp_partitioned(&edges, 1, workers);
            let r = simulate(
                &w,
                &SimConfig::default(),
                SimStrategy::Dws { omega: 2, tau: 2 },
            );
            assert_eq!(r.labels[&1], 0);
            assert_eq!(r.labels[&2], 5, "via 3");
            assert_eq!(r.labels[&3], 2);
            assert_eq!(r.labels[&4], 6);
        }
    }

    #[test]
    fn more_workers_shrink_the_simulated_makespan() {
        // A bulky random-ish workload: parallel schedules must be shorter.
        let edges: Vec<(u64, u64)> = (0..400u64)
            .flat_map(|i| {
                let a = (i * 7) % 100;
                let b = (i * 13 + 1) % 100;
                (a != b).then_some((a, b))
            })
            .collect();
        let cfg = SimConfig::default();
        let t1 = simulate(
            &SimWorkload::cc_partitioned(&edges, 1),
            &cfg,
            SimStrategy::Dws { omega: 0, tau: 0 },
        )
        .makespan;
        let t4 = simulate(
            &SimWorkload::cc_partitioned(&edges, 4),
            &cfg,
            SimStrategy::Dws { omega: 0, tau: 0 },
        )
        .makespan;
        assert!(
            (t4 as f64) < 0.6 * t1 as f64,
            "4 workers should beat 1: {t4} vs {t1}"
        );
    }

    #[test]
    fn cc_and_sssp_agree_across_strategies_on_partitioned_workloads() {
        let edges: Vec<(u64, u64)> = (0..50u64).map(|i| (i, (i + 1) % 50)).collect();
        let weighted: Vec<(u64, u64, u64)> =
            edges.iter().map(|&(a, b)| (a, b, 1 + a % 5)).collect();
        let cfg = SimConfig::default();
        let mut expected: Option<Vec<(u64, u64)>> = None;
        for strat in [
            SimStrategy::Global,
            SimStrategy::Ssp(2),
            SimStrategy::Dws { omega: 3, tau: 2 },
        ] {
            let w = SimWorkload::sssp_partitioned(&weighted, 0, 3);
            let r = simulate(&w, &cfg, strat);
            let mut labels: Vec<(u64, u64)> = r.labels.into_iter().collect();
            labels.sort_unstable();
            match &expected {
                None => expected = Some(labels),
                Some(e) => assert_eq!(e, &labels, "{}", strat.name()),
            }
        }
    }

    #[test]
    fn simulated_traces_carry_the_engine_schema() {
        let w = figure3_workload();
        let cfg = SimConfig::default();
        for strat in [
            SimStrategy::Global,
            SimStrategy::Ssp(1),
            SimStrategy::Dws { omega: 4, tau: 3 },
        ] {
            let r = simulate(&w, &cfg, strat);
            assert_eq!(r.traces.len(), w.workers, "{}", strat.name());
            for tr in &r.traces {
                assert_eq!(tr.dropped, 0);
                for pair in tr.events.windows(2) {
                    assert!(pair[0].ts <= pair[1].ts, "start ticks must be monotone");
                }
                for ev in &tr.events {
                    assert!(ev.end() <= r.makespan, "event past the makespan");
                }
                // One Iteration instant per local iteration, numbered 0..n.
                let iters: Vec<u64> = tr
                    .events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Instant(Mark::Iteration)))
                    .map(|e| e.iteration)
                    .collect();
                assert_eq!(iters.len() as u64, r.iterations[tr.worker]);
                assert_eq!(iters, (0..iters.len() as u64).collect::<Vec<_>>());
            }
            if matches!(strat, SimStrategy::Dws { .. }) {
                let decisions = r
                    .traces
                    .iter()
                    .flat_map(|t| &t.events)
                    .filter(|e| matches!(e.kind, EventKind::Instant(Mark::DwsDecision)))
                    .count();
                assert!(decisions > 0, "DWS runs must log controller decisions");
            }
            let json = r.trace_json();
            assert!(json.contains("\"traceEvents\""));
            assert!(json.contains("\"clock\": \"ticks\""));
            assert!(json.contains(strat.name()));
        }
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let mut owner = FastMap::default();
        for v in 1..=5 {
            owner.insert(v, 0);
        }
        let edges: Vec<(u64, u64)> = (1..5).map(|v| (v, v + 1)).collect();
        let w = SimWorkload::undirected(&edges, owner, 1);
        for strat in [
            SimStrategy::Global,
            SimStrategy::Ssp(3),
            SimStrategy::Dws { omega: 2, tau: 2 },
        ] {
            let r = simulate(&w, &SimConfig::default(), strat);
            assert!(r.labels.values().all(|&l| l == 1));
            assert_eq!(r.messages, 0);
        }
    }
}
