//! Global-fixpoint (termination) detection (§6.1).
//!
//! The paper detects the global fixpoint by checking that (i) all workers
//! are inactive and (ii) all buffers are empty, the latter via one global
//! counter of produced tuples and per-worker counters of consumed tuples.
//!
//! The hot path here is exactly those counters (relaxed atomic adds). The
//! *decision* is made under a small mutex that only idle workers touch: a
//! worker registers idle while its inbox is empty, and while the registry
//! shows `idle == n`, every worker is provably inside the idle protocol
//! (registered workers cannot produce or consume without first
//! deregistering, which requires the mutex), so reading
//! `produced == consumed` under the lock is a sound, race-free fixpoint
//! test — the double-check epoch trick of DESIGN.md.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of [`Termination::idle_wait`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum IdleOutcome {
    /// Work arrived — the worker must reactivate and drain its inbox.
    Work,
    /// The global fixpoint was reached; all workers should exit.
    Done,
}

/// Shared termination detector for `n` workers.
pub struct Termination {
    produced: AtomicU64,
    consumed: AtomicU64,
    done: AtomicBool,
    idle: Mutex<usize>,
    cv: Condvar,
    n: usize,
    poll: Duration,
}

impl Termination {
    /// Creates a detector for `n` workers. `poll` bounds how long an idle
    /// worker sleeps between inbox checks (missed notifications cost at
    /// most one poll interval).
    pub fn new(n: usize, poll: Duration) -> Self {
        Termination {
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            done: AtomicBool::new(false),
            idle: Mutex::new(0),
            cv: Condvar::new(),
            n,
            poll,
        }
    }

    /// Record `k` tuples produced. MUST be called *before* the tuples are
    /// pushed into any buffer (so `consumed` can never overtake).
    #[inline]
    pub fn note_produced(&self, k: u64) {
        self.produced.fetch_add(k, Ordering::SeqCst);
    }

    /// Record `k` tuples consumed. MUST be called *after* the tuples were
    /// popped.
    #[inline]
    pub fn note_consumed(&self, k: u64) {
        self.consumed.fetch_add(k, Ordering::SeqCst);
    }

    /// Whether the global fixpoint has been declared.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Force termination (used for error propagation / cancellation).
    pub fn cancel(&self) {
        self.done.store(true, Ordering::SeqCst);
        let _guard = self.idle.lock().unwrap();
        self.cv.notify_all();
    }

    /// Counters snapshot `(produced, consumed)` — diagnostic only.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.produced.load(Ordering::SeqCst),
            self.consumed.load(Ordering::SeqCst),
        )
    }

    /// Parks the calling worker as idle until either work arrives
    /// (`has_work` returns true) or the global fixpoint is detected.
    ///
    /// Contract: the caller has fully drained its inbox and recorded every
    /// consumption before calling; `has_work` must be a cheap, lock-free
    /// inbox check.
    pub fn idle_wait(&self, mut has_work: impl FnMut() -> bool) -> IdleOutcome {
        let mut idle = self.idle.lock().unwrap();
        *idle += 1;
        loop {
            if self.done.load(Ordering::SeqCst) {
                *idle -= 1;
                self.cv.notify_all();
                return IdleOutcome::Done;
            }
            // Sound fixpoint test: all n workers are inside this protocol
            // (they hold or wait on `self.idle`), so the counters are
            // quiescent while we observe them.
            if *idle == self.n
                && self.produced.load(Ordering::SeqCst) == self.consumed.load(Ordering::SeqCst)
            {
                self.done.store(true, Ordering::SeqCst);
                *idle -= 1;
                self.cv.notify_all();
                return IdleOutcome::Done;
            }
            if has_work() {
                *idle -= 1;
                return IdleOutcome::Work;
            }
            idle = self.cv.wait_timeout(idle, self.poll).unwrap().0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn det(n: usize) -> Termination {
        Termination::new(n, Duration::from_micros(100))
    }

    #[test]
    fn single_worker_terminates_immediately_when_quiescent() {
        let t = det(1);
        assert_eq!(t.idle_wait(|| false), IdleOutcome::Done);
        assert!(t.is_done());
    }

    #[test]
    fn unbalanced_counters_block_termination() {
        let t = det(1);
        t.note_produced(3);
        t.note_consumed(2);
        // Work appears (simulating the in-flight tuple) so we return Work.
        let mut polls = 0;
        let out = t.idle_wait(|| {
            polls += 1;
            polls > 2
        });
        assert_eq!(out, IdleOutcome::Work);
        t.note_consumed(1);
        assert_eq!(t.idle_wait(|| false), IdleOutcome::Done);
    }

    #[test]
    fn cancel_wakes_idlers() {
        let t = Arc::new(det(2));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.idle_wait(|| false));
        std::thread::sleep(Duration::from_millis(5));
        t.cancel();
        assert_eq!(h.join().unwrap(), IdleOutcome::Done);
    }

    #[test]
    fn n_workers_all_quiescent_terminate() {
        let t = Arc::new(det(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || t.idle_wait(|| false)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), IdleOutcome::Done);
        }
    }

    #[test]
    fn producer_consumer_ping_pong_then_terminate() {
        // Worker 0 produces 100 tuples; worker 1 consumes them while
        // repeatedly going idle; both must terminate exactly once all
        // tuples are consumed.
        let t = Arc::new(det(2));
        let queue = Arc::new(crate::mpsc::MpscQueue::new());
        let consumed_total = Arc::new(AtomicUsize::new(0));

        let producer = {
            let t = Arc::clone(&t);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    t.note_produced(1);
                    queue.push(i);
                    if i % 10 == 0 {
                        std::thread::yield_now();
                    }
                }
                t.idle_wait(|| false)
            })
        };
        let consumer = {
            let t = Arc::clone(&t);
            let queue = Arc::clone(&queue);
            let consumed_total = Arc::clone(&consumed_total);
            std::thread::spawn(move || loop {
                while let Some(_v) = queue.pop() {
                    t.note_consumed(1);
                    consumed_total.fetch_add(1, Ordering::Relaxed);
                }
                match t.idle_wait(|| !queue.is_empty()) {
                    IdleOutcome::Work => continue,
                    IdleOutcome::Done => return IdleOutcome::Done,
                }
            })
        };
        assert_eq!(producer.join().unwrap(), IdleOutcome::Done);
        assert_eq!(consumer.join().unwrap(), IdleOutcome::Done);
        assert_eq!(consumed_total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn counters_snapshot() {
        let t = det(1);
        t.note_produced(5);
        t.note_consumed(3);
        assert_eq!(t.counters(), (5, 3));
    }
}
