//! Streaming statistics used by the DWS coordination strategy.
//!
//! DWS (paper §4.2) models each worker as a G/G/1 queue. Producers and
//! consumers need cheap online estimates of the mean and variance of
//! inter-arrival and service times; [`Welford`] provides exact streaming
//! moments and [`Ewma`] provides recency-weighted ones (the evaluation is
//! non-stationary: deltas shrink as the fixpoint nears, so recent samples
//! matter more).

/// Welford's online algorithm for mean and variance.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 samples).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Merges another accumulator (parallel Welford / Chan's formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += d * other.n as f64 / n as f64;
        self.n = n;
    }
}

/// Exponentially-weighted moving average of a signal and of its squared
/// deviation, giving a recency-weighted mean/variance pair.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    mean: Option<f64>,
    var: f64,
    n: u64,
}

impl Ewma {
    /// `alpha ∈ (0, 1]` is the weight of the newest sample.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            mean: None,
            var: 0.0,
            n: 0,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        match self.mean {
            None => {
                self.mean = Some(x);
                self.var = 0.0;
            }
            Some(m) => {
                let d = x - m;
                let inc = self.alpha * d;
                self.mean = Some(m + inc);
                // West's EWMA variance update.
                self.var = (1.0 - self.alpha) * (self.var + d * inc);
            }
        }
    }

    /// Number of samples observed.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether any sample has been observed. One sample carries variance
    /// 0, so estimators that feed variance-sensitive formulas (Kingman)
    /// should additionally gate on [`count`](Ewma::count).
    #[inline]
    pub fn is_primed(&self) -> bool {
        self.mean.is_some()
    }

    /// Recency-weighted mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean.unwrap_or(0.0)
    }

    /// Recency-weighted variance.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!((a.mean(), a.variance()), before);

        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        for _ in 0..100 {
            e.push(5.0);
        }
        assert!((e.mean() - 5.0).abs() < 1e-9);
        assert!(e.variance() < 1e-9);
    }

    #[test]
    fn ewma_tracks_level_shift_faster_than_welford() {
        let mut e = Ewma::new(0.5);
        let mut w = Welford::new();
        for _ in 0..50 {
            e.push(1.0);
            w.push(1.0);
        }
        for _ in 0..10 {
            e.push(10.0);
            w.push(10.0);
        }
        assert!(e.mean() > w.mean(), "EWMA should adapt faster");
        assert!(e.mean() > 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_counts_samples() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.count(), 0);
        assert!(!e.is_primed());
        e.push(1.0);
        assert_eq!(e.count(), 1);
        assert!(e.is_primed());
        assert_eq!(e.variance(), 0.0, "one sample carries no variance");
        for _ in 0..9 {
            e.push(2.0);
        }
        assert_eq!(e.count(), 10);
    }
}
