//! Fixed-arity rows with inline storage.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// Maximum arity stored inline; every query in the paper has arity ≤ 4
/// (APSP `path(A,B,D)` is 3, PageRank partials `(X, Y, K)` are 3).
pub const INLINE_ARITY: usize = 4;

/// A Datalog fact: a short, immutable row of [`Value`]s.
///
/// Rows of arity ≤ [`INLINE_ARITY`] live entirely inline (no heap
/// allocation); longer rows spill to a boxed slice. Cloning an inline tuple
/// is a memcpy; cloning a spilled tuple allocates.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tuple {
    /// Inline storage: `len` live values at the front of the array.
    Inline {
        /// Number of live values.
        len: u8,
        /// Backing array; slots `len..` are `Value::Int(0)` padding that is
        /// never observed through the public API.
        vals: [Value; INLINE_ARITY],
    },
    /// Heap storage for arity > [`INLINE_ARITY`].
    Spilled(Box<[Value]>),
}

impl Tuple {
    /// Builds a tuple from a slice of values.
    pub fn new(vals: &[Value]) -> Self {
        if vals.len() <= INLINE_ARITY {
            let mut arr = [Value::Int(0); INLINE_ARITY];
            arr[..vals.len()].copy_from_slice(vals);
            Tuple::Inline {
                len: vals.len() as u8,
                vals: arr,
            }
        } else {
            Tuple::Spilled(vals.to_vec().into_boxed_slice())
        }
    }

    /// An empty (arity-0) tuple; used for propositional facts.
    pub fn unit() -> Self {
        Tuple::new(&[])
    }

    /// Convenience constructor from integers.
    pub fn from_ints(vals: &[i64]) -> Self {
        Tuple::from_exact_iter(vals.len(), vals.iter().map(|&v| Value::Int(v)))
    }

    /// Builds a tuple of known arity from a value iterator without any
    /// intermediate allocation for inline arities. `iter` must yield
    /// exactly `len` values.
    pub fn from_exact_iter(len: usize, mut iter: impl Iterator<Item = Value>) -> Self {
        if len <= INLINE_ARITY {
            let mut arr = [Value::Int(0); INLINE_ARITY];
            for slot in arr.iter_mut().take(len) {
                *slot = iter.next().expect("iterator shorter than declared len");
            }
            debug_assert!(iter.next().is_none(), "iterator longer than declared len");
            Tuple::Inline {
                len: len as u8,
                vals: arr,
            }
        } else {
            let v: Vec<Value> = iter.collect();
            debug_assert_eq!(v.len(), len, "iterator length mismatch");
            Tuple::Spilled(v.into_boxed_slice())
        }
    }

    /// Number of values in the row.
    #[inline]
    pub fn arity(&self) -> usize {
        match self {
            Tuple::Inline { len, .. } => *len as usize,
            Tuple::Spilled(v) => v.len(),
        }
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        match self {
            Tuple::Inline { len, vals } => &vals[..*len as usize],
            Tuple::Spilled(v) => v,
        }
    }

    /// Projects the tuple onto the given column indices.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        let vals = self.values();
        if cols.len() <= INLINE_ARITY {
            let mut arr = [Value::Int(0); INLINE_ARITY];
            for (i, &c) in cols.iter().enumerate() {
                arr[i] = vals[c];
            }
            Tuple::Inline {
                len: cols.len() as u8,
                vals: arr,
            }
        } else {
            Tuple::Spilled(cols.iter().map(|&c| vals[c]).collect())
        }
    }

    /// The leading `n` values as a new tuple — the common "group-by
    /// prefix" projection. Unlike [`Tuple::project`] it needs no column
    /// index list, so callers on hot paths avoid building a `Vec<usize>`
    /// per row.
    #[inline]
    pub fn prefix(&self, n: usize) -> Tuple {
        Tuple::new(&self.values()[..n])
    }

    /// The leading `n` values as a borrowed slice (the group-by key of an
    /// aggregate row). No allocation at all: use this when the caller only
    /// compares or hashes the prefix.
    #[inline]
    pub fn group_key(&self, n: usize) -> &[Value] {
        &self.values()[..n]
    }

    /// Concatenates two tuples (used when joining).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let a = self.values();
        let b = other.values();
        let total = a.len() + b.len();
        if total <= INLINE_ARITY {
            let mut arr = [Value::Int(0); INLINE_ARITY];
            arr[..a.len()].copy_from_slice(a);
            arr[a.len()..total].copy_from_slice(b);
            Tuple::Inline {
                len: total as u8,
                vals: arr,
            }
        } else {
            let mut v = Vec::with_capacity(total);
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            Tuple::Spilled(v.into_boxed_slice())
        }
    }

    /// The 64-bit key of column `col`, used for hashing/partitioning.
    #[inline]
    pub fn key(&self, col: usize) -> u64 {
        self.values()[col].key_bits()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    #[inline]
    fn index(&self, idx: usize) -> &Value {
        &self.values()[idx]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<&[i64]> for Tuple {
    fn from(vals: &[i64]) -> Self {
        Tuple::from_ints(vals)
    }
}

impl<const N: usize> From<[i64; N]> for Tuple {
    fn from(vals: [i64; N]) -> Self {
        Tuple::from_ints(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_tuples_do_not_spill() {
        let t = Tuple::from_ints(&[1, 2, 3, 4]);
        assert!(matches!(t, Tuple::Inline { .. }));
        assert_eq!(t.arity(), 4);
        assert_eq!(t[2], Value::Int(3));
    }

    #[test]
    fn long_tuples_spill() {
        let t = Tuple::from_ints(&[1, 2, 3, 4, 5]);
        assert!(matches!(t, Tuple::Spilled(_)));
        assert_eq!(t.arity(), 5);
        assert_eq!(t[4], Value::Int(5));
    }

    #[test]
    fn equality_ignores_padding() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::new(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(a, b);
        assert_ne!(a, Tuple::from_ints(&[1, 2, 0]));
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = Tuple::from_ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::from_ints(&[30, 10]));
        assert_eq!(t.project(&[1, 1]), Tuple::from_ints(&[20, 20]));
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat_spills_when_needed() {
        let a = Tuple::from_ints(&[1, 2, 3]);
        let b = Tuple::from_ints(&[4, 5]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 5);
        assert_eq!(c.values()[4], Value::Int(5));
        let d = Tuple::from_ints(&[1]).concat(&Tuple::from_ints(&[2]));
        assert!(matches!(d, Tuple::Inline { .. }));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from_ints(&[1, 2]) < Tuple::from_ints(&[1, 3]));
        assert!(Tuple::from_ints(&[1]) < Tuple::from_ints(&[1, 0]));
    }

    #[test]
    fn from_exact_iter_matches_new() {
        for n in 0..7usize {
            let vals: Vec<Value> = (0..n as i64).map(Value::Int).collect();
            let a = Tuple::from_exact_iter(n, vals.iter().copied());
            assert_eq!(a, Tuple::new(&vals));
            assert_eq!(a.arity(), n);
        }
    }
}
