//! First-party property-based testing.
//!
//! A minimal, dependency-free replacement for the `proptest` crate,
//! covering exactly the surface this workspace uses: composable
//! generators ([`strategy`]), a case runner with seed control
//! ([`runner`]), and counterexample shrinking ([`shrink`]).
//!
//! # Design: choice-stream generation
//!
//! Every generated value is a pure function of a recorded stream of
//! `u64` "choices" ([`source::DataSource`]). Generation draws choices
//! from a seeded [`crate::rng::Rng`] and records them; shrinking edits
//! the recorded stream (deleting spans, zeroing, binary-searching
//! individual choices toward zero) and re-runs the generator, keeping
//! any edit that still fails the property. Because generators are total
//! functions of the stream, every edited stream regenerates into a
//! *valid* value — so shrinking composes through `prop_map`, unions,
//! tuples and collections with no per-combinator shrink logic.
//!
//! # Reproducibility
//!
//! Runs are deterministic: the default seed is a fixed constant, so CI
//! failures reproduce locally. Set `PROPTEST_SEED=<u64>` to explore a
//! different stream, and `PROPTEST_CASES=<n>` to change the case count;
//! failure messages echo the seed that produced them.
//!
//! # Example
//!
//! ```
//! use dcd_common::proptest::prelude::*;
//!
//! // In a test module this would carry `#[test]` inside the macro.
//! proptest! {
//!     fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
//!         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//! }
//! addition_commutes();
//! ```

mod macros;
pub mod runner;
pub mod shrink;
pub mod source;
pub mod strategy;

pub use runner::{check, Config, ProptestConfig};
pub use strategy::{any, collection, sample, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// One-import convenience module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::runner::{check, Config, ProptestConfig};
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, StrategyExt, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
