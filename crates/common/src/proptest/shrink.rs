//! Counterexample shrinking over recorded choice streams.
//!
//! Shrinking never touches generated values directly: it edits the
//! recorded `u64` choice stream and re-runs the generator, keeping any
//! edit whose regenerated value still fails the property. Three passes
//! repeat until a fixpoint (or the execution budget runs out):
//!
//! 1. **Span deletion** — delta-debugging style removal of chunks, from
//!    half the stream down to single choices. Removes list elements,
//!    collapses unions onto earlier arms, drops whole subterms.
//! 2. **Span zeroing** — forces chunks to the canonical "simplest"
//!    choice without changing stream length.
//! 3. **Per-choice binary search** — minimizes each individual choice
//!    toward zero, which finds exact boundary counterexamples (e.g. the
//!    smallest integer that fails).

/// Shrinks `script`, a choice stream whose generated value fails the
/// property. `still_fails` regenerates from a candidate stream and
/// returns `Some(value)` iff the property still fails. Returns the
/// minimal stream found and its (failing) generated value.
///
/// `budget` caps the number of `still_fails` executions.
pub fn shrink<V>(
    mut script: Vec<u64>,
    initial_value: V,
    mut still_fails: impl FnMut(&[u64]) -> Option<V>,
    budget: u32,
) -> (Vec<u64>, V) {
    let mut best = initial_value;
    let mut left = budget;
    loop {
        let mut improved = false;

        // Pass 1: delete spans, largest chunks first.
        let mut chunk = script.len().next_power_of_two().max(1);
        while chunk >= 1 && left > 0 {
            let mut start = 0;
            while start < script.len() && left > 0 {
                let end = (start + chunk).min(script.len());
                let mut candidate = Vec::with_capacity(script.len() - (end - start));
                candidate.extend_from_slice(&script[..start]);
                candidate.extend_from_slice(&script[end..]);
                left -= 1;
                if let Some(v) = still_fails(&candidate) {
                    script = candidate;
                    best = v;
                    improved = true;
                    // Retry the same start: the next chunk shifted in.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: zero spans.
        let mut chunk = script.len().next_power_of_two().max(1);
        while chunk >= 1 && left > 0 {
            let mut start = 0;
            while start < script.len() && left > 0 {
                let end = (start + chunk).min(script.len());
                if script[start..end].iter().any(|&x| x != 0) {
                    let mut candidate = script.clone();
                    candidate[start..end].fill(0);
                    left -= 1;
                    if let Some(v) = still_fails(&candidate) {
                        script = candidate;
                        best = v;
                        improved = true;
                    }
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 3: binary-search each choice toward zero.
        for i in 0..script.len() {
            if script[i] == 0 || left == 0 {
                continue;
            }
            // `lo` is known to pass (zeroing was tried above), `hi` to fail.
            let mut lo = 0u64;
            let mut hi = script[i];
            let mut candidate = script.clone();
            while hi - lo > 1 && left > 0 {
                let mid = lo + (hi - lo) / 2;
                candidate[i] = mid;
                left -= 1;
                match still_fails(&candidate) {
                    Some(v) => {
                        hi = mid;
                        best = v;
                    }
                    None => lo = mid,
                }
            }
            if hi < script[i] {
                script[i] = hi;
                improved = true;
            }
        }

        if !improved || left == 0 {
            return (script, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proptest::source::DataSource;
    use crate::proptest::strategy::{any, collection, Strategy};

    fn fails_with<'a, S: Strategy>(
        strategy: &'a S,
        pred: impl Fn(&S::Value) -> bool + Copy + 'a,
    ) -> impl FnMut(&[u64]) -> Option<S::Value> + 'a {
        move |script| {
            let mut src = DataSource::replay(script.to_vec());
            let v = strategy.generate(&mut src);
            pred(&v).then_some(v)
        }
    }

    #[test]
    fn binary_search_finds_exact_boundary() {
        let strat = any::<u64>();
        // Property "x < 100" fails for x >= 100; minimal counterexample 100.
        let (_, v) = shrink(
            vec![8_731_442_223],
            8_731_442_223,
            fails_with(&strat, |&x| x >= 100),
            10_000,
        );
        assert_eq!(v, 100);
    }

    #[test]
    fn deletion_shrinks_lists_to_minimal_length() {
        let strat = collection::vec(0u64..1000, 0..50);
        // Failing property: the list contains at least 2 elements >= 10.
        let pred = |v: &Vec<u64>| v.iter().filter(|&&x| x >= 10).count() >= 2;
        let mut src = DataSource::fresh(crate::rng::Rng::seed_from_u64(77));
        let mut value = strat.generate(&mut src);
        while !pred(&value) {
            src = DataSource::fresh(crate::rng::Rng::seed_from_u64(src.draw()));
            value = strat.generate(&mut src);
        }
        let (_, v) = shrink(src.into_script(), value, fails_with(&strat, pred), 10_000);
        assert_eq!(v, vec![10, 10], "minimal: exactly two boundary elements");
    }

    #[test]
    fn budget_zero_returns_input_unchanged() {
        let strat = any::<u64>();
        let (s, v) = shrink(vec![500], 500, fails_with(&strat, |&x| x >= 100), 0);
        assert_eq!(s, vec![500]);
        assert_eq!(v, 500);
    }
}
