//! Strategies: composable value generators over a choice stream.

use super::source::DataSource;
use std::fmt;
use std::marker::PhantomData;

/// A generator of test values.
///
/// Strategies are *total* functions of the choice stream: any stream —
/// including ones edited by the shrinker — produces a valid value. The
/// convention that smaller choices mean "simpler" values is what makes
/// stream-level shrinking produce minimal counterexamples.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + fmt::Debug;

    /// Generates one value, drawing choices from `src`.
    fn generate(&self, src: &mut DataSource) -> Self::Value;
}

/// Combinator methods for every [`Strategy`].
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f` (shrinking composes for free,
    /// since it happens on the underlying choice stream).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Clone + fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value (mirroring
    /// `proptest`'s `prop_flat_map`): `f` turns the first stage's value
    /// into the strategy used for the second stage. Both stages draw from
    /// the same choice stream, so shrinking still composes.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _src: &mut DataSource) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, src: &mut DataSource) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// The strategy returned by [`StrategyExt::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, src: &mut DataSource) -> S2::Value {
        let first = self.inner.generate(src);
        (self.f)(first).generate(src)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Clone + fmt::Debug> BoxedStrategy<T> {
    /// Boxes `strategy`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy(Box::new(strategy))
    }
}

impl<T: Clone + fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource) -> T {
        self.0.generate(src)
    }
}

/// A weighted choice between strategies (the engine behind
/// [`prop_oneof!`](crate::prop_oneof)). Choice zero — the shrink
/// target — selects the first arm, so list "simplest" arms first.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + fmt::Debug> Union<T> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "union needs at least one positive-weight arm");
        Union { arms, total }
    }
}

impl<T: Clone + fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource) -> T {
        let mut pick = src.draw() % self.total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(src);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total by construction")
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut DataSource) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (src.draw() % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, src: &mut DataSource) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain (e.g. `0..=u64::MAX`).
                    return src.draw() as $t;
                }
                (lo as i128 + (src.draw() % span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_strategy_for_tuples {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, src: &mut DataSource) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}

impl_strategy_for_tuples!(A.0);
impl_strategy_for_tuples!(A.0, B.1);
impl_strategy_for_tuples!(A.0, B.1, C.2);
impl_strategy_for_tuples!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuples!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuples!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Clone + fmt::Debug {
    /// Generates one arbitrary value from the choice stream.
    fn arbitrary_from(src: &mut DataSource) -> Self;
}

/// ZigZag decoding: maps `0, 1, 2, 3, …` to `0, -1, 1, -2, …`, so
/// shrinking a raw choice toward zero shrinks the magnitude.
#[inline]
fn zigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

impl Arbitrary for u64 {
    fn arbitrary_from(src: &mut DataSource) -> u64 {
        src.draw()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_from(src: &mut DataSource) -> u32 {
        src.draw() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary_from(src: &mut DataSource) -> u16 {
        src.draw() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary_from(src: &mut DataSource) -> u8 {
        src.draw() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary_from(src: &mut DataSource) -> usize {
        src.draw() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary_from(src: &mut DataSource) -> i64 {
        zigzag(src.draw())
    }
}

impl Arbitrary for i32 {
    fn arbitrary_from(src: &mut DataSource) -> i32 {
        zigzag(src.draw() & 0xFFFF_FFFF) as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary_from(src: &mut DataSource) -> bool {
        src.draw() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_from(src: &mut DataSource) -> f64 {
        // Mantissa in ±2^53 (every integer exact in f64) times a power
        // of two in 2^-32..=2^32: finite, sortable, shrinks to 0.0.
        let mantissa = zigzag(src.draw() & ((1 << 54) - 1));
        let exp = (src.draw() % 65) as i32 - 32;
        (mantissa as f64) * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource) -> T {
        T::arbitrary_from(src)
    }
}

/// A whole-domain strategy for `T`, mirroring `proptest::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`vec`, `btree_set`), mirroring
/// `proptest::collection`.
pub mod collection {
    use super::{DataSource, Strategy};
    use std::collections::BTreeSet;

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, src: &mut DataSource) -> usize {
            let span = (self.max - self.min + 1) as u64;
            self.min + (src.draw() % span) as usize
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, src: &mut DataSource) -> Self::Value {
            let len = self.size.sample(src);
            (0..len).map(|_| self.elem.generate(src)).collect()
        }
    }

    /// Vectors of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, src: &mut DataSource) -> Self::Value {
            let target = self.size.sample(src);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so small
            // element domains cannot loop forever.
            let mut attempts = 10 * target + 20;
            while set.len() < target && attempts > 0 {
                set.insert(self.elem.generate(src));
                attempts -= 1;
            }
            set
        }
    }

    /// Sets of `elem` values with (up to) `size` distinct elements.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Sampling helpers, mirroring `proptest::sample`.
pub mod sample {
    use super::{Arbitrary, DataSource};

    /// An index into a collection whose length is only known at use
    /// time: generate an [`Index`], then call [`Index::index`] with the
    /// actual length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete (non-zero) length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_from(src: &mut DataSource) -> Self {
            Index(src.draw())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::DataSource;
    use super::*;
    use crate::rng::Rng;

    fn fresh() -> DataSource {
        DataSource::fresh(Rng::seed_from_u64(0xD0))
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut src = fresh();
        for _ in 0..500 {
            let v = (3i64..17).generate(&mut src);
            assert!((3..17).contains(&v));
            let w = (2u8..=6).generate(&mut src);
            assert!((2..=6).contains(&w));
        }
    }

    #[test]
    fn zero_stream_yields_minimal_values() {
        let mut src = DataSource::replay(vec![]);
        assert_eq!((5i64..90).generate(&mut src), 5);
        assert_eq!(any::<i64>().generate(&mut src), 0);
        assert_eq!(any::<f64>().generate(&mut src), 0.0);
        assert!(!any::<bool>().generate(&mut src));
        let v = collection::vec(0i64..10, 2..5).generate(&mut src);
        assert_eq!(v, vec![0, 0]);
    }

    #[test]
    fn flat_map_builds_dependent_strategies() {
        let mut src = fresh();
        // Length drawn first, then a vec of exactly that length.
        let s = (1usize..6).prop_flat_map(|n| collection::vec(0u64..10, n..n + 1));
        for _ in 0..200 {
            let v = s.generate(&mut src);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut src = fresh();
        let s = (0u8..4).prop_map(|i| format!("p{i}"));
        let v = s.generate(&mut src);
        assert!(["p0", "p1", "p2", "p3"].contains(&v.as_str()));
        assert_eq!(Just(41i32).generate(&mut src), 41);
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![
            (3, BoxedStrategy::new(Just(0u8))),
            (1, BoxedStrategy::new(Just(1u8))),
        ]);
        let mut src = fresh();
        let ones = (0..4000).filter(|_| u.generate(&mut src) == 1).count();
        assert!((700..1300).contains(&ones), "got {ones}");
    }

    #[test]
    fn union_first_arm_is_the_shrink_target() {
        let u = Union::new(vec![
            (1, BoxedStrategy::new(Just(7u8))),
            (1, BoxedStrategy::new(Just(9u8))),
        ]);
        let mut src = DataSource::replay(vec![0]);
        assert_eq!(u.generate(&mut src), 7);
    }

    #[test]
    fn vec_lengths_span_the_size_range() {
        let mut src = fresh();
        let s = collection::vec(any::<u64>(), 1..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.generate(&mut src).len()] = true;
        }
        assert!(!seen[0] && seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn btree_set_hits_target_sizes() {
        let mut src = fresh();
        let s = collection::btree_set(0u64..500, 10..11);
        let set = s.generate(&mut src);
        assert_eq!(set.len(), 10);
        assert!(set.iter().all(|&x| x < 500));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut src = fresh();
        let ((a, b), idx) = ((0i64..5, 10i64..15), any::<sample::Index>()).generate(&mut src);
        assert!((0..5).contains(&a));
        assert!((10..15).contains(&b));
        assert!(idx.index(3) < 3);
    }

    #[test]
    fn arbitrary_i64_covers_both_signs() {
        let mut src = fresh();
        let vs: Vec<i64> = (0..100).map(|_| any::<i64>().generate(&mut src)).collect();
        assert!(vs.iter().any(|&v| v > 0));
        assert!(vs.iter().any(|&v| v < 0));
    }

    #[test]
    fn arbitrary_f64_is_finite_and_varied() {
        let mut src = fresh();
        let vs: Vec<f64> = (0..100).map(|_| any::<f64>().generate(&mut src)).collect();
        assert!(vs.iter().all(|v| v.is_finite()));
        assert!(vs.iter().any(|&v| v != vs[0]));
    }
}
