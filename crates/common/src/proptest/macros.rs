//! The `proptest!` / `prop_assert*` / `prop_oneof!` macros, mirroring
//! the upstream crate's syntax so test suites port mechanically.

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(a in any::<i64>(), b in 0usize..10) {
///         prop_assert!(a.checked_mul(b as i64).is_some() || a.abs() > 1);
///     }
/// }
/// ```
///
/// Each function body runs once per generated case; failures (panics or
/// `prop_assert!`) are shrunk to a minimal counterexample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::proptest::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ($($strategy,)+);
            $crate::proptest::check(&__cfg, &__strategy, |__value| {
                let ($($arg,)+) = ::core::clone::Clone::clone(__value);
                $body
            });
        }
    )*};
}

/// Weighted (or unweighted) choice between strategies:
/// `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::proptest::strategy::Union::new(vec![
            $(($weight as u32, $crate::proptest::strategy::BoxedStrategy::new($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Property-test assertion; identical to `assert!` (the runner catches
/// the panic and shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion; identical to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::proptest::prelude::*;

    proptest! {
        #[test]
        fn macro_generates_runnable_properties(
            a in any::<i64>(),
            mut v in crate::proptest::collection::vec(0i64..10, 0..5),
        ) {
            v.push(a);
            prop_assert_eq!(v.last().copied(), Some(a));
            prop_assert!(v.len() <= 5);
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_attribute_is_honoured(x in 0u64..5, y in 0u64..5) {
            prop_assert!(x < 5 && y < 5);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "minimal counterexample")]
        fn failing_property_panics_with_counterexample(x in any::<u64>()) {
            prop_assert!(x % 2 == 0 || x < 7);
        }
    }

    #[test]
    fn run_the_macro_defined_tests() {
        // The functions above carry their own #[test] attributes; this
        // test exists only to document that the macro defines plain
        // functions at module scope.
        macro_generates_runnable_properties();
    }

    #[test]
    fn prop_oneof_unweighted_and_weighted_forms() {
        use crate::proptest::source::DataSource;
        use crate::proptest::strategy::{Just, Strategy};
        let u = prop_oneof![Just(1u8), Just(2u8)];
        let w = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut src = DataSource::replay(vec![0]);
        assert_eq!(u.generate(&mut src), 1);
        let mut src = DataSource::replay(vec![0]);
        assert_eq!(w.generate(&mut src), 1);
    }
}
