//! The recorded choice stream that generators draw from.

use crate::rng::Rng;

/// A source of `u64` choices for strategy generation.
///
/// In *fresh* mode, choices come from a seeded PRNG and are recorded; in
/// *replay* mode, choices come from an (edited) recording, with zeros
/// substituted once the recording is exhausted — so any stream, however
/// mangled by the shrinker, still generates a valid value.
pub struct DataSource {
    rng: Option<Rng>,
    script: Vec<u64>,
    pos: usize,
}

impl DataSource {
    /// A fresh source drawing from `rng` and recording every choice.
    pub fn fresh(rng: Rng) -> Self {
        DataSource {
            rng: Some(rng),
            script: Vec::new(),
            pos: 0,
        }
    }

    /// A replay source reading choices from `script` (zeros when past
    /// the end).
    pub fn replay(script: Vec<u64>) -> Self {
        DataSource {
            rng: None,
            script,
            pos: 0,
        }
    }

    /// Draws the next choice.
    #[inline]
    pub fn draw(&mut self) -> u64 {
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.script.push(v);
                v
            }
            None => {
                let v = self.script.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        }
    }

    /// The recorded (fresh mode) or supplied (replay mode) choice stream.
    pub fn into_script(self) -> Vec<u64> {
        self.script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_records_what_it_draws() {
        let mut src = DataSource::fresh(Rng::seed_from_u64(1));
        let drawn: Vec<u64> = (0..5).map(|_| src.draw()).collect();
        assert_eq!(src.into_script(), drawn);
    }

    #[test]
    fn replay_echoes_script_then_zeros() {
        let mut src = DataSource::replay(vec![7, 8]);
        assert_eq!(src.draw(), 7);
        assert_eq!(src.draw(), 8);
        assert_eq!(src.draw(), 0);
        assert_eq!(src.draw(), 0);
    }
}
