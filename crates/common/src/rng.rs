//! First-party pseudo-random number generation.
//!
//! The workspace builds hermetically — no external crates — so the
//! `rand` surface the generators need is implemented here from scratch:
//!
//! * [`SplitMix64`] — the 64-bit seeding/stream generator (Steele et al.,
//!   "Fast splittable pseudorandom number generators"). Used to expand a
//!   single `u64` seed into the xoshiro state, and wherever a tiny,
//!   allocation-free stream is enough.
//! * [`Rng`] — xoshiro256++ (Blackman & Vigna), the workhorse generator:
//!   64-bit output, 256-bit state, passes BigCrush, and is trivially
//!   reproducible from a seed. All dataset generation is bit-for-bit
//!   deterministic given the seed.
//! * [`Bernoulli`] — a pre-computed biased coin.
//!
//! The sampling surface mirrors the subset of `rand` the workspace used:
//! `gen_range` over integer/float ranges, `gen_bool`, `gen_f64`, and
//! `shuffle`.

/// The SplitMix64 generator: one `u64` of state, one output per step.
///
/// Primarily used to derive independent, well-mixed seeds (its output
/// function is a strong bit mixer, so even seeds `0, 1, 2, …` yield
/// uncorrelated streams).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator — the workspace's general-purpose PRNG.
///
/// Seeded via [`Rng::seed_from_u64`], which expands the seed through
/// [`SplitMix64`] exactly as the reference implementation recommends, so
/// streams for nearby seeds are independent.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper bits of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Biased coin: `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method
    /// with rejection, so the result is exactly uniform.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform sample from `range` (integer `Range`/`RangeInclusive`, or an
    /// `f64` half-open `Range`).
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // Span 0 means the full 64-bit domain (e.g. 0..=u64::MAX).
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.gen_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// A pre-validated biased coin, for hot loops sampling the same `p`.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    /// `p` scaled into the 64-bit integer domain: compare one raw draw.
    threshold: u64,
}

impl Bernoulli {
    /// Creates a coin that lands `true` with probability `p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * (u64::MAX as f64)) as u64
        };
        Bernoulli { threshold }
    }

    /// Flips the coin.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> bool {
        rng.next_u64() < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seeds_decorrelate() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = r.gen_range(2..=6);
            assert!((2..=6).contains(&y));
            let z = r.gen_range(0.2..0.6);
            assert!((0.2..0.6).contains(&z));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = Rng::seed_from_u64(3);
        // Must not panic or divide by a zero span.
        let _: u64 = r.gen_range(0..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_f64_in_unit_interval_and_not_constant() {
        let mut r = Rng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100).map(|_| r.gen_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(xs.iter().any(|&x| x != xs[0]));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn bernoulli_matches_gen_bool_semantics() {
        let mut r = Rng::seed_from_u64(11);
        let coin = Bernoulli::new(0.7);
        let hits = (0..10_000).filter(|_| coin.sample(&mut r)).count();
        assert!((6_700..7_300).contains(&hits), "got {hits}");
        assert!(!Bernoulli::new(0.0).sample(&mut r));
        assert!(Bernoulli::new(1.0).sample(&mut r));
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut r = Rng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "shuffle moved nothing");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(99).shuffle(&mut a);
        Rng::seed_from_u64(99).shuffle(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(21);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
