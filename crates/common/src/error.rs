//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the DCDatalog frontend and engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcdError {
    /// Lexical or syntactic error in a Datalog program, with 1-based
    /// line/column of the offending token.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        col: usize,
    },
    /// Semantic error found during program analysis (unbound variables,
    /// arity mismatches, negation in recursion, …).
    Analysis(String),
    /// Error while planning a validated program.
    Planning(String),
    /// Runtime failure during evaluation.
    Execution(String),
    /// An EDB relation referenced by the program was not supplied.
    MissingRelation(String),
}

impl fmt::Display for DcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcdError::Parse { message, line, col } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            DcdError::Analysis(m) => write!(f, "analysis error: {m}"),
            DcdError::Planning(m) => write!(f, "planning error: {m}"),
            DcdError::Execution(m) => write!(f, "execution error: {m}"),
            DcdError::MissingRelation(m) => write!(f, "missing EDB relation: {m}"),
        }
    }
}

impl std::error::Error for DcdError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, DcdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DcdError::Parse {
            message: "unexpected token".into(),
            line: 3,
            col: 14,
        };
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
        assert_eq!(
            DcdError::MissingRelation("arc".into()).to_string(),
            "missing EDB relation: arc"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DcdError::Analysis("x".into()));
    }
}
