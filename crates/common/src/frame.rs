//! Flat, arity-strided row frames: the wire format of the exchange path.
//!
//! A [`Frame`] stores `len` rows of a fixed arity contiguously in one
//! `Vec<Value>`. Compared to a `Vec<Tuple>` it has no per-row enum tag, no
//! per-row heap spill for arity > [`INLINE_ARITY`](crate::tuple::INLINE_ARITY),
//! and no per-row allocation when building: appending a row is a bounds
//! check plus a memcpy of `arity` values into one growing buffer. Reading a
//! row is a slice view, so receivers can merge without materializing a
//! `Tuple` until (and unless) storage requires one.
//!
//! The arity is a property of the frame, not of each row; an empty frame
//! created with [`Frame::new`] pins it up front, while
//! [`Frame::for_rel`] leaves it to be learned from the first row pushed
//! (relations have a fixed merge-layout arity, but the sender does not
//! always know it statically). Arity-0 rows (propositional facts) are
//! legal: the row count is tracked explicitly, not derived from
//! `values.len() / arity`.

use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A flat block of fixed-arity rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frame {
    /// Values of all rows, concatenated: row `i` is
    /// `values[i * arity .. (i + 1) * arity]`.
    values: Vec<Value>,
    /// The fixed row width. `None` until the first row is pushed.
    arity: Option<usize>,
    /// Number of rows (explicit so arity-0 frames can count rows).
    rows: usize,
}

impl Frame {
    /// An empty frame with a pinned arity.
    pub fn new(arity: usize) -> Self {
        Frame {
            values: Vec::new(),
            arity: Some(arity),
            rows: 0,
        }
    }

    /// An empty frame whose arity is learned from the first pushed row.
    pub fn for_rel() -> Self {
        Frame::default()
    }

    /// An empty frame with a pinned arity and room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        Frame {
            values: Vec::with_capacity(arity * rows),
            arity: Some(arity),
            rows: 0,
        }
    }

    /// The row width, or `None` for a fresh [`Frame::for_rel`] frame.
    #[inline]
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the frame holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Payload size in bytes (what actually crosses the exchange).
    #[inline]
    pub fn payload_bytes(&self) -> u64 {
        (self.values.len() * std::mem::size_of::<Value>()) as u64
    }

    /// Appends one row. Panics if the slice width disagrees with the
    /// frame's arity (a routing bug, not a data error).
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        match self.arity {
            Some(a) => assert_eq!(a, row.len(), "frame arity mismatch"),
            None => self.arity = Some(row.len()),
        }
        self.values.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends one tuple (encode).
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_row(t.values());
    }

    /// Row `i` as a value slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity.unwrap_or(0);
        debug_assert!(i < self.rows, "row index out of range");
        &self.values[i * a..(i + 1) * a]
    }

    /// Iterates over the rows as value slices.
    pub fn iter(&self) -> FrameRows<'_> {
        FrameRows {
            frame: self,
            next: 0,
        }
    }

    /// Decodes row `i` into a [`Tuple`].
    #[inline]
    pub fn tuple(&self, i: usize) -> Tuple {
        Tuple::new(self.row(i))
    }

    /// Encodes a slice of tuples (all of the frame's arity) into a frame.
    pub fn from_tuples(arity: usize, tuples: &[Tuple]) -> Self {
        let mut f = Frame::with_capacity(arity, tuples.len());
        for t in tuples {
            f.push_tuple(t);
        }
        f
    }

    /// Decodes every row back into tuples (the reference roundtrip).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.tuple(i)).collect()
    }

    /// Splits the frame into frames of at most `max_rows` rows each. The
    /// common case (`len <= max_rows`) moves the frame without copying.
    pub fn into_batches(self, max_rows: usize) -> Vec<Frame> {
        let max_rows = max_rows.max(1);
        if self.rows <= max_rows {
            return vec![self];
        }
        let a = self.arity.unwrap_or(0);
        let mut out = Vec::with_capacity(self.rows.div_ceil(max_rows));
        let mut start = 0;
        while start < self.rows {
            let end = (start + max_rows).min(self.rows);
            let mut chunk = Frame::with_capacity(a, end - start);
            chunk
                .values
                .extend_from_slice(&self.values[start * a..end * a]);
            chunk.rows = end - start;
            out.push(chunk);
            start = end;
        }
        out
    }
}

/// Iterator over a frame's rows as `&[Value]` slices.
pub struct FrameRows<'a> {
    frame: &'a Frame,
    next: usize,
}

impl<'a> Iterator for FrameRows<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        if self.next >= self.frame.rows {
            return None;
        }
        let row = self.frame.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.frame.rows - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FrameRows<'_> {}

impl<'a> IntoIterator for &'a Frame {
    type Item = &'a [Value];
    type IntoIter = FrameRows<'a>;

    fn into_iter(self) -> FrameRows<'a> {
        self.iter()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame[{} x {:?}]", self.rows, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let tuples = vec![
            Tuple::from_ints(&[1, 2]),
            Tuple::from_ints(&[3, 4]),
            Tuple::from_ints(&[5, 6]),
        ];
        let f = Frame::from_tuples(2, &tuples);
        assert_eq!(f.len(), 3);
        assert_eq!(f.arity(), Some(2));
        assert_eq!(f.to_tuples(), tuples);
        assert_eq!(f.row(1), &[Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn arity_zero_counts_rows() {
        let mut f = Frame::new(0);
        f.push_tuple(&Tuple::unit());
        f.push_tuple(&Tuple::unit());
        assert_eq!(f.len(), 2);
        assert_eq!(f.payload_bytes(), 0);
        assert_eq!(f.to_tuples(), vec![Tuple::unit(), Tuple::unit()]);
    }

    #[test]
    fn for_rel_learns_arity_from_first_row() {
        let mut f = Frame::for_rel();
        assert_eq!(f.arity(), None);
        f.push_row(&[Value::Int(7), Value::Int(8), Value::Int(9)]);
        assert_eq!(f.arity(), Some(3));
        f.push_tuple(&Tuple::from_ints(&[1, 2, 3]));
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mixed_arities_panic() {
        let mut f = Frame::new(2);
        f.push_row(&[Value::Int(1)]);
    }

    #[test]
    fn iterator_yields_all_rows_in_order() {
        let f = Frame::from_tuples(
            1,
            &(0..10).map(|i| Tuple::from_ints(&[i])).collect::<Vec<_>>(),
        );
        let seen: Vec<i64> = f.iter().map(|r| r[0].expect_int()).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(f.iter().len(), 10);
    }

    #[test]
    fn into_batches_moves_small_frames() {
        let f = Frame::from_tuples(2, &[Tuple::from_ints(&[1, 2])]);
        let batches = f.clone().into_batches(10);
        assert_eq!(batches, vec![f]);
    }

    #[test]
    fn into_batches_splits_and_preserves_rows() {
        let tuples: Vec<Tuple> = (0..7).map(|i| Tuple::from_ints(&[i, i + 1])).collect();
        let f = Frame::from_tuples(2, &tuples);
        let batches = f.into_batches(3);
        assert_eq!(
            batches.iter().map(Frame::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let back: Vec<Tuple> = batches.iter().flat_map(Frame::to_tuples).collect();
        assert_eq!(back, tuples);
    }

    #[test]
    fn payload_bytes_counts_values() {
        let f = Frame::from_tuples(3, &[Tuple::from_ints(&[1, 2, 3])]);
        assert_eq!(f.payload_bytes(), (3 * std::mem::size_of::<Value>()) as u64);
    }
}
