#![warn(missing_docs)]
//! Common foundations for the DCDatalog workspace.
//!
//! This crate defines the data model shared by every other crate:
//!
//! * [`Value`] — a compact, copyable, totally-ordered scalar (integer or
//!   float) used for every term in a Datalog fact.
//! * [`Tuple`] — a small fixed-arity row of values with inline storage for
//!   the arities that dominate Datalog workloads.
//! * [`Frame`] — a flat, arity-strided block of rows: the allocation-free
//!   wire format of the delta exchange between workers.
//! * [`hash`] — the multiply-shift / Fx-style 64-bit hash used everywhere a
//!   hash of a value or key is needed (indexes, caches, partitioning).
//! * [`Partitioner`] — the hash-based discriminating function `H` of the
//!   paper's Algorithm 1, mapping join keys to workers.
//! * [`DcdError`] — the workspace-wide error type.
//! * [`stats`] — streaming mean/variance and EWMA estimators used by the DWS
//!   coordination strategy to track arrival and service rates.
//! * [`rng`] — first-party seedable PRNGs (SplitMix64, xoshiro256++) so the
//!   workspace needs no external `rand`: every dataset and test input is
//!   bit-for-bit reproducible from a seed.
//! * [`proptest`] — a first-party property-testing harness (generators,
//!   runner, counterexample shrinking) replacing the external `proptest`
//!   crate; see DESIGN.md §"Hermetic build".
//! * [`json`] — a minimal first-party JSON parser, the read side of the
//!   workspace's hand-rolled emitters (stats reports, trace exports);
//!   used by tests and tooling to validate those documents.

pub mod error;
pub mod frame;
pub mod hash;
pub mod json;
pub mod partition;
pub mod proptest;
pub mod rng;
pub mod stats;
pub mod tuple;
pub mod value;

pub use error::{DcdError, Result};
pub use frame::Frame;
pub use json::Json;
pub use partition::Partitioner;
pub use tuple::Tuple;
pub use value::Value;

/// Identifier of a worker (thread) in the parallel runtime.
pub type WorkerId = usize;

/// Identifier of a predicate (relation) assigned by the frontend catalog.
pub type PredicateId = usize;
