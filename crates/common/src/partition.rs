//! The hash-based discriminating function `H` of Algorithm 1.
//!
//! Both base and recursive tables are split into disjoint partitions by the
//! value of their join key (§2.2); partition `i` is owned by worker `W_i`.

use crate::hash::mix64;
use crate::value::Value;
use crate::WorkerId;

/// Maps 64-bit join keys to one of `n` workers.
///
/// The mapping mixes the key first so that dense integer vertex ids spread
/// across workers instead of striping, then reduces with the Lemire
/// multiply-shift trick (no modulo in the hot path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    n: usize,
}

impl Partitioner {
    /// Creates a partitioner over `n ≥ 1` workers.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one partition");
        Partitioner { n }
    }

    /// Number of partitions/workers.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.n
    }

    /// The worker owning 64-bit key `k` — the function `H`.
    #[inline]
    pub fn of_key(&self, k: u64) -> WorkerId {
        // Multiply-shift reduction of the mixed key to [0, n).
        ((mix64(k) as u128 * self.n as u128) >> 64) as usize
    }

    /// The worker owning `value` (hashes its canonical key bits).
    #[inline]
    pub fn of_value(&self, value: Value) -> WorkerId {
        self.of_key(value.key_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_maps_everything_to_zero() {
        let p = Partitioner::new(1);
        for k in 0..100 {
            assert_eq!(p.of_key(k), 0);
        }
    }

    #[test]
    fn result_is_in_range() {
        for n in 1..17 {
            let p = Partitioner::new(n);
            for k in 0..1000u64 {
                assert!(p.of_key(k * 2_654_435_761) < n);
            }
        }
    }

    #[test]
    fn dense_ids_spread_roughly_evenly() {
        let n = 8;
        let p = Partitioner::new(n);
        let mut counts = vec![0usize; n];
        let total = 80_000u64;
        for k in 0..total {
            counts[p.of_key(k)] += 1;
        }
        let expected = total as usize / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "partition {i} got {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Partitioner::new(7);
        let b = Partitioner::new(7);
        for k in 0..500 {
            assert_eq!(a.of_key(k), b.of_key(k));
        }
    }

    #[test]
    fn value_partitioning_matches_key_partitioning() {
        let p = Partitioner::new(5);
        for k in -50i64..50 {
            assert_eq!(p.of_value(Value::Int(k)), p.of_key(k as u64));
        }
        // Int/Float equal values land on the same worker.
        assert_eq!(p.of_value(Value::Int(7)), p.of_value(Value::Float(7.0)));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Partitioner::new(0);
    }
}
