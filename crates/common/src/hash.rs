//! Fast 64-bit hashing.
//!
//! A multiply-rotate construction in the style of FxHash / wyhash finalizers.
//! Datalog keys are machine integers, so a low-quality-but-fast integer mixer
//! dominates SipHash by a wide margin (see the perf-book hashing chapter);
//! implementing it here keeps the workspace free of extra dependencies.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Mixes a 64-bit key into a well-distributed 64-bit hash
/// (splitmix64 finalizer — full avalanche, 3 multiplies).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines two hashes (order-sensitive).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a.rotate_left(26) ^ b ^ SEED)
}

/// An Fx-style streaming hasher for use with `HashMap`/`HashSet`.
#[derive(Default, Clone)]
pub struct FxStyleHasher {
    state: u64,
}

impl Hasher for FxStyleHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final mix so short integer keys still avalanche into the high
        // bits used by hashbrown's control bytes.
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = self.state.rotate_left(5).wrapping_mul(SEED) ^ v;
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64)
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64)
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64)
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64)
    }
}

/// `BuildHasher` for the workspace hash maps.
pub type FxBuild = BuildHasherDefault<FxStyleHasher>;

/// A `HashMap` using the workspace hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

/// A `HashSet` using the workspace hasher.
pub type FastSet<K> = std::collections::HashSet<K, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanches_low_bits() {
        // Flipping the lowest input bit should flip roughly half the output
        // bits on average.
        let mut total = 0u32;
        for i in 0..1000u64 {
            total += (mix64(i) ^ mix64(i ^ 1)).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!((20.0..44.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&40], 80);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn hasher_distinguishes_streams() {
        use std::hash::Hasher as _;
        let mut a = FxStyleHasher::default();
        let mut b = FxStyleHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
