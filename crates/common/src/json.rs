//! A minimal first-party JSON parser (RFC 8259 subset, hermetic — see
//! DESIGN.md §"Hermetic build").
//!
//! The workspace *emits* JSON with hand-rolled formatters; this module is
//! the read side, used by tests and tooling to validate those documents
//! (stats reports, Chrome/Perfetto traces) instead of grepping substrings.
//! Recursive-descent, owns its output, no streaming — documents here are
//! megabytes at most.
//!
//! Numbers are kept as `f64` (every number the workspace emits fits; the
//! trace/stats counters stay well under 2^53).

use crate::error::{DcdError, Result};
use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so iteration order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items (`None` for other variants).
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`None` for other variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64` (`None` for other variants
    /// and negative numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DcdError {
        DcdError::Execution(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            map.insert(key, self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // workspace; map them to U+FFFD like lone
                            // surrogates rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse(r#""a\n\"bA""#).unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let v = Json::parse(r#"{"xs":[1,2,3],"s":"hi","o":{}}"#).unwrap();
        assert_eq!(v.get("xs").unwrap().items().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("o"), Some(&Json::Obj(BTreeMap::new())));
        assert_eq!(v.get("xs").unwrap().items().unwrap()[2].as_u64(), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "[1,]", "{\"a\":}", "tru", "\"abc", "1 2", "{'a':1}", "[1] x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn roundtrips_the_report_shape() {
        // The exact shape check_stats_json.sh greps for.
        let doc = r#"{
  "schema": 4,
  "per_worker": [
    {"worker":0,"dropped_events":0,"dws_samples":[{"iteration":2,"omega":8}]}
  ],
  "iteration_series": []
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(4));
        let w0 = &v.get("per_worker").unwrap().items().unwrap()[0];
        assert_eq!(w0.get("dropped_events").unwrap().as_u64(), Some(0));
        assert!(v
            .get("iteration_series")
            .unwrap()
            .items()
            .unwrap()
            .is_empty());
    }
}
