//! The scalar value type used for all Datalog terms.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A Datalog constant: a 64-bit integer or a 64-bit float.
///
/// All eight benchmark queries of the paper operate on integer vertex ids,
/// integer costs/levels, or float PageRank masses, so two variants suffice.
/// The type is `Copy`, 16 bytes, and totally ordered (floats are ordered by
/// the IEEE-754 total order, so `NaN` compares consistently and the type can
/// be used as a B+-tree key and inside hash tables).
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// A signed 64-bit integer (vertex ids, counts, integer costs).
    Int(i64),
    /// A 64-bit float (PageRank mass, fractional edge weights).
    Float(f64),
}

#[allow(clippy::should_implement_trait)] // Datalog arithmetic is total (no overflow panics, div-by-zero defined), unlike std ops
impl Value {
    /// Returns the integer payload, or an error-friendly `None` for floats.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Float(_) => None,
        }
    }

    /// Returns the payload as `f64`, converting integers losslessly for the
    /// magnitudes used in practice.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// Returns the integer payload or panics; used on code paths where the
    /// planner has already proven the term is integer-typed.
    #[inline]
    pub fn expect_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected integer value, found float {v}"),
        }
    }

    /// A stable 64-bit key for hashing and partitioning. Integer and float
    /// values that are `==` map to the same key.
    #[inline]
    pub fn key_bits(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            // Floats that happen to be integral compare equal to the
            // corresponding Int, so they must hash identically.
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < (i64::MAX as f64) {
                    v as i64 as u64
                } else {
                    v.to_bits()
                }
            }
        }
    }

    /// Checked addition following Datalog arithmetic: ints stay ints,
    /// any float operand promotes to float.
    #[inline]
    pub fn add(self, other: Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(b)),
            _ => Value::Float(self.as_f64() + other.as_f64()),
        }
    }

    /// Subtraction with the same promotion rule as [`Value::add`].
    #[inline]
    pub fn sub(self, other: Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(b)),
            _ => Value::Float(self.as_f64() - other.as_f64()),
        }
    }

    /// Multiplication with the same promotion rule as [`Value::add`].
    #[inline]
    pub fn mul(self, other: Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(b)),
            _ => Value::Float(self.as_f64() * other.as_f64()),
        }
    }

    /// Division. Integer division by zero yields `Int(0)` (Datalog engines
    /// conventionally make arithmetic total); float division follows IEEE.
    #[inline]
    pub fn div(self, other: Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if b == 0 {
                    Value::Int(0)
                } else {
                    Value::Int(a / b)
                }
            }
            _ => Value::Float(self.as_f64() / other.as_f64()),
        }
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed comparisons go through f64; ties broken so that the
            // ordering stays antisymmetric (Int < Float on exact ties only
            // when bit patterns differ, which total_cmp resolves).
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
        }
    }
}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key_bits().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    #[inline]
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_equality_and_order() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert!(Value::Int(2) < Value::Int(3));
        assert!(Value::Int(-1) < Value::Int(0));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < Value::Float(2.0));
    }

    #[test]
    fn mixed_int_float_equality_is_consistent_with_hash() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(a), hash_of(b));
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::Int(2).add(Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).add(Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(Value::Int(7).div(Value::Int(2)), Value::Int(3));
        assert_eq!(Value::Int(7).div(Value::Int(0)), Value::Int(0));
        assert_eq!(Value::Float(1.0).div(Value::Int(4)), Value::Float(0.25));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(-12).to_string(), "-12");
        assert_eq!(Value::Float(0.5).to_string(), "0.5");
    }

    #[test]
    fn sub_and_mul() {
        assert_eq!(Value::Int(5).sub(Value::Int(7)), Value::Int(-2));
        assert_eq!(Value::Int(4).mul(Value::Int(3)), Value::Int(12));
        assert_eq!(Value::Float(2.0).mul(Value::Int(3)), Value::Float(6.0));
    }
}
