//! Property tests for the value/tuple model and partitioning.

use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcd_common::{Partitioner, Tuple, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
    ]
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                // Eq values must share key bits (hash consistency).
                prop_assert_eq!(a.key_bits(), b.key_bits());
            }
        }
    }

    #[test]
    fn value_ordering_is_transitive(
        mut vs in proptest::collection::vec(value_strategy(), 3..20),
    ) {
        vs.sort();
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn tuple_roundtrip_through_values(ints in proptest::collection::vec(any::<i64>(), 0..9)) {
        let t = Tuple::from_ints(&ints);
        prop_assert_eq!(t.arity(), ints.len());
        let back: Vec<i64> = t.values().iter().map(|v| v.expect_int()).collect();
        prop_assert_eq!(back, ints);
    }

    #[test]
    fn tuple_concat_preserves_contents(
        a in proptest::collection::vec(any::<i64>(), 0..5),
        b in proptest::collection::vec(any::<i64>(), 0..5),
    ) {
        let t = Tuple::from_ints(&a).concat(&Tuple::from_ints(&b));
        let mut want = a.clone();
        want.extend(&b);
        prop_assert_eq!(t, Tuple::from_ints(&want));
    }

    #[test]
    fn tuple_projection_selects(
        vals in proptest::collection::vec(any::<i64>(), 1..6),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
    ) {
        let cols: Vec<usize> = picks.iter().map(|p| p.index(vals.len())).collect();
        let t = Tuple::from_ints(&vals);
        let p = t.project(&cols);
        prop_assert_eq!(p.arity(), cols.len());
        for (i, &c) in cols.iter().enumerate() {
            prop_assert_eq!(p[i], t[c]);
        }
    }

    #[test]
    fn partitioner_is_stable_and_in_range(
        n in 1usize..64,
        keys in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let p = Partitioner::new(n);
        for &k in &keys {
            let w = p.of_key(k);
            prop_assert!(w < n);
            prop_assert_eq!(p.of_key(k), w, "stable");
        }
    }

    #[test]
    fn equal_values_partition_identically(
        // Restricted to the f64-exact integer range, where Int(v) == Float(v).
        v in -(1i64 << 52)..(1i64 << 52),
        n in 1usize..32,
    ) {
        let p = Partitioner::new(n);
        prop_assert_eq!(
            p.of_value(Value::Int(v)),
            p.of_value(Value::Float(v as f64))
        );
    }
}
