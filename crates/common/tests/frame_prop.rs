//! Property tests for the flat [`Frame`] wire format: encode/decode
//! round-trips against [`Tuple`] at arities 0–6, which brackets the
//! `INLINE_ARITY` (= 4) boundary where tuples switch from inline to
//! spilled storage.

use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcd_common::{Frame, Tuple, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
    ]
}

/// Rows of a fixed arity, as flat value vectors.
fn rows_strategy(arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        proptest::collection::vec(value_strategy(), arity..=arity),
        0..40,
    )
}

/// `(arity, rows)` over the full 0..=6 arity range.
fn frame_input() -> impl Strategy<Value = (usize, Vec<Vec<Value>>)> {
    (0usize..=6).prop_flat_map(|a| rows_strategy(a).prop_map(move |rows| (a, rows)))
}

proptest! {
    #[test]
    fn tuple_roundtrip_via_frame((arity, rows) in frame_input()) {
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r)).collect();
        let frame = Frame::from_tuples(arity, &tuples);
        prop_assert_eq!(frame.len(), tuples.len());
        if !tuples.is_empty() {
            prop_assert_eq!(frame.arity(), Some(arity));
        }
        // Decode back: byte-identical tuples, in order.
        prop_assert_eq!(frame.to_tuples(), tuples);
    }

    #[test]
    fn row_views_match_pushed_rows((_arity, rows) in frame_input()) {
        let mut frame = Frame::for_rel();
        for r in &rows {
            frame.push_row(r);
        }
        prop_assert_eq!(frame.len(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(frame.row(i), r.as_slice());
            prop_assert_eq!(&frame.tuple(i), &Tuple::new(r));
        }
        let collected: Vec<Vec<Value>> = frame.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(collected, rows);
    }

    #[test]
    fn push_tuple_and_push_row_agree((arity, rows) in frame_input()) {
        let mut by_row = Frame::new(arity);
        let mut by_tuple = Frame::new(arity);
        for r in &rows {
            by_row.push_row(r);
            by_tuple.push_tuple(&Tuple::new(r));
        }
        prop_assert_eq!(by_row.to_tuples(), by_tuple.to_tuples());
        prop_assert_eq!(by_row.payload_bytes(), by_tuple.payload_bytes());
    }

    #[test]
    fn into_batches_preserves_order_and_bytes(
        (arity, rows) in frame_input(),
        max_rows in 1usize..8,
    ) {
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r)).collect();
        let frame = Frame::from_tuples(arity, &tuples);
        let total_bytes = frame.payload_bytes();
        let pieces = frame.into_batches(max_rows);
        let mut reassembled = Vec::new();
        let mut bytes = 0;
        for p in &pieces {
            prop_assert!(p.len() <= max_rows);
            prop_assert!(!p.is_empty() || tuples.is_empty());
            bytes += p.payload_bytes();
            reassembled.extend(p.to_tuples());
        }
        prop_assert_eq!(reassembled, tuples);
        prop_assert_eq!(bytes, total_bytes);
    }

    #[test]
    fn payload_bytes_is_value_stride(
        arity in 0usize..=6,
        n in 0usize..50,
    ) {
        let mut frame = Frame::new(arity);
        let row: Vec<Value> = (0..arity as i64).map(Value::Int).collect();
        for _ in 0..n {
            frame.push_row(&row);
        }
        prop_assert_eq!(
            frame.payload_bytes(),
            (n * arity * std::mem::size_of::<Value>()) as u64
        );
    }
}

/// The INLINE_ARITY = 4 boundary, deterministically: arity 4 stays inline,
/// arity 5 spills, and the frame encodes both identically.
#[test]
fn inline_boundary_roundtrip() {
    for arity in [3usize, 4, 5] {
        let rows: Vec<Tuple> = (0..10)
            .map(|i| {
                let vals: Vec<i64> = (0..arity as i64).map(|c| i * 10 + c).collect();
                Tuple::from_ints(&vals)
            })
            .collect();
        let frame = Frame::from_tuples(arity, &rows);
        assert_eq!(frame.to_tuples(), rows, "arity {arity}");
    }
}
