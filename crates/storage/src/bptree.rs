//! A from-scratch B+-tree keyed by `u64`.
//!
//! The paper's storage layer (§3) indexes every recursive relation with a
//! B+-tree on the partition/join key; §6.2.1 additionally stores aggregate
//! information inside the index so aggregates are computed by index lookups
//! instead of linear scans. This module provides that tree: keys are the
//! 64-bit canonical key bits of a join key, values are whatever the caller
//! stores in the leaves (tuple buckets, aggregate states, …).
//!
//! Design notes:
//! * Order `MAX_KEYS = 31`: leaves and internals hold at most 31 keys, so a
//!   node split produces two nodes of ≥ 15 keys. Nodes are boxed; children
//!   of internal nodes are owned boxes, which keeps the implementation in
//!   safe Rust (no leaf sibling pointers — ordered iteration walks a stack).
//! * `insert`/`get`/`get_mut`/`remove` are all O(log n); `iter` yields
//!   entries in ascending key order.
//! * Deletion implements proper rebalancing (borrow from sibling, else
//!   merge), verified against `std::collections::BTreeMap` by property
//!   tests.

#![allow(clippy::vec_box)] // children must be boxed: Node<V> is recursive, and moving nodes during splits must stay O(1)

const MAX_KEYS: usize = 31;
const MIN_KEYS: usize = MAX_KEYS / 2; // 15

enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (keys < `keys[i]`) from
        /// `children[i+1]` (keys ≥ `keys[i]`).
        keys: Vec<u64>,
        children: Vec<Box<Node<V>>>,
    },
}

impl<V> Node<V> {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }
}

/// Result of inserting into a subtree: either done, or the child split and
/// hands the new separator + right sibling up to the parent.
enum InsertResult<V> {
    Done(Option<V>),
    Split {
        sep: u64,
        right: Box<Node<V>>,
        replaced: Option<V>,
    },
}

/// A B+-tree map from `u64` keys to `V`.
pub struct BPlusTree<V> {
    root: Box<Node<V>>,
    len: usize,
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Box::new(Node::new_leaf()),
            len: 0,
        }
    }

    /// Number of key/value entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = child_index(keys, key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Mutable lookup of `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mut node = &mut *self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| &mut vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = child_index(keys, key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match Self::insert_rec(&mut self.root, key, value) {
            InsertResult::Done(replaced) => {
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
            InsertResult::Split {
                sep,
                right,
                replaced,
            } => {
                // Grow a new root: the old root becomes the left child.
                let old_root = std::mem::replace(
                    &mut self.root,
                    Box::new(Node::Internal {
                        keys: vec![sep],
                        children: Vec::with_capacity(2),
                    }),
                );
                if let Node::Internal { children, .. } = &mut *self.root {
                    children.push(old_root);
                    children.push(right);
                }
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
        }
    }

    /// Returns a mutable reference to the value at `key`, inserting
    /// `default()` first if absent.
    pub fn or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key, default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the root if it became a single-child internal node.
            let collapse = match &*self.root {
                Node::Internal { children, .. } => children.len() == 1,
                Node::Leaf { .. } => false,
            };
            if collapse {
                let root = std::mem::replace(&mut self.root, Box::new(Node::new_leaf()));
                if let Node::Internal { mut children, .. } = *root {
                    self.root = children.pop().expect("one child");
                }
            }
        }
        removed
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: vec![(&*self.root, 0usize)],
            primed: false,
        }
    }

    fn insert_rec(node: &mut Node<V>, key: u64, value: V) -> InsertResult<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => InsertResult::Done(Some(std::mem::replace(&mut vals[i], value))),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0];
                        InsertResult::Split {
                            sep,
                            right: Box::new(Node::Leaf {
                                keys: right_keys,
                                vals: right_vals,
                            }),
                            replaced: None,
                        }
                    } else {
                        InsertResult::Done(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                match Self::insert_rec(&mut children[idx], key, value) {
                    InsertResult::Done(r) => InsertResult::Done(r),
                    InsertResult::Split {
                        sep,
                        right,
                        replaced,
                    } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            // Middle key moves up; children split after mid.
                            let up = keys[mid];
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // drop `up` from the left node
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: up,
                                right: Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                                replaced,
                            }
                        } else {
                            InsertResult::Done(replaced)
                        }
                    }
                }
            }
        }
    }

    fn remove_rec(node: &mut Node<V>, key: u64) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                let removed = Self::remove_rec(&mut children[idx], key)?;
                if children[idx].len() < MIN_KEYS {
                    Self::rebalance(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Restores the invariant for `children[idx]` after an underflow by
    /// borrowing from a sibling or merging with one.
    fn rebalance(keys: &mut Vec<u64>, children: &mut Vec<Box<Node<V>>>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].len() > MIN_KEYS {
            let (left_half, right_half) = children.split_at_mut(idx);
            let left = &mut *left_half[idx - 1];
            let cur = &mut *right_half[0];
            match (left, cur) {
                (
                    Node::Leaf { keys: lk, vals: lv },
                    Node::Leaf {
                        keys: ck, vals: cv, ..
                    },
                ) => {
                    let k = lk.pop().expect("left non-empty");
                    let v = lv.pop().expect("left non-empty");
                    ck.insert(0, k);
                    cv.insert(0, v);
                    keys[idx - 1] = ck[0];
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    let k = lk.pop().expect("left non-empty");
                    let c = lc.pop().expect("left non-empty");
                    ck.insert(0, keys[idx - 1]);
                    cc.insert(0, c);
                    keys[idx - 1] = k;
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].len() > MIN_KEYS {
            let (left_half, right_half) = children.split_at_mut(idx + 1);
            let cur = &mut *left_half[idx];
            let right = &mut *right_half[0];
            match (cur, right) {
                (
                    Node::Leaf { keys: ck, vals: cv },
                    Node::Leaf {
                        keys: rk, vals: rv, ..
                    },
                ) => {
                    let k = rk.remove(0);
                    let v = rv.remove(0);
                    ck.push(k);
                    cv.push(v);
                    keys[idx] = rk[0];
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    ck.push(keys[idx]);
                    cc.push(rc.remove(0));
                    keys[idx] = rk.remove(0);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Merge with a sibling. Merge `right_idx` into `left_idx`.
        let (left_idx, sep_idx) = if idx > 0 {
            (idx - 1, idx - 1)
        } else {
            (idx, idx)
        };
        let sep = keys.remove(sep_idx);
        let right_node = children.remove(left_idx + 1);
        let left_node = &mut *children[left_idx];
        match (left_node, *right_node) {
            (
                Node::Leaf { keys: lk, vals: lv },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                lk.push(sep);
                lk.append(&mut rk);
                lc.append(&mut rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Validates structural invariants (key order, node occupancy, uniform
    /// depth). Used by tests; O(n).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn walk<V>(node: &Node<V>, lo: Option<u64>, hi: Option<u64>, is_root: bool) -> usize {
            match node {
                Node::Leaf { keys, vals } => {
                    assert_eq!(keys.len(), vals.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "leaf underflow: {}", keys.len());
                    }
                    assert!(keys.len() <= MAX_KEYS);
                    for &k in keys {
                        assert!(lo.is_none_or(|l| k >= l));
                        assert!(hi.is_none_or(|h| k < h));
                    }
                    1
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1);
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted internal");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "internal underflow");
                    }
                    assert!(keys.len() <= MAX_KEYS);
                    let mut depth = None;
                    for (i, child) in children.iter().enumerate() {
                        let child_lo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let child_hi = if i == keys.len() { hi } else { Some(keys[i]) };
                        let d = walk(child, child_lo, child_hi, false);
                        if let Some(prev) = depth {
                            assert_eq!(prev, d, "uneven depth");
                        }
                        depth = Some(d);
                    }
                    depth.expect("internal node has children") + 1
                }
            }
        }
        walk(&self.root, None, None, true);
        assert_eq!(self.iter().count(), self.len, "len mismatch");
    }
}

#[inline]
fn child_index(keys: &[u64], key: u64) -> usize {
    // First child whose separator is > key ⇒ keys < sep go left,
    // keys ≥ sep go right (leaf split copies the separator right).
    match keys.binary_search(&key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// In-order iterator over a [`BPlusTree`].
pub struct Iter<'a, V> {
    /// Stack of (node, next child/entry index).
    stack: Vec<(&'a Node<V>, usize)>,
    primed: bool,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.primed {
            self.primed = true;
            // Descend to the leftmost leaf.
            while let Some(&(node, _)) = self.stack.last() {
                if node.is_leaf() {
                    break;
                }
                if let Node::Internal { children, .. } = node {
                    self.stack.push((&children[0], 0));
                    let depth = self.stack.len();
                    self.stack[depth - 2].1 = 1;
                }
            }
        }
        loop {
            let (node, idx) = self.stack.last_mut()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if *idx < keys.len() {
                        let out = (keys[*idx], &vals[*idx]);
                        *idx += 1;
                        return Some(out);
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *idx < children.len() {
                        let child = &children[*idx];
                        *idx += 1;
                        self.stack.push((child, 0));
                        // Descend to leftmost leaf of this subtree.
                        while let Some(&(n, _)) = self.stack.last() {
                            if n.is_leaf() {
                                break;
                            }
                            if let Node::Internal { children, .. } = n {
                                self.stack.push((&children[0], 0));
                                let depth = self.stack.len();
                                self.stack[depth - 2].1 = 1;
                            }
                        }
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(5), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(3, "c"), None);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(2, "B"), Some("b"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2), Some(&"B"));
        assert_eq!(t.get(4), None);
        t.check_invariants();
    }

    #[test]
    fn insert_many_sequential_and_iterate_sorted() {
        let mut t = BPlusTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i * 10);
        }
        assert_eq!(t.len(), 10_000);
        t.check_invariants();
        let collected: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert!(collected.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(collected.len(), 10_000);
        assert_eq!(*t.get(9_999).unwrap(), 99_990);
    }

    #[test]
    fn insert_many_reverse() {
        let mut t = BPlusTree::new();
        for i in (0..5_000u64).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        assert_eq!(t.iter().next().unwrap().0, 0);
    }

    #[test]
    fn insert_pseudorandom_then_remove_all() {
        let mut t = BPlusTree::new();
        let mut keys: Vec<u64> = (0..4_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17))
            .collect();
        for &k in &keys {
            t.insert(k, k as i64);
        }
        t.check_invariants();
        keys.reverse();
        for (n, &k) in keys.iter().enumerate() {
            assert_eq!(t.remove(k), Some(k as i64), "at step {n}");
            if n % 97 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = BPlusTree::new();
        t.insert(1, 1);
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(i, vec![i]);
        }
        t.get_mut(50).unwrap().push(999);
        assert_eq!(t.get(50).unwrap(), &vec![50, 999]);
    }

    #[test]
    fn or_insert_with() {
        let mut t: BPlusTree<Vec<u64>> = BPlusTree::new();
        t.or_insert_with(7, Vec::new).push(1);
        t.or_insert_with(7, Vec::new).push(2);
        assert_eq!(t.get(7).unwrap(), &vec![1, 2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extreme_keys() {
        let mut t = BPlusTree::new();
        t.insert(u64::MAX, "max");
        t.insert(0, "min");
        t.insert(u64::MAX / 2, "mid");
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, u64::MAX / 2, u64::MAX]);
    }
}
