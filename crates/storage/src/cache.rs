//! Existence-check caches (§6.2.2).
//!
//! Every semi-naive iteration performs set union/difference against the
//! recursive table, each requiring an index probe (logarithmic). The paper
//! puts a constant-time cache in front: "when checking the tuples, we first
//! look up the cache in constant time. If the key is already there, we
//! ignore the tuple; otherwise, we proceed to check the index."
//!
//! Both caches here are direct-mapped arrays of exact entries, so a hit is
//! always *sound* (it proves the tuple is duplicate/non-improving); a miss
//! falls through to the index. Collisions simply evict.

use dcd_common::hash::combine;
use dcd_common::{Tuple, Value};
use std::hash::BuildHasher;

/// Default number of slots (tuned so the cache stays L2-resident).
pub const DEFAULT_SLOTS: usize = 1 << 15;

fn tuple_hash(t: &Tuple) -> u64 {
    dcd_common::hash::FxBuild::default().hash_one(t)
}

/// Cache for set-semantics relations: remembers recently seen tuples.
pub struct TupleCache {
    slots: Vec<Option<Tuple>>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl TupleCache {
    /// Creates a cache with `slots` entries (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(2);
        TupleCache {
            slots: vec![None; n],
            mask: n - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether `t` was definitely seen before (a sound duplicate check).
    pub fn check(&mut self, t: &Tuple) -> bool {
        let idx = (tuple_hash(t) as usize) & self.mask;
        if self.slots[idx].as_ref() == Some(t) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records `t` as seen.
    pub fn record(&mut self, t: &Tuple) {
        let idx = (tuple_hash(t) as usize) & self.mask;
        self.slots[idx] = Some(t.clone());
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hits since construction.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Cache for aggregate relations: remembers `(group key, aggregate value)`
/// pairs so non-improving partials are pruned without an index probe.
pub struct AggCache {
    slots: Vec<Option<(Tuple, Value)>>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl AggCache {
    /// Creates a cache with `slots` entries (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(2);
        AggCache {
            slots: vec![None; n],
            mask: n - 1,
            hits: 0,
            misses: 0,
        }
    }

    fn slot_of(&self, group: &Tuple) -> usize {
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        for v in group.values() {
            h = combine(h, v.key_bits());
        }
        (h as usize) & self.mask
    }

    /// Returns the cached aggregate value for `group`, if present.
    pub fn get(&mut self, group: &Tuple) -> Option<Value> {
        let idx = self.slot_of(group);
        match &self.slots[idx] {
            Some((g, v)) if g == group => {
                self.hits += 1;
                Some(*v)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the group's current aggregate value.
    pub fn record(&mut self, group: &Tuple, value: Value) {
        let idx = self.slot_of(group);
        self.slots[idx] = Some((group.clone(), value));
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hits since construction.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_cache_hit_after_record() {
        let mut c = TupleCache::new(64);
        let t = Tuple::from_ints(&[1, 2]);
        assert!(!c.check(&t));
        c.record(&t);
        assert!(c.check(&t));
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn tuple_cache_never_false_positive() {
        let mut c = TupleCache::new(4); // tiny, lots of collisions
        for i in 0..1000 {
            let t = Tuple::from_ints(&[i]);
            // A hit must mean the exact tuple was recorded and not evicted —
            // and we only record AFTER checking, so first sight is a miss.
            assert!(!c.check(&t), "false positive for {i}");
            c.record(&t);
        }
    }

    #[test]
    fn tuple_cache_eviction_is_harmless() {
        let mut c = TupleCache::new(2);
        let a = Tuple::from_ints(&[1]);
        c.record(&a);
        for i in 2..100 {
            c.record(&Tuple::from_ints(&[i]));
        }
        // `a` may or may not still be cached; check() just returns a bool.
        let _ = c.check(&a);
    }

    #[test]
    fn agg_cache_roundtrip() {
        let mut c = AggCache::new(64);
        let g = Tuple::from_ints(&[5]);
        assert_eq!(c.get(&g), None);
        c.record(&g, Value::Int(42));
        assert_eq!(c.get(&g), Some(Value::Int(42)));
        c.record(&g, Value::Int(40));
        assert_eq!(c.get(&g), Some(Value::Int(40)));
    }

    #[test]
    fn agg_cache_distinguishes_groups_exactly() {
        let mut c = AggCache::new(2);
        let g1 = Tuple::from_ints(&[1]);
        let g2 = Tuple::from_ints(&[2]);
        c.record(&g1, Value::Int(1));
        // Whatever slot g2 maps to, an exact group comparison protects us.
        assert_eq!(c.get(&g2), None);
    }

    #[test]
    fn hit_miss_accessors_match_stats() {
        let mut t = TupleCache::new(16);
        let x = Tuple::from_ints(&[3]);
        t.check(&x);
        t.record(&x);
        t.check(&x);
        assert_eq!((t.hits(), t.misses()), t.stats());
        assert_eq!((t.hits(), t.misses()), (1, 1));

        let mut a = AggCache::new(16);
        let g = Tuple::from_ints(&[1]);
        a.get(&g);
        a.record(&g, Value::Int(7));
        a.get(&g);
        assert_eq!((a.hits(), a.misses()), a.stats());
        assert_eq!((a.hits(), a.misses()), (1, 1));
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        let c = TupleCache::new(100);
        assert_eq!(c.slots.len(), 128);
        let c = AggCache::new(1);
        assert_eq!(c.slots.len(), 2);
    }
}
