//! Immutable base (EDB) relation partitions with hash indexes.
//!
//! Algorithm 1 line 3: "Construct Index for each partition of B on the
//! partition key". Base relations never change during evaluation, so each
//! worker gets an immutable slice of the EDB (selected by the partitioner
//! on the join column) plus hash indexes built once up front.

use dcd_common::hash::FastMap;
use dcd_common::{Partitioner, Tuple};

/// An immutable partition of an EDB relation, with hash indexes on demand.
#[derive(Default)]
pub struct BaseRelation {
    rows: Vec<Tuple>,
    /// `indexes[col]` maps key bits of column `col` to row ids.
    indexes: FastMap<usize, FastMap<u64, Vec<u32>>>,
}

impl BaseRelation {
    /// Builds a relation from rows.
    pub fn from_rows(rows: Vec<Tuple>) -> Self {
        BaseRelation {
            rows,
            indexes: FastMap::default(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the partition holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    #[inline]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Builds (idempotently) a hash index on `col`.
    pub fn build_index(&mut self, col: usize) {
        if self.indexes.contains_key(&col) {
            return;
        }
        let mut idx: FastMap<u64, Vec<u32>> = FastMap::default();
        for (i, row) in self.rows.iter().enumerate() {
            idx.entry(row.key(col)).or_default().push(i as u32);
        }
        self.indexes.insert(col, idx);
    }

    /// Whether an index exists on `col`.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Probes the index on `col` for `key`, returning the matching rows.
    /// Panics if the index was not built (a planner bug, not a user error).
    pub fn probe(&self, col: usize, key: u64) -> impl Iterator<Item = &Tuple> {
        let ids = self
            .indexes
            .get(&col)
            .expect("probe on unindexed column")
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        ids.iter().map(move |&i| &self.rows[i as usize])
    }

    /// Splits `rows` into per-worker partitions by `H(row[col])`
    /// (Algorithm 1, line 2).
    pub fn partition(rows: &[Tuple], part: &Partitioner, col: usize) -> Vec<BaseRelation> {
        let n = part.partitions();
        let mut out: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::new()).collect();
        for row in rows {
            out[part.of_key(row.key(col))].push(row.clone());
        }
        out.into_iter().map(BaseRelation::from_rows).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Tuple> {
        vec![
            Tuple::from_ints(&[1, 2]),
            Tuple::from_ints(&[1, 3]),
            Tuple::from_ints(&[2, 3]),
            Tuple::from_ints(&[3, 1]),
        ]
    }

    #[test]
    fn probe_finds_all_matches() {
        let mut r = BaseRelation::from_rows(edges());
        r.build_index(0);
        let hits: Vec<&Tuple> = r.probe(0, Tuple::from_ints(&[1]).key(0)).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t[0].expect_int() == 1));
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let mut r = BaseRelation::from_rows(edges());
        r.build_index(1);
        assert_eq!(r.probe(1, 99).count(), 0);
    }

    #[test]
    fn build_index_is_idempotent() {
        let mut r = BaseRelation::from_rows(edges());
        r.build_index(0);
        r.build_index(0);
        assert!(r.has_index(0));
        assert_eq!(r.probe(0, Tuple::from_ints(&[2]).key(0)).count(), 1);
    }

    #[test]
    fn multiple_indexes_coexist() {
        let mut r = BaseRelation::from_rows(edges());
        r.build_index(0);
        r.build_index(1);
        assert_eq!(r.probe(1, Tuple::from_ints(&[0, 3]).key(1)).count(), 2);
        assert_eq!(r.probe(0, Tuple::from_ints(&[3]).key(0)).count(), 1);
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let rows = edges();
        let part = Partitioner::new(3);
        let parts = BaseRelation::partition(&rows, &part, 0);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, rows.len());
        // Every row sits in the partition its key hashes to.
        for (w, p) in parts.iter().enumerate() {
            for row in p.rows() {
                assert_eq!(part.of_key(row.key(0)), w);
            }
        }
    }

    #[test]
    fn empty_relation() {
        let mut r = BaseRelation::from_rows(vec![]);
        r.build_index(0);
        assert!(r.is_empty());
        assert_eq!(r.probe(0, 0).count(), 0);
    }
}
