#![warn(missing_docs)]
//! Storage layer for DCDatalog (paper §3 "Storage Layer", §6.2).
//!
//! Provides the per-worker stores used during parallel semi-naive
//! evaluation:
//!
//! * [`bptree::BPlusTree`] — the from-scratch B+-tree index on the
//!   partition/join key of every recursive relation.
//! * [`sealed::SealedRelation`] — immutable, index-complete EDB relations
//!   built exactly once (Algorithm 1, line 3) and shared across workers;
//!   the [`sealed::EdbRead`] trait keeps evaluator probes backend-agnostic.
//! * [`set::SetRelation`] — recursive relations without aggregates
//!   (`tc`, `sg`, `attend`): exact-duplicate elimination plus an ordered
//!   probe index.
//! * [`aggregate`] — recursive relations with `min`/`max`/`sum`/`count`
//!   heads, storing the aggregate state inside the index (§6.2.1) with the
//!   per-contributor second index for `sum`/`count`.
//! * [`cache`] — the constant-time existence-check cache consulted before
//!   the B+-tree (§6.2.2).

pub mod aggregate;
pub mod bptree;
pub mod cache;
pub mod sealed;
pub mod set;

pub use aggregate::{AggFunc, AggRelation, AggScan, AggState};
pub use bptree::BPlusTree;
pub use cache::{AggCache, TupleCache};
pub use sealed::{EdbRead, SealedRelation};
pub use set::{SetRelation, SetScan};
