//! Aggregates-in-recursion storage (§6.2.1).
//!
//! The paper stores aggregate information *inside the index* so the Gather
//! operator merges partial aggregates by index lookup instead of a linear
//! scan:
//!
//! * `min`/`max` — the index keyed by the group-by key holds the current
//!   extremum; a merge emits a delta only when the extremum improves.
//!   This is DeALS-style monotonic aggregation, so the fixpoint is exact.
//! * `sum`/`count` — two indexes (paper: "one on the group-by key, the
//!   other on the attribute value that is incrementally computed"): the
//!   group index holds the running total plus a per-contributor map, so a
//!   re-contribution from the same source *replaces* its previous value
//!   rather than double-counting. `sum` deltas fire when the total moves by
//!   more than a caller-chosen ε (PageRank's convergence test); `count`
//!   deltas fire whenever the number of distinct contributors grows.

use crate::bptree::BPlusTree;
use dcd_common::hash::{combine, FastMap};
use dcd_common::{Tuple, Value};

/// The four aggregate functions supported in recursive rule heads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Monotonically decreasing extremum.
    Min,
    /// Monotonically increasing extremum.
    Max,
    /// Monotonic sum over distinct contributors (contributions may be
    /// revised; the total converges under damping).
    Sum,
    /// Count of distinct contributors.
    Count,
}

/// Per-group aggregate state stored in the index leaf.
#[derive(Clone, Debug)]
pub enum AggState {
    /// Current extremum for `min`/`max`.
    Extremum(Value),
    /// Contributor map + running total for `sum`/`count`.
    Contributions {
        /// Second index of §6.2.1: contributor key → its latest value.
        contribs: FastMap<u64, f64>,
        /// Running total (for `count` this equals `contribs.len()`).
        total: f64,
        /// The last total that was emitted as a delta.
        emitted: f64,
    },
}

impl AggState {
    /// The current aggregate value.
    pub fn value(&self, func: AggFunc) -> Value {
        match self {
            AggState::Extremum(v) => *v,
            AggState::Contributions { total, .. } => match func {
                AggFunc::Count => Value::Int(*total as i64),
                _ => Value::Float(*total),
            },
        }
    }
}

/// A recursive relation whose head carries an aggregate.
///
/// Tuples entering [`AggRelation::merge`] are laid out by the planner as
/// `(group columns…, [contributor,] aggregated value)`; the relation's
/// logical rows are `(group columns…, aggregate value)`.
pub struct AggRelation {
    func: AggFunc,
    /// Number of leading group-by columns.
    group_cols: usize,
    /// ε for `sum` delta emission (0 ⇒ emit on any change).
    epsilon: f64,
    /// Group index: hash of group columns → bucket of (group, state).
    index: BPlusTree<Vec<(Tuple, AggState)>>,
    groups: usize,
}

/// Outcome of merging one partial-aggregate tuple.
#[derive(Debug, PartialEq)]
pub enum MergeOutcome {
    /// The group's aggregate changed; the new logical row should enter the
    /// delta relation.
    Updated(Tuple),
    /// No improvement/change — tuple absorbed silently.
    Unchanged,
}

impl AggRelation {
    /// Creates an aggregate relation.
    ///
    /// * `group_cols` — number of leading group-by columns of incoming
    ///   tuples.
    /// * `epsilon` — minimum total movement for a `sum` delta (ignored for
    ///   other functions).
    pub fn new(func: AggFunc, group_cols: usize, epsilon: f64) -> Self {
        AggRelation {
            func,
            group_cols,
            epsilon,
            index: BPlusTree::new(),
            groups: 0,
        }
    }

    /// The aggregate function.
    #[inline]
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Number of groups materialized so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups
    }

    /// Whether no group exists yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }

    /// Hash of the group-by prefix of `t`.
    fn group_hash(&self, t: &Tuple) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for v in &t.values()[..self.group_cols] {
            h = combine(h, v.key_bits());
        }
        h
    }

    /// Current aggregate value for the group-by prefix of `probe`
    /// (`probe` needs only `group_cols` leading columns).
    pub fn get(&self, probe: &Tuple) -> Option<Value> {
        let h = self.group_hash(probe);
        let bucket = self.index.get(h)?;
        bucket
            .iter()
            .find(|(g, _)| g.values() == &probe.values()[..self.group_cols])
            .map(|(_, s)| s.value(self.func))
    }

    /// Merges one incoming partial tuple
    /// (`(group…, value)` for min/max; `(group…, contributor, value)` for
    /// sum/count).
    pub fn merge(&mut self, t: &Tuple) -> MergeOutcome {
        let h = self.group_hash(t);
        let group = t.prefix(self.group_cols);
        let func = self.func;
        let eps = self.epsilon;
        let bucket = self.index.or_insert_with(h, Vec::new);
        let slot = bucket.iter_mut().find(|(g, _)| *g == group);
        match func {
            AggFunc::Min | AggFunc::Max => {
                let new = t.values()[self.group_cols];
                match slot {
                    None => {
                        bucket.push((group.clone(), AggState::Extremum(new)));
                        self.groups += 1;
                        MergeOutcome::Updated(group.concat(&Tuple::new(&[new])))
                    }
                    Some((_, AggState::Extremum(cur))) => {
                        let better = match func {
                            AggFunc::Min => new < *cur,
                            _ => new > *cur,
                        };
                        if better {
                            *cur = new;
                            MergeOutcome::Updated(group.concat(&Tuple::new(&[new])))
                        } else {
                            MergeOutcome::Unchanged
                        }
                    }
                    Some((_, AggState::Contributions { .. })) => {
                        unreachable!("extremum relation holds extremum states")
                    }
                }
            }
            AggFunc::Sum | AggFunc::Count => {
                let contributor = t.values()[self.group_cols].key_bits();
                let val = match func {
                    AggFunc::Count => 1.0,
                    _ => t.values()[self.group_cols + 1].as_f64(),
                };
                let state = match slot {
                    Some((_, s)) => s,
                    None => {
                        bucket.push((
                            group.clone(),
                            AggState::Contributions {
                                contribs: FastMap::default(),
                                total: 0.0,
                                emitted: f64::NEG_INFINITY,
                            },
                        ));
                        self.groups += 1;
                        &mut bucket.last_mut().expect("just pushed").1
                    }
                };
                let AggState::Contributions {
                    contribs,
                    total,
                    emitted,
                } = state
                else {
                    unreachable!("contribution relation holds contribution states")
                };
                match func {
                    AggFunc::Count => {
                        if contribs.insert(contributor, 1.0).is_some() {
                            return MergeOutcome::Unchanged;
                        }
                        *total = contribs.len() as f64;
                        *emitted = *total;
                        MergeOutcome::Updated(
                            group.concat(&Tuple::new(&[Value::Int(*total as i64)])),
                        )
                    }
                    _ => {
                        let old = contribs.insert(contributor, val).unwrap_or(0.0);
                        *total += val - old;
                        if (*total - *emitted).abs() > eps {
                            *emitted = *total;
                            MergeOutcome::Updated(
                                group.concat(&Tuple::new(&[Value::Float(*total)])),
                            )
                        } else {
                            MergeOutcome::Unchanged
                        }
                    }
                }
            }
        }
    }

    /// Iterates the logical rows `(group…, aggregate value)`.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.index.iter().flat_map(move |(_, bucket)| {
            bucket
                .iter()
                .map(move |(g, s)| g.concat(&Tuple::new(&[s.value(self.func)])))
        })
    }

    /// Streaming scan with a *nameable* iterator type (see
    /// [`SetRelation::scan`](crate::set::SetRelation::scan)); yields the
    /// same logical rows as [`AggRelation::iter`].
    pub fn scan(&self) -> AggScan<'_> {
        AggScan {
            tree: self.index.iter(),
            bucket: [].iter(),
            func: self.func,
        }
    }

    /// Collects all logical rows.
    pub fn rows(&self) -> Vec<Tuple> {
        self.iter().collect()
    }
}

/// Scan over an [`AggRelation`]'s logical rows: each `(group…, state)`
/// leaf entry is assembled into `(group…, aggregate value)` on the fly.
pub struct AggScan<'a> {
    tree: crate::bptree::Iter<'a, Vec<(Tuple, AggState)>>,
    bucket: std::slice::Iter<'a, (Tuple, AggState)>,
    func: AggFunc,
}

impl Iterator for AggScan<'_> {
    type Item = Tuple;

    #[inline]
    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some((g, s)) = self.bucket.next() {
                return Some(g.concat(&Tuple::new(&[s.value(self.func)])));
            }
            let (_, bucket) = self.tree.next()?;
            self.bucket = bucket.iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_keeps_smallest_and_reports_updates() {
        let mut r = AggRelation::new(AggFunc::Min, 1, 0.0);
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 10])),
            MergeOutcome::Updated(Tuple::from_ints(&[1, 10]))
        );
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 12])),
            MergeOutcome::Unchanged
        );
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 7])),
            MergeOutcome::Updated(Tuple::from_ints(&[1, 7]))
        );
        assert_eq!(r.get(&Tuple::from_ints(&[1])), Some(Value::Int(7)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn max_mirror_of_min() {
        let mut r = AggRelation::new(AggFunc::Max, 1, 0.0);
        r.merge(&Tuple::from_ints(&[5, 1]));
        assert_eq!(r.merge(&Tuple::from_ints(&[5, 0])), MergeOutcome::Unchanged);
        assert!(matches!(
            r.merge(&Tuple::from_ints(&[5, 9])),
            MergeOutcome::Updated(_)
        ));
        assert_eq!(r.get(&Tuple::from_ints(&[5])), Some(Value::Int(9)));
    }

    #[test]
    fn multi_column_groups() {
        // APSP: group = (A, B), min distance.
        let mut r = AggRelation::new(AggFunc::Min, 2, 0.0);
        r.merge(&Tuple::from_ints(&[1, 2, 30]));
        r.merge(&Tuple::from_ints(&[1, 3, 40]));
        r.merge(&Tuple::from_ints(&[1, 2, 25]));
        assert_eq!(r.get(&Tuple::from_ints(&[1, 2])), Some(Value::Int(25)));
        assert_eq!(r.get(&Tuple::from_ints(&[1, 3])), Some(Value::Int(40)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn count_counts_distinct_contributors() {
        // Attend: cnt(Y, count<X>).
        let mut r = AggRelation::new(AggFunc::Count, 1, 0.0);
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 100])),
            MergeOutcome::Updated(Tuple::from_ints(&[1, 1]))
        );
        // Same contributor again: no change.
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 100])),
            MergeOutcome::Unchanged
        );
        assert_eq!(
            r.merge(&Tuple::from_ints(&[1, 101])),
            MergeOutcome::Updated(Tuple::from_ints(&[1, 2]))
        );
        assert_eq!(r.get(&Tuple::from_ints(&[1])), Some(Value::Int(2)));
    }

    #[test]
    fn sum_replaces_contributions() {
        // PageRank-style: rank(X, sum<(Y, K)>).
        let mut r = AggRelation::new(AggFunc::Sum, 1, 0.0);
        r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(7),
            Value::Float(0.5),
        ]));
        r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(8),
            Value::Float(0.25),
        ]));
        assert_eq!(r.get(&Tuple::from_ints(&[1])), Some(Value::Float(0.75)));
        // Contributor 7 revises its contribution: replaced, not added.
        let out = r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(7),
            Value::Float(0.1),
        ]));
        assert!(matches!(out, MergeOutcome::Updated(_)));
        let v = r.get(&Tuple::from_ints(&[1])).unwrap().as_f64();
        assert!((v - 0.35).abs() < 1e-12);
    }

    #[test]
    fn sum_epsilon_suppresses_tiny_deltas() {
        let mut r = AggRelation::new(AggFunc::Sum, 1, 0.1);
        let first = r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(2),
            Value::Float(1.0),
        ]));
        assert!(matches!(first, MergeOutcome::Updated(_)));
        // Moves the total by 0.05 < ε: suppressed.
        let tiny = r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(2),
            Value::Float(1.05),
        ]));
        assert_eq!(tiny, MergeOutcome::Unchanged);
        // Moves it by 0.95 > ε from last emission: fires.
        let big = r.merge(&Tuple::new(&[
            Value::Int(1),
            Value::Int(2),
            Value::Float(1.95),
        ]));
        assert!(matches!(big, MergeOutcome::Updated(_)));
    }

    #[test]
    fn rows_reflect_current_aggregates() {
        let mut r = AggRelation::new(AggFunc::Min, 1, 0.0);
        r.merge(&Tuple::from_ints(&[1, 10]));
        r.merge(&Tuple::from_ints(&[2, 20]));
        r.merge(&Tuple::from_ints(&[1, 5]));
        let mut rows = r.rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![Tuple::from_ints(&[1, 5]), Tuple::from_ints(&[2, 20])]
        );
    }

    #[test]
    fn scan_agrees_with_iter() {
        let mut r = AggRelation::new(AggFunc::Min, 1, 0.0);
        for i in 0..100i64 {
            r.merge(&Tuple::from_ints(&[i % 13, i]));
        }
        let a: Vec<Tuple> = r.iter().collect();
        let b: Vec<Tuple> = r.scan().collect();
        assert_eq!(a, b);
        assert!(AggRelation::new(AggFunc::Min, 1, 0.0)
            .scan()
            .next()
            .is_none());
    }

    #[test]
    fn get_on_missing_group() {
        let r = AggRelation::new(AggFunc::Min, 1, 0.0);
        assert_eq!(r.get(&Tuple::from_ints(&[42])), None);
    }
}
