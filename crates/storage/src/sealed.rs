//! Immutable, index-complete base (EDB) relations.
//!
//! Algorithm 1 line 3: "Construct Index for each partition of B on the
//! partition key". Base relations never change during evaluation, so all
//! their rows *and* all their hash indexes are built exactly once, up
//! front, by [`SealedRelation::build`] — after which the relation is
//! immutable and freely shareable across worker threads (`&SealedRelation`
//! / `Arc<SealedRelation>` are `Sync`). Replicated relations are built once
//! for the whole engine and shared; partitioned relations are built once
//! per worker from that worker's slice. Both sit behind the [`EdbRead`]
//! trait so the evaluator's probe/scan code is backend-agnostic.

use dcd_common::hash::FastMap;
use dcd_common::{Partitioner, Tuple};

/// Read-only access to a base relation: what the evaluator needs.
pub trait EdbRead {
    /// All rows.
    fn rows(&self) -> &[Tuple];

    /// Matching rows for `col == key` via the prebuilt hash index.
    /// Panics if no index covers `col` (a planner bug, not a user error).
    fn probe(&self, col: usize, key: u64) -> EdbProbe<'_>;

    /// Number of rows.
    fn len(&self) -> usize {
        self.rows().len()
    }

    /// Whether the relation holds no rows.
    fn is_empty(&self) -> bool {
        self.rows().is_empty()
    }
}

/// An immutable EDB relation (or partition slice) with its hash indexes.
#[derive(Default)]
pub struct SealedRelation {
    rows: Vec<Tuple>,
    /// `indexes[col]` maps key bits of column `col` to row ids.
    indexes: FastMap<usize, FastMap<u64, Vec<u32>>>,
}

impl SealedRelation {
    /// Builds the relation and every requested hash index in one pass per
    /// column. This is the only constructor: a sealed relation is never
    /// observable in a partially-indexed state.
    pub fn build(rows: Vec<Tuple>, index_cols: &[usize]) -> Self {
        let mut indexes: FastMap<usize, FastMap<u64, Vec<u32>>> = FastMap::default();
        for &col in index_cols {
            if indexes.contains_key(&col) {
                continue;
            }
            let mut idx: FastMap<u64, Vec<u32>> = FastMap::default();
            for (i, row) in rows.iter().enumerate() {
                idx.entry(row.key(col)).or_default().push(i as u32);
            }
            indexes.insert(col, idx);
        }
        SealedRelation { rows, indexes }
    }

    /// Whether an index exists on `col`.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// The raw row-id bucket for `col == key` (empty when the key is
    /// absent). Callers probing a run of equal keys can hold the bucket
    /// across rows and resolve ids against [`EdbRead::rows`], skipping the
    /// repeated index lookup. Panics if no index covers `col` (a planner
    /// bug, not a user error).
    #[inline]
    pub fn probe_ids(&self, col: usize, key: u64) -> &[u32] {
        self.indexes
            .get(&col)
            .expect("probe on unindexed column")
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Approximate resident heap size in bytes: the row storage (including
    /// spilled values) plus every index's buckets. Used by the
    /// observability layer to show that replicated relations are resident
    /// once, not once per worker.
    pub fn resident_bytes(&self) -> u64 {
        let tuple_sz = std::mem::size_of::<Tuple>() as u64;
        let value_sz = std::mem::size_of::<dcd_common::Value>() as u64;
        let mut bytes = self.rows.capacity() as u64 * tuple_sz;
        for row in &self.rows {
            if row.arity() > dcd_common::tuple::INLINE_ARITY {
                bytes += row.arity() as u64 * value_sz;
            }
        }
        for idx in self.indexes.values() {
            // Key + bucket header per entry, plus the row-id payloads.
            bytes += idx.len() as u64
                * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>()) as u64;
            for bucket in idx.values() {
                bytes += bucket.capacity() as u64 * std::mem::size_of::<u32>() as u64;
            }
        }
        bytes
    }

    /// Splits `rows` into per-worker row slices by `H(row[col])`
    /// (Algorithm 1, line 2).
    pub fn partition_rows(rows: &[Tuple], part: &Partitioner, col: usize) -> Vec<Vec<Tuple>> {
        let n = part.partitions();
        let mut out: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::new()).collect();
        for row in rows {
            out[part.of_key(row.key(col))].push(row.clone());
        }
        out
    }
}

/// Iterator over probe hits (row ids resolved against the row store).
pub struct EdbProbe<'a> {
    rows: &'a [Tuple],
    ids: std::slice::Iter<'a, u32>,
}

impl<'a> Iterator for EdbProbe<'a> {
    type Item = &'a Tuple;

    #[inline]
    fn next(&mut self) -> Option<&'a Tuple> {
        self.ids.next().map(|&i| &self.rows[i as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl ExactSizeIterator for EdbProbe<'_> {}

impl EdbRead for SealedRelation {
    #[inline]
    fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    #[inline]
    fn probe(&self, col: usize, key: u64) -> EdbProbe<'_> {
        EdbProbe {
            rows: &self.rows,
            ids: self.probe_ids(col, key).iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Tuple> {
        vec![
            Tuple::from_ints(&[1, 2]),
            Tuple::from_ints(&[1, 3]),
            Tuple::from_ints(&[2, 3]),
            Tuple::from_ints(&[3, 1]),
        ]
    }

    #[test]
    fn probe_finds_all_matches() {
        let r = SealedRelation::build(edges(), &[0]);
        let hits: Vec<&Tuple> = r.probe(0, Tuple::from_ints(&[1]).key(0)).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t[0].expect_int() == 1));
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let r = SealedRelation::build(edges(), &[1]);
        assert_eq!(r.probe(1, 99).count(), 0);
    }

    #[test]
    fn duplicate_index_cols_build_once() {
        let r = SealedRelation::build(edges(), &[0, 0]);
        assert!(r.has_index(0));
        assert_eq!(r.probe(0, Tuple::from_ints(&[2]).key(0)).count(), 1);
    }

    #[test]
    fn multiple_indexes_coexist() {
        let r = SealedRelation::build(edges(), &[0, 1]);
        assert_eq!(r.probe(1, Tuple::from_ints(&[0, 3]).key(1)).count(), 2);
        assert_eq!(r.probe(0, Tuple::from_ints(&[3]).key(0)).count(), 1);
    }

    #[test]
    fn probe_ids_resolve_to_probe_rows() {
        let r = SealedRelation::build(edges(), &[0]);
        let key = Tuple::from_ints(&[1]).key(0);
        let via_ids: Vec<&Tuple> = r
            .probe_ids(0, key)
            .iter()
            .map(|&i| &r.rows()[i as usize])
            .collect();
        let via_probe: Vec<&Tuple> = r.probe(0, key).collect();
        assert_eq!(via_ids, via_probe);
        assert!(r.probe_ids(0, 999).is_empty());
    }

    #[test]
    fn partition_rows_is_exhaustive_and_disjoint() {
        let rows = edges();
        let part = Partitioner::new(3);
        let parts = SealedRelation::partition_rows(&rows, &part, 0);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, rows.len());
        for (w, p) in parts.iter().enumerate() {
            for row in p {
                assert_eq!(part.of_key(row.key(0)), w);
            }
        }
    }

    #[test]
    fn empty_relation() {
        let r = SealedRelation::build(vec![], &[0]);
        assert!(r.is_empty());
        assert_eq!(r.probe(0, 0).count(), 0);
    }

    #[test]
    fn resident_bytes_grows_with_rows_and_indexes() {
        let bare = SealedRelation::build(edges(), &[]);
        let indexed = SealedRelation::build(edges(), &[0, 1]);
        assert!(bare.resident_bytes() > 0);
        assert!(indexed.resident_bytes() > bare.resident_bytes());
    }
}
