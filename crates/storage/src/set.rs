//! Recursive relations with set semantics (no aggregate in the head).
//!
//! `tc`, `sg` and `attend` from the paper's query suite are stored here.
//! The store pairs an exact hash set (duplicate elimination — the set
//! difference of semi-naive evaluation) with a B+-tree probe index on the
//! relation's join column, used when the recursive table itself is probed
//! (non-linear rules such as APSP's `path ⋈ path`).

use crate::bptree::BPlusTree;
use dcd_common::hash::FastSet;
use dcd_common::Tuple;

/// A deduplicated, indexed recursive relation.
pub struct SetRelation {
    /// Exact membership for semi-naive dedup.
    members: FastSet<Tuple>,
    /// Probe index: key bits of `key_col` → bucket of rows with that key.
    index: BPlusTree<Vec<Tuple>>,
    key_col: usize,
}

impl SetRelation {
    /// Creates an empty relation indexed on `key_col`.
    pub fn new(key_col: usize) -> Self {
        SetRelation {
            members: FastSet::default(),
            index: BPlusTree::new(),
            key_col,
        }
    }

    /// Column the probe index is built on.
    #[inline]
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Number of distinct tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `t` is already present.
    #[inline]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.members.contains(t)
    }

    /// Inserts `t`; returns `true` iff it was new (and therefore belongs in
    /// the next delta).
    pub fn insert(&mut self, t: Tuple) -> bool {
        if !self.members.insert(t.clone()) {
            return false;
        }
        self.index
            .or_insert_with(t.key(self.key_col), Vec::new)
            .push(t);
        true
    }

    /// Probes the index for rows whose `key_col` equals `key`.
    pub fn probe(&self, key: u64) -> &[Tuple] {
        self.index.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterates all tuples (index order: ascending key, insertion order
    /// within a key bucket).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.index.iter().flat_map(|(_, bucket)| bucket.iter())
    }

    /// Streaming scan with a *nameable* iterator type, so callers can hold
    /// it in their own enums (the evaluator's in-place IDB scans). Same
    /// order as [`SetRelation::iter`].
    pub fn scan(&self) -> SetScan<'_> {
        SetScan {
            tree: self.index.iter(),
            bucket: [].iter(),
        }
    }

    /// Drains the relation into a vector (used when collecting final
    /// results from workers).
    pub fn into_rows(self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.members.len());
        for (_, bucket) in self.index.iter() {
            out.extend(bucket.iter().cloned());
        }
        out
    }
}

/// Borrowing scan over a [`SetRelation`]: walks the B+-tree buckets in key
/// order without materializing anything.
pub struct SetScan<'a> {
    tree: crate::bptree::Iter<'a, Vec<Tuple>>,
    bucket: std::slice::Iter<'a, Tuple>,
}

impl<'a> Iterator for SetScan<'a> {
    type Item = &'a Tuple;

    #[inline]
    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            if let Some(t) = self.bucket.next() {
                return Some(t);
            }
            let (_, bucket) = self.tree.next()?;
            self.bucket = bucket.iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut r = SetRelation::new(0);
        assert!(r.insert(Tuple::from_ints(&[1, 2])));
        assert!(!r.insert(Tuple::from_ints(&[1, 2])));
        assert!(r.insert(Tuple::from_ints(&[1, 3])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn probe_by_key_column() {
        let mut r = SetRelation::new(1);
        r.insert(Tuple::from_ints(&[1, 5]));
        r.insert(Tuple::from_ints(&[2, 5]));
        r.insert(Tuple::from_ints(&[3, 6]));
        let key5 = Tuple::from_ints(&[0, 5]).key(1);
        assert_eq!(r.probe(key5).len(), 2);
        assert_eq!(r.probe(Tuple::from_ints(&[0, 7]).key(1)).len(), 0);
    }

    #[test]
    fn iter_covers_everything() {
        let mut r = SetRelation::new(0);
        for i in 0..500 {
            r.insert(Tuple::from_ints(&[i % 50, i]));
        }
        assert_eq!(r.iter().count(), 500);
        assert_eq!(r.len(), 500);
    }

    #[test]
    fn scan_agrees_with_iter() {
        let mut r = SetRelation::new(0);
        for i in 0..200 {
            r.insert(Tuple::from_ints(&[i % 17, i]));
        }
        let a: Vec<Tuple> = r.iter().cloned().collect();
        let b: Vec<Tuple> = r.scan().cloned().collect();
        assert_eq!(a, b);
        assert!(SetRelation::new(0).scan().next().is_none());
    }

    #[test]
    fn contains_matches_insert_result() {
        let mut r = SetRelation::new(0);
        let t = Tuple::from_ints(&[9, 9]);
        assert!(!r.contains(&t));
        r.insert(t.clone());
        assert!(r.contains(&t));
    }

    #[test]
    fn into_rows_returns_all() {
        let mut r = SetRelation::new(0);
        r.insert(Tuple::from_ints(&[1, 2]));
        r.insert(Tuple::from_ints(&[3, 4]));
        let mut rows = r.into_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[3, 4])]
        );
    }
}
