//! Property tests: the from-scratch B+-tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and
//! keep its structural invariants at every step.

use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcd_storage::BPlusTree;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, i64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..key_space, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0..key_space).prop_map(Op::Remove),
        1 => (0..key_space).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap(ops in proptest::collection::vec(op_strategy(200), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        // Full in-order agreement.
        let got: Vec<(u64, i64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, i64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dense_then_sparse_keys(mut keys in proptest::collection::vec(any::<u64>(), 1..300)) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i);
        }
        tree.check_invariants();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(tree.len(), keys.len());
        let iterated: Vec<u64> = tree.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(iterated, keys);
    }

    #[test]
    fn remove_everything_in_random_order(
        keys in proptest::collection::btree_set(0u64..500, 1..200),
        seed in any::<u64>(),
    ) {
        let mut tree = BPlusTree::new();
        for &k in &keys {
            tree.insert(k, ());
        }
        // Deterministic shuffle via multiplicative hashing.
        let mut order: Vec<u64> = keys.iter().copied().collect();
        order.sort_by_key(|&k| k.wrapping_mul(seed | 1).rotate_left(13));
        for &k in &order {
            prop_assert_eq!(tree.remove(k), Some(()));
        }
        prop_assert!(tree.is_empty());
        tree.check_invariants();
    }
}
