//! Microbenchmark: tracer overhead on the TC anchor workload.
//!
//! Runs the same rmat-256 transitive-closure evaluation with event
//! tracing disabled and enabled. Two measurements are taken:
//!
//! 1. The harness's usual median-of-N timing for each case (recorded in
//!    the JSON output so baselines can diff absolute numbers).
//! 2. A *paired* interleaved off/on sample series, which is what the
//!    overhead guard asserts on: back-to-back groups drift by 10–20% on
//!    a containerized CI machine (thermal/scheduler state), swamping
//!    the effect; alternating runs cancel the drift because both sides
//!    see the same machine state.
//!
//! The tracer's hot path is a bounds-checked ring write plus one
//! relaxed atomic on overflow, so the budget is ~5% on this anchor; the
//! assert adds a noise margin for what the paired estimator still
//! cannot cancel.
//!
//! Run with `cargo bench -p dcd-bench --bench trace_overhead`; pass
//! `--json PATH` for machine-readable results.

use dcd_bench::datasets::SEED;
use dcd_bench::microbench::Harness;
use dcdatalog::{queries, Engine, EngineConfig, Tuple};
use std::time::Instant;

const WORKERS: usize = 2;

/// Paired off/on rounds the overhead guard averages over.
const PAIRS: usize = 8;

/// Documented overhead budget on the TC anchor.
const BUDGET_PCT: f64 = 5.0;
/// Extra allowance for scheduler noise the paired estimator can't cancel.
const NOISE_PCT: f64 = 7.0;

fn tc_engine(traced: bool) -> Engine {
    let tc = queries::tc().expect("tc program");
    let rows: Vec<Tuple> = dcd_datagen::rmat(256, SEED)
        .iter()
        .map(|&(a, b)| Tuple::from_ints(&[a, b]))
        .collect();
    let cfg = EngineConfig::with_workers(WORKERS).tracing(traced);
    let mut e = Engine::new(tc, cfg).expect("plans");
    e.load_edb("arc", rows).expect("loads");
    e
}

fn main() {
    let mut h = Harness::from_args();

    let off = tc_engine(false);
    let on = tc_engine(true);
    // Warm once each and sanity-check the traced run actually records.
    let warm_off = off.run().expect("tc runs untraced");
    let warm_on = on.run().expect("tc runs traced");
    assert_eq!(
        warm_off.relation("tc").len(),
        warm_on.relation("tc").len(),
        "tracing must not change the fixpoint"
    );
    let events: usize = warm_on
        .stats
        .report
        .traces
        .iter()
        .map(|t| t.events.len())
        .sum();
    assert!(events > 0, "traced run recorded no events");

    // The guard: paired interleaved samples, median of per-pair ratios.
    if h.is_selected("trace_overhead", "paired_guard") {
        let mut ratios: Vec<f64> = (0..PAIRS)
            .map(|_| {
                let t = Instant::now();
                off.run().unwrap();
                let t_off = t.elapsed().as_nanos() as f64;
                let t = Instant::now();
                on.run().unwrap();
                let t_on = t.elapsed().as_nanos() as f64;
                t_on / t_off
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = (ratios[PAIRS / 2] - 1.0) * 100.0;
        println!(
            "tracer overhead on TC anchor (paired median of {PAIRS}): {pct:+.2}% \
             (budget {BUDGET_PCT}%, noise margin {NOISE_PCT}%)"
        );
        assert!(
            pct <= BUDGET_PCT + NOISE_PCT,
            "enabled tracing costs {pct:.2}% on the TC anchor, over the \
             {BUDGET_PCT}% budget (+{NOISE_PCT}% noise margin)"
        );
    }

    // Absolute medians for the JSON record (not asserted against each
    // other: sequential groups drift more than the tracer costs).
    h.bench("trace_overhead", "tc_rmat256_off", || {
        off.run().unwrap();
    });
    h.bench("trace_overhead", "tc_rmat256_on", || {
        on.run().unwrap();
    });
    h.annotate_last(format!(r#"{{"trace_events":{events}}}"#));

    h.finish();
}
