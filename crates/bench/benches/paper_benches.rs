//! Criterion benchmarks: one group per table/figure of the paper's §7.
//!
//! These are micro-scale versions of the `repro` binary's experiments —
//! small enough for Criterion's statistical repetition, sharing the same
//! datasets and engine configurations. `cargo bench -p dcd-bench` runs
//! them all; `cargo bench -p dcd-bench -- tab2` runs one group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcd_bench::datasets;
use dcd_runtime::simulator::{
    figure3_workload, simulate, SimConfig, SimStrategy, SimWorkload,
};
use dcdatalog::{queries, Engine, EngineConfig, Program, Strategy, Tuple};
use std::time::Duration;

/// Scale divisor for bench datasets (heavily scaled: Criterion repeats).
const SCALE: usize = 100_000;

fn engine_for(program: &Program, loads: &[(String, Vec<Tuple>)], cfg: EngineConfig) -> Engine {
    let mut e = Engine::new(program.clone(), cfg).expect("plans");
    for (name, rows) in loads {
        e.load_edb(name, rows.clone()).expect("loads");
    }
    e
}

fn small_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

/// Figure 1: SSSP on the LiveJournal stand-in across systems.
fn bench_fig1_sssp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_sssp_livejournal");
    let ds = &datasets::sssp_datasets(SCALE)[0];
    let program = queries::sssp(0).unwrap();
    let systems: Vec<(&str, EngineConfig)> = vec![
        ("dws", EngineConfig::with_workers(2)),
        ("global", EngineConfig::with_workers(2).strategy(Strategy::Global)),
        ("ssp5", EngineConfig::with_workers(2).strategy(Strategy::Ssp { s: 5 })),
        ("broadcast", {
            let mut c = EngineConfig::with_workers(2);
            c.broadcast_routing = true;
            c
        }),
        ("single_thread", EngineConfig::with_workers(1)),
    ];
    for (name, cfg) in systems {
        g.bench_function(name, |b| {
            let e = engine_for(&program, &ds.loads, cfg.clone());
            b.iter(|| e.run().unwrap());
        });
    }
    g.finish();
}

/// Figure 3: the simulated schedule replay itself.
fn bench_fig3_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_simulator");
    for strat in [
        SimStrategy::Global,
        SimStrategy::Ssp(1),
        SimStrategy::Dws { omega: 4, tau: 3 },
    ] {
        g.bench_function(strat.name(), |b| {
            let w = figure3_workload();
            b.iter(|| simulate(&w, &SimConfig::default(), strat));
        });
    }
    g.finish();
}

/// Table 2: one bench per query on its first dataset.
type NamedCase = (&'static str, Program, Vec<(String, Vec<Tuple>)>);

fn bench_tab2_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_queries");
    let cases: Vec<NamedCase> = vec![
        (
            "sg_tree",
            queries::sg().unwrap(),
            datasets::sg_datasets(SCALE).remove(0).loads,
        ),
        (
            "delivery_ntree",
            queries::delivery().unwrap(),
            datasets::delivery_datasets(SCALE).remove(0).loads,
        ),
        (
            "cc_livejournal",
            queries::cc().unwrap(),
            datasets::cc_datasets(SCALE).remove(0).loads,
        ),
        (
            "sssp_livejournal",
            queries::sssp(0).unwrap(),
            datasets::sssp_datasets(SCALE).remove(0).loads,
        ),
        {
            let (ds, n) = datasets::pagerank_datasets(SCALE).remove(0);
            ("pagerank_livejournal", queries::pagerank(0.85, n).unwrap(), ds.loads)
        },
    ];
    for (name, program, loads) in cases {
        g.bench_function(name, |b| {
            let mut cfg = EngineConfig::with_workers(2);
            cfg.sum_epsilon = 1e-7;
            let e = engine_for(&program, &loads, cfg);
            b.iter(|| e.run().unwrap());
        });
    }
    g.finish();
}

/// Table 3: APSP two-partition routing vs broadcast.
fn bench_tab3_apsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab3_apsp");
    // Criterion repeats each run; use a small bespoke RMAT so a sample
    // finishes in milliseconds (the repro binary covers paper sizes).
    let warc: Vec<Tuple> = dcd_datagen::weighted(&dcd_datagen::rmat(64, datasets::SEED), 100, datasets::SEED)
        .iter()
        .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
        .collect();
    let ds = dcd_bench::datasets::Dataset {
        name: "RMAT-64",
        loads: vec![("warc".to_string(), warc)],
    };
    let program = queries::apsp().unwrap();
    for (name, broadcast) in [("routed", false), ("broadcast", true)] {
        g.bench_function(name, |b| {
            let mut cfg = EngineConfig::with_workers(2);
            cfg.broadcast_routing = broadcast;
            let e = engine_for(&program, &ds.loads, cfg);
            b.iter(|| e.run().unwrap());
        });
    }
    g.finish();
}

/// Table 4: the §6.2 optimizations on and off.
fn bench_tab4_optimizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab4_optimizations");
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for (name, optimized) in [("with_opts", true), ("without_opts", false)] {
        g.bench_function(BenchmarkId::new("cc", name), |b| {
            let cfg = EngineConfig::with_workers(2).optimizations(optimized);
            let e = engine_for(&program, &ds.loads, cfg);
            b.iter(|| e.run().unwrap());
        });
    }
    let ds = &datasets::sssp_datasets(SCALE)[0];
    let program = queries::sssp(0).unwrap();
    for (name, optimized) in [("with_opts", true), ("without_opts", false)] {
        g.bench_function(BenchmarkId::new("sssp", name), |b| {
            let cfg = EngineConfig::with_workers(2).optimizations(optimized);
            let e = engine_for(&program, &ds.loads, cfg);
            b.iter(|| e.run().unwrap());
        });
    }
    g.finish();
}

/// Figure 8: coordination strategies (engine wall time + simulator).
fn bench_fig8_coordination(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_coordination");
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for strat in [Strategy::Global, Strategy::Ssp { s: 5 }, Strategy::Dws] {
        g.bench_function(BenchmarkId::new("cc_engine", strat.name()), |b| {
            let e = engine_for(&program, &ds.loads, EngineConfig::with_workers(2).strategy(strat.clone()));
            b.iter(|| e.run().unwrap());
        });
    }
    // Simulated counterpart at 32 workers.
    let edges: Vec<(u64, u64)> = dcd_datagen::livejournal_like(SCALE, datasets::SEED)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    for strat in [SimStrategy::Global, SimStrategy::Ssp(5), SimStrategy::DwsAuto] {
        g.bench_function(BenchmarkId::new("cc_sim32", strat.name()), |b| {
            let w = SimWorkload::cc_partitioned(&edges, 32);
            b.iter(|| simulate(&w, &SimConfig::realistic(), strat));
        });
    }
    g.finish();
}

/// Figure 9(a): worker scaling (engine threads + simulated workers).
fn bench_fig9a_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9a_thread_scaling");
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for t in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("cc_engine_threads", t), &t, |b, &t| {
            let e = engine_for(&program, &ds.loads, EngineConfig::with_workers(t));
            b.iter(|| e.run().unwrap());
        });
    }
    let edges: Vec<(u64, u64)> = dcd_datagen::livejournal_like(SCALE, datasets::SEED)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    for t in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("cc_sim_workers", t), &t, |b, &t| {
            let w = SimWorkload::cc_partitioned(&edges, t);
            b.iter(|| simulate(&w, &SimConfig::default(), SimStrategy::DwsAuto));
        });
    }
    g.finish();
}

/// Figure 9(b): data scaling.
fn bench_fig9b_data_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9b_data_scaling");
    let program = queries::cc().unwrap();
    for (name, edges) in datasets::scaling_datasets(10_000) {
        let rows: Vec<Tuple> = dcd_datagen::symmetrize(&edges)
            .iter()
            .map(|&(a, b)| Tuple::from_ints(&[a, b]))
            .collect();
        g.bench_with_input(BenchmarkId::new("cc", &name), &rows, |b, rows| {
            let e = engine_for(
                &program,
                &[("arc".to_string(), rows.clone())],
                EngineConfig::with_workers(2),
            );
            b.iter(|| e.run().unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = small_criterion();
    targets =
        bench_fig1_sssp,
        bench_fig3_simulator,
        bench_tab2_queries,
        bench_tab3_apsp,
        bench_tab4_optimizations,
        bench_fig8_coordination,
        bench_fig9a_scaling,
        bench_fig9b_data_scaling
}
criterion_main!(benches);
