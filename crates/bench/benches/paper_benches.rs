//! Micro-benchmarks: one group per table/figure of the paper's §7, run
//! on the first-party [`dcd_bench::microbench`] harness (`harness =
//! false`; no criterion — see the hermetic-build policy in DESIGN.md).
//!
//! These are micro-scale versions of the `repro` binary's experiments —
//! small enough for statistical repetition, sharing the same datasets
//! and engine configurations. `cargo bench -p dcd-bench` runs them all;
//! `cargo bench -p dcd-bench -- tab2` runs one group; `--json PATH`
//! writes machine-readable results.

use dcd_bench::datasets;
use dcd_bench::microbench::Harness;
use dcd_runtime::simulator::{figure3_workload, simulate, SimConfig, SimStrategy, SimWorkload};
use dcdatalog::{queries, Engine, EngineConfig, Program, Strategy, Tuple};

/// Scale divisor for bench datasets (heavily scaled: the harness repeats).
const SCALE: usize = 100_000;

fn engine_for(program: &Program, loads: &[(String, Vec<Tuple>)], cfg: EngineConfig) -> Engine {
    let mut e = Engine::new(program.clone(), cfg).expect("plans");
    for (name, rows) in loads {
        e.load_edb(name, rows.clone()).expect("loads");
    }
    e
}

/// Figure 1: SSSP on the LiveJournal stand-in across systems.
fn bench_fig1_sssp(h: &mut Harness) {
    let ds = &datasets::sssp_datasets(SCALE)[0];
    let program = queries::sssp(0).unwrap();
    let systems: Vec<(&str, EngineConfig)> = vec![
        ("dws", EngineConfig::with_workers(2)),
        (
            "global",
            EngineConfig::with_workers(2).strategy(Strategy::Global),
        ),
        (
            "ssp5",
            EngineConfig::with_workers(2).strategy(Strategy::Ssp { s: 5 }),
        ),
        ("broadcast", {
            let mut c = EngineConfig::with_workers(2);
            c.broadcast_routing = true;
            c
        }),
        ("single_thread", EngineConfig::with_workers(1)),
    ];
    for (name, cfg) in systems {
        let e = engine_for(&program, &ds.loads, cfg);
        h.bench("fig1_sssp_livejournal", name, || {
            e.run().unwrap();
        });
    }
}

/// Figure 3: the simulated schedule replay itself.
fn bench_fig3_simulator(h: &mut Harness) {
    for strat in [
        SimStrategy::Global,
        SimStrategy::Ssp(1),
        SimStrategy::Dws { omega: 4, tau: 3 },
    ] {
        let w = figure3_workload();
        h.bench("fig3_simulator", strat.name(), || {
            simulate(&w, &SimConfig::default(), strat);
        });
    }
}

/// Table 2: one bench per query on its first dataset.
type NamedCase = (&'static str, Program, Vec<(String, Vec<Tuple>)>);

fn bench_tab2_queries(h: &mut Harness) {
    let cases: Vec<NamedCase> = vec![
        (
            "sg_tree",
            queries::sg().unwrap(),
            datasets::sg_datasets(SCALE).remove(0).loads,
        ),
        (
            "delivery_ntree",
            queries::delivery().unwrap(),
            datasets::delivery_datasets(SCALE).remove(0).loads,
        ),
        (
            "cc_livejournal",
            queries::cc().unwrap(),
            datasets::cc_datasets(SCALE).remove(0).loads,
        ),
        (
            "sssp_livejournal",
            queries::sssp(0).unwrap(),
            datasets::sssp_datasets(SCALE).remove(0).loads,
        ),
        {
            let (ds, n) = datasets::pagerank_datasets(SCALE).remove(0);
            (
                "pagerank_livejournal",
                queries::pagerank(0.85, n).unwrap(),
                ds.loads,
            )
        },
    ];
    for (name, program, loads) in cases {
        let mut cfg = EngineConfig::with_workers(2);
        cfg.sum_epsilon = 1e-7;
        let e = engine_for(&program, &loads, cfg);
        h.bench("tab2_queries", name, || {
            e.run().unwrap();
        });
    }
}

/// Table 3: APSP two-partition routing vs broadcast.
fn bench_tab3_apsp(h: &mut Harness) {
    // The harness repeats each run; use a small bespoke RMAT so a sample
    // finishes in milliseconds (the repro binary covers paper sizes).
    let warc: Vec<Tuple> =
        dcd_datagen::weighted(&dcd_datagen::rmat(64, datasets::SEED), 100, datasets::SEED)
            .iter()
            .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
            .collect();
    let ds = dcd_bench::datasets::Dataset {
        name: "RMAT-64",
        loads: vec![("warc".to_string(), warc)],
    };
    let program = queries::apsp().unwrap();
    for (name, broadcast) in [("routed", false), ("broadcast", true)] {
        let mut cfg = EngineConfig::with_workers(2);
        cfg.broadcast_routing = broadcast;
        let e = engine_for(&program, &ds.loads, cfg);
        h.bench("tab3_apsp", name, || {
            e.run().unwrap();
        });
    }
}

/// Table 4: the §6.2 optimizations on and off.
fn bench_tab4_optimizations(h: &mut Harness) {
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for (name, optimized) in [("cc/with_opts", true), ("cc/without_opts", false)] {
        let cfg = EngineConfig::with_workers(2).optimizations(optimized);
        let e = engine_for(&program, &ds.loads, cfg);
        h.bench("tab4_optimizations", name, || {
            e.run().unwrap();
        });
    }
    let ds = &datasets::sssp_datasets(SCALE)[0];
    let program = queries::sssp(0).unwrap();
    for (name, optimized) in [("sssp/with_opts", true), ("sssp/without_opts", false)] {
        let cfg = EngineConfig::with_workers(2).optimizations(optimized);
        let e = engine_for(&program, &ds.loads, cfg);
        h.bench("tab4_optimizations", name, || {
            e.run().unwrap();
        });
    }
}

/// Figure 8: coordination strategies (engine wall time + simulator).
fn bench_fig8_coordination(h: &mut Harness) {
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for strat in [Strategy::Global, Strategy::Ssp { s: 5 }, Strategy::Dws] {
        let name = format!("cc_engine/{}", strat.name());
        let e = engine_for(
            &program,
            &ds.loads,
            EngineConfig::with_workers(2).strategy(strat.clone()),
        );
        h.bench("fig8_coordination", &name, || {
            e.run().unwrap();
        });
    }
    // Simulated counterpart at 32 workers.
    let edges: Vec<(u64, u64)> = dcd_datagen::livejournal_like(SCALE, datasets::SEED)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    for strat in [
        SimStrategy::Global,
        SimStrategy::Ssp(5),
        SimStrategy::DwsAuto,
    ] {
        let name = format!("cc_sim32/{}", strat.name());
        let w = SimWorkload::cc_partitioned(&edges, 32);
        h.bench("fig8_coordination", &name, || {
            simulate(&w, &SimConfig::realistic(), strat);
        });
    }
}

/// Figure 9(a): worker scaling (engine threads + simulated workers).
fn bench_fig9a_scaling(h: &mut Harness) {
    let ds = &datasets::cc_datasets(SCALE)[0];
    let program = queries::cc().unwrap();
    for t in [1usize, 2, 4] {
        let e = engine_for(&program, &ds.loads, EngineConfig::with_workers(t));
        h.bench(
            "fig9a_thread_scaling",
            &format!("cc_engine_threads/{t}"),
            || {
                e.run().unwrap();
            },
        );
    }
    let edges: Vec<(u64, u64)> = dcd_datagen::livejournal_like(SCALE, datasets::SEED)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    for t in [1usize, 8, 32] {
        let w = SimWorkload::cc_partitioned(&edges, t);
        h.bench(
            "fig9a_thread_scaling",
            &format!("cc_sim_workers/{t}"),
            || {
                simulate(&w, &SimConfig::default(), SimStrategy::DwsAuto);
            },
        );
    }
}

/// Figure 9(b): data scaling.
fn bench_fig9b_data_scaling(h: &mut Harness) {
    let program = queries::cc().unwrap();
    for (name, edges) in datasets::scaling_datasets(10_000) {
        let rows: Vec<Tuple> = dcd_datagen::symmetrize(&edges)
            .iter()
            .map(|&(a, b)| Tuple::from_ints(&[a, b]))
            .collect();
        let e = engine_for(
            &program,
            &[("arc".to_string(), rows)],
            EngineConfig::with_workers(2),
        );
        h.bench("fig9b_data_scaling", &format!("cc/{name}"), || {
            e.run().unwrap();
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_fig1_sssp(&mut h);
    bench_fig3_simulator(&mut h);
    bench_tab2_queries(&mut h);
    bench_tab3_apsp(&mut h);
    bench_tab4_optimizations(&mut h);
    bench_fig8_coordination(&mut h);
    bench_fig9a_scaling(&mut h);
    bench_fig9b_data_scaling(&mut h);
    h.finish();
}
