//! Microbenchmark: the batched delta-join kernel against the
//! tuple-at-a-time reference on the Iterate hot path.
//!
//! Workload: one TC delta group of 10 000 rows whose join keys are
//! skewed (~80% land in an 8-key hot set), the shape where the kernel's
//! key-sorted probe memoization pays — runs of equal keys descend the
//! arc index once instead of once per row. Both paths evaluate the same
//! delta against the same immutable store, and their emission counts
//! are asserted equal before anything is timed.
//!
//! Run with `cargo bench -p dcd-bench --bench iterate_kernel`; pass
//! `--json PATH` for machine-readable results.

use dcd_bench::microbench::Harness;
use dcd_common::rng::Rng;
use dcd_common::{Partitioner, Tuple};
use dcd_frontend::physical::{plan, PhysicalPlan, PlannerConfig};
use dcd_frontend::{analyze, parse_program};
use dcdatalog::catalog::EdbCatalog;
use dcdatalog::eval::{DeltaRow, EvalScratch, Evaluator};
use dcdatalog::queries;
use dcdatalog::store::WorkerStore;

const VERTICES: i64 = 256;
const DELTA_ROWS: usize = 10_000;
const HOT_KEYS: i64 = 8;

/// Single-worker TC plan + store with a synthetic `arc` EDB: four
/// out-edges per vertex so every probe that hits finds real join work.
fn build_tc() -> (PhysicalPlan, WorkerStore) {
    let analyzed = analyze(parse_program(queries::TC).expect("parse")).expect("analyze");
    let p = plan(&analyzed, &PlannerConfig::default()).expect("plan");
    let arc = p.rel_by_name("arc").expect("arc");
    let mut rows = Vec::new();
    for z in 0..VERTICES {
        for k in 0..4 {
            rows.push(Tuple::from_ints(&[z, (z * 7 + k + 1) % VERTICES]));
        }
    }
    let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
    data[arc] = Some(rows);
    let catalog = EdbCatalog::build(&p, &data, &Partitioner::new(1));
    let store = WorkerStore::build(&p, &catalog, 0, true, 64);
    (p, store)
}

/// A 10k-row tc delta with a skewed join column: 80% of rows carry one
/// of `HOT_KEYS` keys, the rest spread over the whole vertex domain.
fn skewed_delta(p: &PhysicalPlan) -> Vec<DeltaRow> {
    let tc = p.rel_by_name("tc").expect("tc");
    let mut rng = Rng::seed_from_u64(0xD1CE);
    (0..DELTA_ROWS)
        .map(|i| {
            let z = if rng.gen_bool(0.8) {
                rng.gen_below(HOT_KEYS as u64) as i64
            } else {
                rng.gen_below(VERTICES as u64) as i64
            };
            (tc, 0u8, Tuple::from_ints(&[i as i64 % 512, z]))
        })
        .collect()
}

fn main() {
    let mut h = Harness::from_args();
    let (p, store) = build_tc();
    let delta = skewed_delta(&p);
    let ev = Evaluator {
        plan: &p,
        me: 0,
        workers: 1,
    };
    let tc = p.rel_by_name("tc").expect("tc");
    let rules: Vec<_> = p.strata[0]
        .delta_rules
        .iter()
        .filter(|r| {
            let spec = r.delta.as_ref().expect("delta rule");
            spec.rel == tc && spec.route == 0
        })
        .collect();
    assert!(!rules.is_empty(), "TC must have a tc-delta rule");

    // Both paths must do identical join work before either is timed.
    let mut scratch = EvalScratch::new();
    let mut batched = 0u64;
    for rule in &rules {
        batched += ev.eval_delta_batch(rule, &store, &delta, &mut scratch, &mut |t| {
            std::hint::black_box(&t);
        });
    }
    let mut reference = Vec::new();
    for (_, _, row) in &delta {
        for rule in &rules {
            ev.eval_delta(rule, &store, row, &mut reference);
        }
    }
    assert_eq!(
        batched,
        reference.len() as u64,
        "kernel diverged from reference on the bench workload"
    );
    assert!(
        scratch.probe_reuse > scratch.probe_hits,
        "skewed keys must make probe reuse dominate (hits={}, reuse={})",
        scratch.probe_hits,
        scratch.probe_reuse
    );

    h.bench("iterate_kernel", "batched_10k_skew", || {
        let mut n = 0u64;
        for rule in &rules {
            n += ev.eval_delta_batch(rule, &store, &delta, &mut scratch, &mut |t| {
                std::hint::black_box(&t);
            });
        }
        std::hint::black_box(n);
    });

    h.bench("iterate_kernel", "tuple_at_a_time_10k_skew", || {
        let mut out = Vec::new();
        for (_, _, row) in &delta {
            for rule in &rules {
                ev.eval_delta(rule, &store, row, &mut out);
            }
        }
        std::hint::black_box(out.len());
    });

    h.finish();
}
