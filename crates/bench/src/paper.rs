//! Paper-reported numbers (§7, Tables 2–4 and the figures), kept so the
//! `repro` binary can print measured-vs-paper columns and EXPERIMENTS.md
//! can check *shape* (who wins, by roughly what factor).
//!
//! The authors' testbed was a 32-core AMD Opteron server; absolute
//! seconds are not expected to transfer to this machine or to the scaled
//! datasets — ratios are what we compare.

/// One Table-2 row: DCDatalog vs the five baseline systems (seconds);
/// `None` = OOM/NS/TO in the paper.
pub struct Tab2Row {
    /// Query name.
    pub query: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// DCDatalog seconds.
    pub dcdatalog: f64,
    /// SociaLite seconds.
    pub socialite: Option<f64>,
    /// DeALS-MC seconds.
    pub deals_mc: Option<f64>,
    /// Souffle seconds.
    pub souffle: Option<f64>,
    /// RecStep seconds.
    pub recstep: Option<f64>,
    /// DDlog seconds.
    pub ddlog: Option<f64>,
}

/// Table 2 (selected rows; the full table is in the paper).
pub const TABLE2: &[Tab2Row] = &[
    Tab2Row {
        query: "SG",
        dataset: "Tree-11",
        dcdatalog: 40.37,
        socialite: Some(30687.42),
        deals_mc: Some(71.99),
        souffle: Some(1438.98),
        recstep: None,
        ddlog: None,
    },
    Tab2Row {
        query: "SG",
        dataset: "G-10K",
        dcdatalog: 15.95,
        socialite: Some(4762.25),
        deals_mc: Some(76.18),
        souffle: Some(194.09),
        recstep: Some(458.41),
        ddlog: Some(285.78),
    },
    Tab2Row {
        query: "SG",
        dataset: "RMAT-10K",
        dcdatalog: 12.02,
        socialite: Some(5013.76),
        deals_mc: Some(80.11),
        souffle: Some(143.46),
        recstep: Some(512.48),
        ddlog: Some(184.57),
    },
    Tab2Row {
        query: "SG",
        dataset: "RMAT-20K",
        dcdatalog: 54.33,
        socialite: Some(21048.49),
        deals_mc: Some(299.16),
        souffle: Some(664.65),
        recstep: Some(2378.16),
        ddlog: Some(728.15),
    },
    Tab2Row {
        query: "SG",
        dataset: "RMAT-40K",
        dcdatalog: 231.56,
        socialite: None,
        deals_mc: Some(1358.42),
        souffle: Some(2879.03),
        recstep: None,
        ddlog: None,
    },
    Tab2Row {
        query: "Delivery",
        dataset: "N-40M",
        dcdatalog: 3.27,
        socialite: Some(233.71),
        deals_mc: None,
        souffle: Some(88.06),
        recstep: Some(40.26),
        ddlog: Some(163.03),
    },
    Tab2Row {
        query: "Delivery",
        dataset: "N-80M",
        dcdatalog: 5.07,
        socialite: Some(854.73),
        deals_mc: None,
        souffle: Some(167.67),
        recstep: Some(71.71),
        ddlog: Some(313.24),
    },
    Tab2Row {
        query: "Delivery",
        dataset: "N-160M",
        dcdatalog: 11.01,
        socialite: Some(2332.05),
        deals_mc: None,
        souffle: Some(369.81),
        recstep: Some(154.13),
        ddlog: Some(741.26),
    },
    Tab2Row {
        query: "Delivery",
        dataset: "N-300M",
        dcdatalog: 18.37,
        socialite: Some(8170.65),
        deals_mc: None,
        souffle: Some(729.52),
        recstep: Some(334.43),
        ddlog: None,
    },
    Tab2Row {
        query: "CC",
        dataset: "LiveJournal",
        dcdatalog: 8.44,
        socialite: Some(31.70),
        deals_mc: Some(319.88),
        souffle: None,
        recstep: Some(55.12),
        ddlog: Some(556.90),
    },
    Tab2Row {
        query: "CC",
        dataset: "Orkut",
        dcdatalog: 11.02,
        socialite: Some(40.91),
        deals_mc: Some(379.30),
        souffle: None,
        recstep: Some(49.41),
        ddlog: Some(942.60),
    },
    Tab2Row {
        query: "CC",
        dataset: "Arabic",
        dcdatalog: 50.31,
        socialite: Some(184.55),
        deals_mc: None,
        souffle: None,
        recstep: Some(495.54),
        ddlog: None,
    },
    Tab2Row {
        query: "CC",
        dataset: "Twitter",
        dcdatalog: 77.22,
        socialite: None,
        deals_mc: None,
        souffle: None,
        recstep: Some(637.51),
        ddlog: None,
    },
    Tab2Row {
        query: "SSSP",
        dataset: "LiveJournal",
        dcdatalog: 11.82,
        socialite: Some(42.36),
        deals_mc: Some(791.83),
        souffle: None,
        recstep: Some(212.50),
        ddlog: Some(891.49),
    },
    Tab2Row {
        query: "SSSP",
        dataset: "Orkut",
        dcdatalog: 8.60,
        socialite: Some(36.84),
        deals_mc: Some(361.71),
        souffle: None,
        recstep: Some(88.01),
        ddlog: Some(611.01),
    },
    Tab2Row {
        query: "SSSP",
        dataset: "Arabic",
        dcdatalog: 9.83,
        socialite: Some(61.69),
        deals_mc: None,
        souffle: None,
        recstep: Some(113.96),
        ddlog: None,
    },
    Tab2Row {
        query: "SSSP",
        dataset: "Twitter",
        dcdatalog: 23.79,
        socialite: None,
        deals_mc: None,
        souffle: None,
        recstep: Some(178.24),
        ddlog: None,
    },
    Tab2Row {
        query: "PageRank",
        dataset: "LiveJournal",
        dcdatalog: 112.29,
        socialite: Some(12339.52),
        deals_mc: None,
        souffle: None,
        recstep: None,
        ddlog: Some(2295.93),
    },
    Tab2Row {
        query: "PageRank",
        dataset: "Orkut",
        dcdatalog: 45.45,
        socialite: Some(4770.41),
        deals_mc: None,
        souffle: None,
        recstep: None,
        ddlog: Some(1672.18),
    },
    Tab2Row {
        query: "PageRank",
        dataset: "Arabic",
        dcdatalog: 202.81,
        socialite: None,
        deals_mc: None,
        souffle: None,
        recstep: None,
        ddlog: None,
    },
    Tab2Row {
        query: "PageRank",
        dataset: "Twitter",
        dcdatalog: 2008.95,
        socialite: None,
        deals_mc: None,
        souffle: None,
        recstep: None,
        ddlog: None,
    },
];

/// Table 3 — APSP: (dataset, DCDatalog, SociaLite, DDlog).
pub const TABLE3: &[(&str, f64, Option<f64>, Option<f64>)] = &[
    ("RMAT-256", 0.47, Some(68.69), Some(111.74)),
    ("RMAT-512", 1.35, Some(2517.42), Some(1560.47)),
    ("RMAT-1K", 5.99, None, None),
    ("RMAT-2K", 80.13, None, None),
    ("RMAT-4K", 317.02, None, None),
];

/// Table 4 — CC/SSSP seconds without/with the §6.2 optimizations:
/// (query, dataset, w/o, w/).
pub const TABLE4: &[(&str, &str, f64, f64)] = &[
    ("CC", "LiveJournal", 16.11, 8.44),
    ("CC", "Orkut", 25.41, 11.02),
    ("CC", "Arabic", 105.64, 50.31),
    ("CC", "Twitter", 224.81, 77.22),
    ("SSSP", "LiveJournal", 29.50, 11.82),
    ("SSSP", "Orkut", 23.03, 8.60),
    ("SSSP", "Arabic", 18.32, 9.83),
    ("SSSP", "Twitter", 58.03, 23.79),
];

/// Figure 8 — SSSP on LiveJournal under Global / SSP / DWS (seconds),
/// quoted in §7.3's text.
pub const FIG8_SSSP_LJ: (f64, f64, f64) = (131.68, 34.45, 11.82);

/// Figure 3 — the worked example's schedule lengths in abstract time
/// units under Global / SSP / DWS.
pub const FIG3_UNITS: (u64, u64, u64) = (128, 88, 67);

/// Figure 9(b) — CC seconds on RMAT-10M…160M (quoted in §7.4's text).
pub const FIG9B_CC: &[(&str, f64)] = &[
    ("RMAT-10M", 12.39),
    ("RMAT-20M", 27.08),
    ("RMAT-40M", 47.76),
    ("RMAT-80M", 96.61),
    ("RMAT-160M", 158.82),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_dcdatalog_wins_every_reported_row() {
        for r in TABLE2 {
            for other in [r.socialite, r.deals_mc, r.souffle, r.recstep, r.ddlog]
                .into_iter()
                .flatten()
            {
                assert!(
                    r.dcdatalog < other,
                    "{} / {}: paper reports DCDatalog {} ≥ {}",
                    r.query,
                    r.dataset,
                    r.dcdatalog,
                    other
                );
            }
        }
    }

    #[test]
    fn fig9b_scales_roughly_linearly() {
        // Doubling data should roughly double the time (paper's claim).
        for w in FIG9B_CC.windows(2) {
            let ratio = w[1].1 / w[0].1;
            assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
        }
    }
}
