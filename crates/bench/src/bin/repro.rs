//! `repro` — regenerates every table and figure of the paper's §7.
//!
//! ```text
//! repro [EXPERIMENTS] [--scale N] [--workers N] [--timeout SECS]
//!       [--reps N] [--apsp-max N]
//!
//! EXPERIMENTS: any of fig1 fig3 tab2 tab3 tab4 fig8 fig9a fig9b all
//!              (default: all)
//! --scale N    dataset scale divisor (default 20000; smaller = bigger
//!              datasets; 1 = paper size)
//! --workers N  engine threads (default: available parallelism)
//! ```

use dcd_bench::experiments::{self, Opts};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut which: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut numeric = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match a.as_str() {
            "--scale" => opts.scale = numeric("--scale").max(1),
            "--workers" => opts.workers = numeric("--workers").max(1),
            "--timeout" => opts.timeout = Duration::from_secs(numeric("--timeout") as u64),
            "--reps" => opts.reps = numeric("--reps").max(1),
            "--apsp-max" => opts.apsp_max = numeric("--apsp-max"),
            "--help" | "-h" => {
                println!("usage: repro [fig1|fig3|tab2|tab3|tab4|fig8|fig9a|fig9b|all]* [--scale N] [--workers N] [--timeout SECS] [--reps N] [--apsp-max N]");
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "fig1", "fig3", "tab2", "tab3", "tab4", "fig8", "fig9a", "fig9b",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    println!(
        "DCDatalog reproduction harness — scale 1/{}, {} workers, timeout {:?}",
        opts.scale, opts.workers, opts.timeout
    );
    for w in which {
        let report = match w.as_str() {
            "fig1" => experiments::fig1(&opts),
            "fig3" => experiments::fig3(&opts),
            "tab2" => experiments::tab2(&opts),
            "tab3" => experiments::tab3(&opts),
            "tab4" => experiments::tab4(&opts),
            "fig8" => experiments::fig8(&opts),
            "fig9a" => experiments::fig9a(&opts),
            "fig9b" => experiments::fig9b(&opts),
            other => {
                eprintln!("unknown experiment '{other}' (try --help)");
                continue;
            }
        };
        print!("{report}");
    }
}
