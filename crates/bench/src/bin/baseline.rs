//! Produces `BENCH_baseline.json`: the committed perf anchor.
//!
//! Runs small, fast TC and SG workloads (seconds total) through the
//! first-party [`dcd_bench::microbench`] harness and writes their
//! median timings as JSON. The file is committed at the repo root so
//! successive PRs can diff perf trajectories; regenerate with
//!
//! ```text
//! cargo run --release -p dcd-bench --bin baseline -- BENCH_baseline.json
//! ```
//!
//! The output path defaults to `BENCH_baseline.json` in the current
//! directory; pass a path argument to override. Result cardinalities
//! are asserted before timing so a baseline can never be recorded for
//! a wrong answer.

use dcd_bench::datasets::SEED;
use dcd_bench::microbench::Harness;
use dcdatalog::{queries, Engine, EngineConfig, EvalReport, Program, Tuple};

fn engine_for(program: &Program, loads: &[(String, Vec<Tuple>)], cfg: EngineConfig) -> Engine {
    let mut e = Engine::new(program.clone(), cfg).expect("plans");
    for (name, rows) in loads {
        e.load_edb(name, rows.clone()).expect("loads");
    }
    e
}

fn edge_tuples(edges: &[(i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b)| Tuple::from_ints(&[a, b]))
        .collect()
}

/// Coordination-metrics annotation for a record: a compact JSON object
/// summarizing the run's exchange volume and time split, so successive
/// `BENCH_*.json` files diff on coordination behaviour, not just wall
/// clock.
fn coordination_extra(rep: &EvalReport) -> String {
    format!(
        r#"{{"strategy":"{}","produced":{},"consumed":{},"iterations":{},"batches_in":{},"exchanged_bytes":{},"edb_replicated_bytes":{},"edb_resident_bytes":{},"idle_ns":{},"omega_wait_ns":{},"gather_ns":{},"iterate_ns":{},"distribute_ns":{},"probe_hits":{},"probe_reuse":{},"kernel_batches":{},"kernel_rows":{}}}"#,
        rep.strategy,
        rep.produced,
        rep.consumed,
        rep.total(|w| w.iterations),
        rep.total(|w| w.batches_in),
        rep.exchanged_bytes(),
        rep.edb_replicated_bytes,
        rep.total(|w| w.edb_resident_bytes),
        rep.total(|w| w.idle_ns),
        rep.total(|w| w.omega_wait_ns),
        rep.total(|w| w.gather_ns),
        rep.total(|w| w.iterate_ns),
        rep.total(|w| w.distribute_ns),
        rep.total(|w| w.probe_hits),
        rep.total(|w| w.probe_reuse),
        rep.total(|w| w.kernel_batches),
        rep.total(|w| w.kernel_rows),
    )
}

fn main() {
    // Positional args: output path, then an optional `group/name`
    // substring filter (the perf-smoke script passes one to time a
    // single anchor workload without paying for the rest).
    let positional: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let path = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let filter = positional.get(1).cloned();
    let mut h = Harness::new()
        .with_plan(10, 3)
        .with_json_path(Some(path))
        .with_filter(filter);

    // TC on a small RMAT graph: 1, 2 and 4 workers (the 4-worker entry
    // anchors the exchanged_bytes trajectory of the frame-based exchange).
    let tc = queries::tc().expect("tc program");
    let arcs = vec![(
        "arc".to_string(),
        edge_tuples(&dcd_datagen::rmat(256, SEED)),
    )];
    for workers in [1usize, 2, 4] {
        let name = format!("rmat256_workers{workers}");
        if !h.is_selected("baseline_tc", &name) {
            continue;
        }
        let e = engine_for(&tc, &arcs, EngineConfig::with_workers(workers));
        let warm = e.run().expect("tc runs");
        assert!(
            !warm.relation("tc").is_empty(),
            "TC produced an empty closure"
        );
        h.bench("baseline_tc", &name, || {
            e.run().unwrap();
        });
        h.annotate_last(coordination_extra(&warm.stats.report));
    }

    // The same TC anchor with event tracing enabled: the traced median
    // rides in the baseline next to the untraced two-worker entry, and
    // the `extra` annotation carries the measured overhead percentage so
    // perf trajectories catch a tracer hot path that grows teeth.
    let traced_name = "rmat256_workers2_traced";
    if h.is_selected("baseline_tc", traced_name) {
        let e = engine_for(&tc, &arcs, EngineConfig::with_workers(2).tracing(true));
        let warm = e.run().expect("traced tc runs");
        assert!(
            !warm.relation("tc").is_empty(),
            "traced TC produced an empty closure"
        );
        h.bench("baseline_tc", traced_name, || {
            e.run().unwrap();
        });
        // Overhead vs the untraced engine, measured with *paired*
        // interleaved runs (the median of two sequential bench groups
        // drifts more on a busy machine than the tracer costs; see
        // benches/trace_overhead.rs).
        let untraced = engine_for(&tc, &arcs, EngineConfig::with_workers(2));
        untraced.run().expect("tc runs");
        let mut ratios: Vec<f64> = (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                untraced.run().unwrap();
                let t_off = t.elapsed().as_nanos() as f64;
                let t = std::time::Instant::now();
                e.run().unwrap();
                t.elapsed().as_nanos() as f64 / t_off
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let overhead = format!("{:.2}", (ratios[ratios.len() / 2] - 1.0) * 100.0);
        let events: usize = warm
            .stats
            .report
            .traces
            .iter()
            .map(|t| t.events.len())
            .sum();
        let mut extra = coordination_extra(&warm.stats.report);
        extra.truncate(extra.len() - 1); // reopen the object
        extra.push_str(&format!(
            r#","trace_events":{events},"trace_overhead_pct":{overhead}}}"#
        ));
        h.annotate_last(extra);
    }

    // SG on a small random tree, single- and two-worker. Height 4 keeps
    // the same-generation pair count (quadratic in the widest level) in
    // the tens of thousands, so a sample stays in milliseconds.
    let sg = queries::sg().expect("sg program");
    let tree = vec![("arc".to_string(), edge_tuples(&dcd_datagen::tree(4, SEED)))];
    for workers in [1usize, 2] {
        let name = format!("tree4_workers{workers}");
        if !h.is_selected("baseline_sg", &name) {
            continue;
        }
        let e = engine_for(&sg, &tree, EngineConfig::with_workers(workers));
        let warm = e.run().expect("sg runs");
        assert!(
            !warm.relation("sg").is_empty(),
            "SG produced an empty result"
        );
        h.bench("baseline_sg", &name, || {
            e.run().unwrap();
        });
        h.annotate_last(coordination_extra(&warm.stats.report));
    }

    h.finish();
}
