//! First-party micro-benchmark harness (criterion replacement).
//!
//! The workspace builds with zero external crates, so the statistical
//! bench runner is implemented here: per-benchmark warmup, batch-size
//! calibration for sub-millisecond bodies, median-of-N sampling (the
//! median is robust to scheduler noise, which dominates short runs in
//! CI containers), and machine-readable JSON output so successive PRs
//! can diff perf trajectories (`BENCH_baseline.json` at the repo root
//! is the committed anchor).
//!
//! Bench binaries set `harness = false` in `Cargo.toml` and drive this
//! from `main`:
//!
//! ```no_run
//! use dcd_bench::microbench::Harness;
//!
//! let mut h = Harness::from_args();
//! h.bench("group", "case", || { /* timed body */ });
//! h.finish();
//! ```
//!
//! CLI (mirroring the criterion conventions the repo used):
//! a bare argument filters benchmarks by substring of `group/name`;
//! `--samples N` and `--warmup N` override the sampling plan; `--json
//! PATH` writes the results file; `--list` prints names and exits.

use std::time::{Duration, Instant};

/// One benchmark's aggregated measurements, in nanoseconds per iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Benchmark group (criterion's `benchmark_group` analogue).
    pub group: String,
    /// Case name within the group.
    pub name: String,
    /// Median of the per-iteration sample means.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample (calibrated so a sample is measurable).
    pub batch: u64,
    /// Pre-serialized JSON object with run-specific annotations (for the
    /// baseline bin: coordination metrics); emitted verbatim as `"extra"`.
    pub extra: Option<String>,
}

impl Record {
    fn json(&self) -> String {
        let mut out = format!(
            r#"{{"group":{},"name":{},"median_ns":{},"min_ns":{},"max_ns":{},"samples":{},"batch":{}"#,
            json_string(&self.group),
            json_string(&self.name),
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.batch
        );
        if let Some(extra) = &self.extra {
            out.push_str(&format!(r#","extra":{extra}"#));
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The benchmark runner: registers cases, times them, reports.
pub struct Harness {
    filter: Option<String>,
    samples: usize,
    warmup_iters: u64,
    json_path: Option<String>,
    list_only: bool,
    records: Vec<Record>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            filter: None,
            samples: 10,
            warmup_iters: 3,
            json_path: None,
            list_only: false,
            records: Vec::new(),
        }
    }
}

impl Harness {
    /// A harness with the default plan (10 samples, 3 warmup iterations).
    pub fn new() -> Self {
        Harness::default()
    }

    /// Builds a harness from the process arguments (see module docs).
    pub fn from_args() -> Self {
        let mut h = Harness::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--samples" => {
                    h.samples = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--samples needs a number");
                }
                "--warmup" => {
                    h.warmup_iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--warmup needs a number");
                }
                "--json" => {
                    h.json_path = Some(args.next().expect("--json needs a path"));
                }
                "--list" => h.list_only = true,
                // Flags cargo-bench plumbing may pass through; ignore.
                "--bench" | "--exact" | "--nocapture" => {}
                other if other.starts_with("--") => {}
                other => h.filter = Some(other.to_string()),
            }
        }
        h
    }

    /// Overrides the sampling plan.
    pub fn with_plan(mut self, samples: usize, warmup_iters: u64) -> Self {
        self.samples = samples.max(1);
        self.warmup_iters = warmup_iters;
        self
    }

    /// Sets (or clears) the JSON output path.
    pub fn with_json_path(mut self, path: Option<String>) -> Self {
        self.json_path = path;
        self
    }

    /// Sets (or clears) the substring filter (`group/name` must contain
    /// it). Equivalent to the bare CLI argument `from_args` accepts.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Whether `group`/`name` passes the filter. Public so bench binaries
    /// with expensive setup (dataset generation, warm runs) can skip
    /// unselected workloads entirely instead of paying for setup that
    /// [`Harness::bench`] would then discard.
    pub fn is_selected(&self, group: &str, name: &str) -> bool {
        match &self.filter {
            Some(f) => format!("{group}/{name}").contains(f.as_str()),
            None => true,
        }
    }

    /// Times `body`, recording a result row under `group`/`name`.
    ///
    /// Plan: `warmup_iters` untimed runs, one calibration run sizing the
    /// batch so a sample takes ≥ [`MIN_SAMPLE`](Self::MIN_SAMPLE), then
    /// `samples` timed batches; the reported figure is the median
    /// per-iteration time.
    pub fn bench(&mut self, group: &str, name: &str, mut body: impl FnMut()) {
        if !self.is_selected(group, name) {
            return;
        }
        if self.list_only {
            println!("{group}/{name}");
            return;
        }
        for _ in 0..self.warmup_iters {
            body();
        }
        // Calibrate: batch fast bodies so one sample is measurable.
        let t0 = Instant::now();
        body();
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Self::MIN_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                body();
            }
            per_iter.push(t.elapsed().as_nanos() / batch as u128);
        }
        per_iter.sort_unstable();
        let record = Record {
            group: group.to_string(),
            name: name.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples: self.samples,
            batch,
            extra: None,
        };
        println!(
            "{:<28} {:<24} median {:>12}  (min {}, max {}, {} samples × {} iters)",
            record.group,
            record.name,
            format_ns(record.median_ns),
            format_ns(record.min_ns),
            format_ns(record.max_ns),
            record.samples,
            record.batch,
        );
        self.records.push(record);
    }

    /// Attaches a pre-serialized JSON object to the most recent record.
    /// No-op when nothing has been recorded (e.g. the case was filtered
    /// out) — call it directly after the corresponding `bench`.
    pub fn annotate_last(&mut self, extra_json: String) {
        if let Some(r) = self.records.last_mut() {
            r.extra = Some(extra_json);
        }
    }

    /// Minimum time one sample should take; bodies faster than this are
    /// batched.
    pub const MIN_SAMPLE: Duration = Duration::from_millis(2);

    /// Results recorded so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Serializes all records as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| format!("    {}", r.json()))
            .collect();
        format!(
            "{{\n  \"schema\": 1,\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }

    /// Prints the summary and writes the JSON file if one was requested.
    /// Returns the records.
    pub fn finish(self) -> Vec<Record> {
        if let Some(path) = &self.json_path {
            std::fs::write(path, self.to_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {} results to {path}", self.records.len());
        }
        self.records
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Harness {
        Harness::new().with_plan(3, 1)
    }

    #[test]
    fn bench_records_plausible_timings() {
        let mut h = quiet();
        h.bench("g", "spin", || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        let r = &h.records()[0];
        assert_eq!((r.group.as_str(), r.name.as_str()), ("g", "spin"));
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.batch >= 1);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn fast_bodies_get_batched() {
        let mut h = quiet();
        h.bench("g", "nop", || {
            std::hint::black_box(1u64);
        });
        assert!(h.records()[0].batch > 1, "sub-ns body must batch");
    }

    #[test]
    fn filter_selects_by_substring() {
        let mut h = quiet().with_filter(Some("keep".into()));
        assert!(h.is_selected("group_keep", "a"));
        assert!(!h.is_selected("group_drop", "b"));
        h.bench("group_keep", "a", || {});
        h.bench("group_drop", "b", || {});
        assert_eq!(h.records().len(), 1);
        assert_eq!(h.records()[0].group, "group_keep");
    }

    #[test]
    fn json_output_is_wellformed_and_escaped() {
        let mut h = quiet();
        h.bench("g\"x", "case\\y", || {});
        let json = h.to_json();
        assert!(json.contains(r#""schema": 1"#));
        assert!(json.contains(r#""group":"g\"x""#));
        assert!(json.contains(r#""name":"case\\y""#));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn median_is_taken_from_sorted_samples() {
        let r = Record {
            group: "g".into(),
            name: "n".into(),
            median_ns: 5,
            min_ns: 1,
            max_ns: 9,
            samples: 3,
            batch: 1,
            extra: None,
        };
        assert!(r.json().contains("\"median_ns\":5"));
    }

    #[test]
    fn extra_annotation_is_emitted_verbatim() {
        let mut h = quiet();
        h.bench("g", "annotated", || {});
        h.annotate_last(r#"{"produced":7,"consumed":7}"#.to_string());
        let json = h.to_json();
        assert!(
            json.contains(r#""extra":{"produced":7,"consumed":7}"#),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
