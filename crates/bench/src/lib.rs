//! Benchmark harness for the DCDatalog reproduction.
//!
//! [`harness`] times engine/baseline runs with timeout handling (the
//! paper's `TO` entries); [`microbench`] is the first-party statistical
//! micro-benchmark runner (warmup + median-of-N + JSON) that replaced
//! criterion under the hermetic-build policy; [`datasets`] builds the
//! workload for every experiment; [`paper`] records the paper-reported
//! numbers so the `repro` binary can print measured-vs-paper tables;
//! [`experiments`] implements one function per table/figure of §7.

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod microbench;
pub mod paper;
