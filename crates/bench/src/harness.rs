//! Timed, fault-tolerant experiment execution.

use dcd_common::Tuple;
use dcdatalog::{Engine, EngineConfig, Program};
use std::fmt;
use std::time::Duration;

/// Outcome of one timed run, mirroring the paper's table cells.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Completed; wall-clock seconds and result cardinality of the probe
    /// relation.
    Secs(f64, usize),
    /// Exceeded the per-run timeout (`TO` in the paper's tables).
    Timeout,
    /// Failed (the paper's `OOM`/`NS` cells; the message says which).
    Failed(String),
}

impl Outcome {
    /// Seconds if completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Outcome::Secs(s, _) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Secs(s, _) => write!(f, "{s:.3}"),
            Outcome::Timeout => write!(f, "TO"),
            Outcome::Failed(_) => write!(f, "ERR"),
        }
    }
}

/// A fully specified run: program + loads + config.
pub struct Run {
    /// The program (rebuilt per run; planning is microseconds).
    pub program: Program,
    /// EDB loads `(name, rows)`.
    pub loads: Vec<(String, Vec<Tuple>)>,
    /// Engine configuration.
    pub config: EngineConfig,
    /// Relation whose cardinality is reported.
    pub probe: String,
}

impl Run {
    /// Executes once and reports the outcome. Loading time is excluded
    /// (the paper measures in-memory evaluation only).
    pub fn execute(&self) -> Outcome {
        let mut engine = match Engine::new(self.program.clone(), self.config.clone()) {
            Ok(e) => e,
            Err(e) => return Outcome::Failed(e.to_string()),
        };
        for (name, rows) in &self.loads {
            if let Err(e) = engine.load_edb(name, rows.clone()) {
                return Outcome::Failed(e.to_string());
            }
        }
        match engine.run() {
            Ok(result) => Outcome::Secs(
                result.stats.elapsed.as_secs_f64(),
                result.relation(&self.probe).len(),
            ),
            Err(e) if e.to_string().contains("timed out") => Outcome::Timeout,
            Err(e) => Outcome::Failed(e.to_string()),
        }
    }

    /// Executes `reps` times, returning the best (minimum) outcome — the
    /// standard way to suppress scheduler noise for short runs.
    pub fn execute_best_of(&self, reps: usize) -> Outcome {
        let mut best: Option<Outcome> = None;
        for _ in 0..reps.max(1) {
            let o = self.execute();
            match (&best, &o) {
                (_, Outcome::Timeout) | (_, Outcome::Failed(_)) => return o,
                (None, _) => best = Some(o),
                (Some(Outcome::Secs(bs, _)), Outcome::Secs(s, _)) if s < bs => best = Some(o),
                _ => {}
            }
        }
        best.expect("reps >= 1")
    }
}

/// Default per-run timeout for the repro harness.
pub fn default_timeout() -> Duration {
    Duration::from_secs(120)
}

/// Pretty-prints one table row: a label plus one cell per system/column.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<26}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Prints a table header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    print_row("", &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdatalog::queries;

    #[test]
    fn run_reports_secs_and_cardinality() {
        let run = Run {
            program: queries::tc().unwrap(),
            loads: vec![(
                "arc".into(),
                vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 3])],
            )],
            config: EngineConfig::with_workers(2),
            probe: "tc".into(),
        };
        match run.execute() {
            Outcome::Secs(s, n) => {
                assert!(s >= 0.0);
                assert_eq!(n, 3);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn missing_edb_is_a_failure_not_a_panic() {
        let run = Run {
            program: queries::tc().unwrap(),
            loads: vec![],
            config: EngineConfig::with_workers(1),
            probe: "tc".into(),
        };
        assert!(matches!(run.execute(), Outcome::Failed(_)));
    }

    #[test]
    fn timeout_is_reported_as_to() {
        let mut config = EngineConfig::with_workers(2);
        config.timeout = Some(Duration::from_nanos(1));
        let edges: Vec<Tuple> = (0..200)
            .map(|i| Tuple::from_ints(&[i, (i + 1) % 200]))
            .collect();
        let run = Run {
            program: queries::tc().unwrap(),
            loads: vec![("arc".into(), edges)],
            config,
            probe: "tc".into(),
        };
        let o = run.execute();
        assert!(matches!(o, Outcome::Timeout), "expected TO, got {o:?}");
    }

    #[test]
    fn best_of_picks_minimum() {
        let run = Run {
            program: queries::tc().unwrap(),
            loads: vec![("arc".into(), vec![Tuple::from_ints(&[1, 2])])],
            config: EngineConfig::with_workers(1),
            probe: "tc".into(),
        };
        assert!(run.execute_best_of(3).secs().is_some());
    }
}
