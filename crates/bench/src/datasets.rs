//! Experiment workloads (paper §7.1.1), scaled by a divisor so the full
//! suite runs on a laptop. `scale = 1` would be the paper's sizes; the
//! repro default (see the `repro` binary) keeps every run in seconds.

use dcd_common::Tuple;
use dcd_datagen as gen;

/// Base seed for every dataset (change to resample everything).
pub const SEED: u64 = 0xDC_DA7A;

/// A named dataset ready to load.
pub struct Dataset {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// EDB loads.
    pub loads: Vec<(String, Vec<Tuple>)>,
}

fn edge_tuples(edges: &[(i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b)| Tuple::from_ints(&[a, b]))
        .collect()
}

fn wedge_tuples(edges: &[(i64, i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
        .collect()
}

/// The four web-graph stand-ins (CC / SSSP / PageRank experiments).
/// `scale` divides the original vertex/edge counts.
pub fn webgraphs(scale: usize) -> Vec<(&'static str, Vec<(i64, i64)>)> {
    vec![
        ("LiveJournal", gen::livejournal_like(scale, SEED)),
        ("Orkut", gen::orkut_like(scale, SEED)),
        ("Arabic", gen::arabic_like(scale, SEED)),
        ("Twitter", gen::twitter_like(scale, SEED)),
    ]
}

/// CC inputs: symmetrized web graphs.
pub fn cc_datasets(scale: usize) -> Vec<Dataset> {
    webgraphs(scale)
        .into_iter()
        .map(|(name, edges)| Dataset {
            name,
            loads: vec![("arc".into(), edge_tuples(&gen::symmetrize(&edges)))],
        })
        .collect()
}

/// SSSP inputs: weighted web graphs (weights 1..=100). The start vertex
/// is 0 (present in every RMAT stand-in).
pub fn sssp_datasets(scale: usize) -> Vec<Dataset> {
    webgraphs(scale)
        .into_iter()
        .map(|(name, edges)| Dataset {
            name,
            loads: vec![(
                "warc".into(),
                wedge_tuples(&gen::weighted(&edges, 100, SEED)),
            )],
        })
        .collect()
}

/// PageRank inputs: `matrix(Y, X, outdeg(Y))` rows plus the vertex count
/// needed for the `vnum` parameter.
pub fn pagerank_datasets(scale: usize) -> Vec<(Dataset, usize)> {
    webgraphs(scale)
        .into_iter()
        .map(|(name, edges)| {
            let n = gen::vertex_count(&edges);
            (
                Dataset {
                    name,
                    loads: vec![("matrix".into(), gen::pagerank_matrix(&edges))],
                },
                n,
            )
        })
        .collect()
}

/// SG inputs: Tree-h plus G-n plus the RMAT family. `scale` shrinks the
/// paper's Tree-11 / G-10K / RMAT-10K..40K proportionally (scale 8 ⇒
/// Tree-8, G-1250 with matched density, RMAT-1.25K..5K).
pub fn sg_datasets(scale: usize) -> Vec<Dataset> {
    let tree_h = 11usize
        .saturating_sub((scale as f64).log2().round() as usize)
        .max(4);
    let gn = (10_000 / scale).max(64);
    // G-10K uses p = 0.001 (avg degree 10); keep the density.
    let p = (10.0 / gn as f64).min(0.5);
    let mut out = vec![
        Dataset {
            name: "Tree-11",
            loads: vec![("arc".into(), edge_tuples(&gen::tree(tree_h, SEED)))],
        },
        Dataset {
            name: "G-10K",
            loads: vec![("arc".into(), edge_tuples(&gen::gnp(gn, p, SEED)))],
        },
    ];
    for (name, n) in [
        ("RMAT-10K", 10_000usize),
        ("RMAT-20K", 20_000),
        ("RMAT-40K", 40_000),
    ] {
        let scaled = (n / scale).max(64);
        out.push(Dataset {
            name,
            loads: vec![("arc".into(), edge_tuples(&gen::rmat(scaled, SEED)))],
        });
    }
    out
}

/// Delivery inputs: N-40M … N-300M scaled.
pub fn delivery_datasets(scale: usize) -> Vec<Dataset> {
    [
        ("N-40M", 40_000_000usize),
        ("N-80M", 80_000_000),
        ("N-160M", 160_000_000),
        ("N-300M", 300_000_000),
    ]
    .into_iter()
    .map(|(name, n)| {
        let scaled = (n / scale).max(1_000);
        let assbl = gen::n_tree(scaled, SEED);
        let basic = gen::trees::leaf_days(&assbl, 30, SEED);
        Dataset {
            name,
            loads: vec![
                ("assbl".into(), edge_tuples(&assbl)),
                ("basic".into(), edge_tuples(&basic)),
            ],
        }
    })
    .collect()
}

/// APSP inputs: the paper's RMAT-256 … RMAT-4K ladder, capped by `max_n`.
pub fn apsp_datasets(max_n: usize) -> Vec<Dataset> {
    [
        ("RMAT-256", 256usize),
        ("RMAT-512", 512),
        ("RMAT-1K", 1_024),
        ("RMAT-2K", 2_048),
        ("RMAT-4K", 4_096),
    ]
    .into_iter()
    .filter(|&(_, n)| n <= max_n)
    .map(|(name, n)| Dataset {
        name,
        loads: vec![(
            "warc".into(),
            wedge_tuples(&gen::weighted(&gen::rmat(n, SEED), 100, SEED)),
        )],
    })
    .collect()
}

/// Figure 9(b) data-scaling ladder: RMAT-(10M…160M)/scale.
pub fn scaling_datasets(scale: usize) -> Vec<(String, Vec<(i64, i64)>)> {
    [10usize, 20, 40, 80, 160]
        .into_iter()
        .map(|m| {
            let n = (m * 1_000_000 / scale).max(1_000);
            (format!("RMAT-{m}M"), gen::rmat(n, SEED))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webgraphs_have_four_entries_in_size_order_by_scale() {
        let g = webgraphs(50_000);
        assert_eq!(g.len(), 4);
        assert!(g[0].1.len() < g[3].1.len(), "Twitter-like is the largest");
    }

    #[test]
    fn sg_datasets_cover_the_five_rows() {
        let d = sg_datasets(16);
        let names: Vec<&str> = d.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["Tree-11", "G-10K", "RMAT-10K", "RMAT-20K", "RMAT-40K"]
        );
        for ds in &d {
            assert!(!ds.loads[0].1.is_empty());
        }
    }

    #[test]
    fn apsp_cap_filters() {
        assert_eq!(apsp_datasets(1024).len(), 3);
        assert_eq!(apsp_datasets(4096).len(), 5);
    }

    #[test]
    fn delivery_datasets_scale_down() {
        let d = delivery_datasets(10_000);
        assert_eq!(d.len(), 4);
        let small = d[0].loads[0].1.len();
        let large = d[3].loads[0].1.len();
        assert!(large > small);
    }

    #[test]
    fn pagerank_datasets_supply_vertex_counts() {
        for (ds, n) in pagerank_datasets(100_000) {
            assert!(n > 0, "{} has no vertices", ds.name);
        }
    }
}
