//! One function per table/figure of the paper's evaluation (§7).
//!
//! Baseline mapping (DESIGN.md §2): `Global` reproduces DeALS-MC's
//! coordination (the paper says so explicitly in §7.3), `SSP(5)` is the
//! bounded-staleness baseline, broadcast routing emulates the
//! SociaLite/DDlog behaviour on non-linear queries, and the 1-thread run
//! stands in for single-node engines. Foreign systems themselves are not
//! reimplemented.

use crate::datasets::{self, Dataset};
use crate::harness::{Outcome, Run};
use crate::paper;
use dcd_runtime::simulator::{figure3_workload, simulate, SimConfig, SimStrategy};
use dcdatalog::{queries, EngineConfig, Program, Strategy};
use std::fmt;
use std::time::Duration;

/// Harness options (CLI-controlled).
#[derive(Clone, Debug)]
pub struct Opts {
    /// Dataset scale divisor (1 = paper size).
    pub scale: usize,
    /// Worker threads for the main engine runs.
    pub workers: usize,
    /// Per-run timeout.
    pub timeout: Duration,
    /// Repetitions per cell (best-of).
    pub reps: usize,
    /// Largest APSP RMAT size to attempt.
    pub apsp_max: usize,
    /// Simulated worker count for the scheduler-simulator columns
    /// (fig1/fig8/fig9a); real threads cannot show parallel speedup on a
    /// single-core host, the deterministic simulator can.
    pub sim_workers: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 20_000,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            timeout: Duration::from_secs(120),
            reps: 1,
            apsp_max: 512,
            sim_workers: 32,
        }
    }
}

/// A rendered experiment: a titled table.
pub struct Report {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, cells)`.
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form note (shape check vs the paper).
    pub note: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        write!(f, "{:<28}", "")?;
        for c in &self.columns {
            write!(f, " {c:>16}")?;
        }
        writeln!(f)?;
        for (label, cells) in &self.rows {
            write!(f, "{label:<28}")?;
            for c in cells {
                write!(f, " {c:>16}")?;
            }
            writeln!(f)?;
        }
        if !self.note.is_empty() {
            writeln!(f, "   note: {}", self.note)?;
        }
        Ok(())
    }
}

fn cfg(opts: &Opts, strategy: Strategy) -> EngineConfig {
    let mut c = EngineConfig::with_workers(opts.workers).strategy(strategy);
    c.timeout = Some(opts.timeout);
    c
}

fn run_cell(
    program: &Program,
    ds: &Dataset,
    probe: &str,
    config: EngineConfig,
    reps: usize,
) -> Outcome {
    Run {
        program: program.clone(),
        loads: ds.loads.clone(),
        config,
        probe: probe.into(),
    }
    .execute_best_of(reps)
}

/// The standard comparator column set for system-comparison tables.
fn system_columns(opts: &Opts) -> Vec<(String, EngineConfig)> {
    let mut broadcast = cfg(opts, Strategy::Dws);
    broadcast.broadcast_routing = true;
    let single = {
        let mut c = EngineConfig::with_workers(1).strategy(Strategy::Global);
        c.timeout = Some(opts.timeout);
        c
    };
    vec![
        ("DCD(DWS)".into(), cfg(opts, Strategy::Dws)),
        ("Global".into(), cfg(opts, Strategy::Global)),
        ("SSP(5)".into(), cfg(opts, Strategy::Ssp { s: 5 })),
        ("Bcast".into(), broadcast),
        ("1-thread".into(), single),
    ]
}

/// Figure 1 — SSSP on the LiveJournal stand-in, one bar per system.
pub fn fig1(opts: &Opts) -> Report {
    let ds = datasets::sssp_datasets(opts.scale)
        .into_iter()
        .next()
        .expect("LiveJournal dataset");
    let program = queries::sssp(0).expect("sssp parses");
    let systems = system_columns(opts);
    let cells: Vec<String> = systems
        .iter()
        .map(|(_, c)| run_cell(&program, &ds, "results", c.clone(), opts.reps).to_string())
        .collect();
    Report {
        title: "Figure 1: SSSP query time on LiveJournal-like (seconds)".into(),
        columns: systems.into_iter().map(|(n, _)| n).collect(),
        rows: vec![("SSSP/LiveJournal".into(), cells)],
        note: "paper (fig 8 text): Global 131.68s, SSP 34.45s, DWS 11.82s on the real graph".into(),
    }
}

/// Figure 3 — deterministic schedule replay of the worked CC example.
pub fn fig3(_opts: &Opts) -> Report {
    let w = figure3_workload();
    let cfg = SimConfig::default();
    let g = simulate(&w, &cfg, SimStrategy::Global).makespan;
    let s = simulate(&w, &cfg, SimStrategy::Ssp(1)).makespan;
    let d = simulate(&w, &cfg, SimStrategy::Dws { omega: 4, tau: 3 }).makespan;
    let (pg, ps, pd) = paper::FIG3_UNITS;
    Report {
        title: "Figure 3: CC schedule lengths (abstract time units)".into(),
        columns: vec!["Global".into(), "SSP(1)".into(), "DWS".into()],
        rows: vec![
            (
                "simulated".into(),
                vec![g.to_string(), s.to_string(), d.to_string()],
            ),
            (
                "paper".into(),
                vec![pg.to_string(), ps.to_string(), pd.to_string()],
            ),
        ],
        note: format!(
            "shape check: DWS/Global simulated {:.2} vs paper {:.2}",
            d as f64 / g as f64,
            pd as f64 / pg as f64
        ),
    }
}

/// Table 2 — the five benchmark queries across their datasets.
pub fn tab2(opts: &Opts) -> Report {
    let systems = system_columns(opts);
    let mut columns: Vec<String> = systems.iter().map(|(n, _)| n.clone()).collect();
    columns.push("paper-DCD".into());
    let mut rows = Vec::new();

    let mut push_rows = |query: &str, program: &Program, probe: &str, dss: Vec<Dataset>| {
        for ds in dss {
            let mut cells: Vec<String> = systems
                .iter()
                .map(|(_, c)| run_cell(program, &ds, probe, c.clone(), opts.reps).to_string())
                .collect();
            let paper_secs = paper::TABLE2
                .iter()
                .find(|r| r.query == query && r.dataset == ds.name)
                .map(|r| format!("{:.2}", r.dcdatalog))
                .unwrap_or_else(|| "-".into());
            cells.push(paper_secs);
            rows.push((format!("{query}/{}", ds.name), cells));
        }
    };

    push_rows(
        "SG",
        &queries::sg().unwrap(),
        "sg",
        datasets::sg_datasets(opts.scale),
    );
    push_rows(
        "Delivery",
        &queries::delivery().unwrap(),
        "results",
        datasets::delivery_datasets(opts.scale),
    );
    push_rows(
        "CC",
        &queries::cc().unwrap(),
        "cc",
        datasets::cc_datasets(opts.scale),
    );
    push_rows(
        "SSSP",
        &queries::sssp(0).unwrap(),
        "results",
        datasets::sssp_datasets(opts.scale),
    );
    for (ds, n) in datasets::pagerank_datasets(opts.scale) {
        let program = queries::pagerank(0.85, n).unwrap();
        let mut cells: Vec<String> = systems
            .iter()
            .map(|(_, c)| {
                let mut c = c.clone();
                c.sum_epsilon = 1e-7;
                run_cell(&program, &ds, "results", c, opts.reps).to_string()
            })
            .collect();
        let paper_secs = paper::TABLE2
            .iter()
            .find(|r| r.query == "PageRank" && r.dataset == ds.name)
            .map(|r| format!("{:.2}", r.dcdatalog))
            .unwrap_or_else(|| "-".into());
        cells.push(paper_secs);
        rows.push((format!("PageRank/{}", ds.name), cells));
    }

    Report {
        title: format!(
            "Table 2: end-to-end query time, scale 1/{} (seconds)",
            opts.scale
        ),
        columns,
        rows,
        note: "paper-DCD is the paper's DCDatalog column (32-core server, full-size data)".into(),
    }
}

/// Table 3 — APSP: partition-pair routing vs broadcast.
pub fn tab3(opts: &Opts) -> Report {
    let program = queries::apsp().unwrap();
    let mut broadcast = cfg(opts, Strategy::Dws);
    broadcast.broadcast_routing = true;
    let mut rows = Vec::new();
    for ds in datasets::apsp_datasets(opts.apsp_max) {
        let dcd = run_cell(&program, &ds, "apsp", cfg(opts, Strategy::Dws), opts.reps);
        let bc = run_cell(&program, &ds, "apsp", broadcast.clone(), opts.reps);
        let paper_row = paper::TABLE3.iter().find(|(n, ..)| *n == ds.name);
        let paper_dcd = paper_row
            .map(|(_, d, ..)| format!("{d:.2}"))
            .unwrap_or("-".into());
        let paper_other = paper_row
            .and_then(|(_, _, s, d)| s.or(*d))
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "OOM".into());
        rows.push((
            ds.name.to_string(),
            vec![dcd.to_string(), bc.to_string(), paper_dcd, paper_other],
        ));
    }
    Report {
        title: "Table 3: APSP (non-linear), two-partition routing vs broadcast (seconds)".into(),
        columns: vec![
            "DCD(DWS)".into(),
            "Bcast".into(),
            "paper-DCD".into(),
            "paper-best-other".into(),
        ],
        rows,
        note: "shape: broadcast should lose by a growing factor and blow up first".into(),
    }
}

/// Table 4 — effect of the §6.2 optimizations on CC and SSSP.
pub fn tab4(opts: &Opts) -> Report {
    let mut rows = Vec::new();
    let cases: Vec<(&str, Program, &str, Vec<Dataset>)> = vec![
        (
            "CC",
            queries::cc().unwrap(),
            "cc",
            datasets::cc_datasets(opts.scale),
        ),
        (
            "SSSP",
            queries::sssp(0).unwrap(),
            "results",
            datasets::sssp_datasets(opts.scale),
        ),
    ];
    for (query, program, probe, dss) in cases {
        for ds in dss {
            let with = run_cell(&program, &ds, probe, cfg(opts, Strategy::Dws), opts.reps);
            let without = run_cell(
                &program,
                &ds,
                probe,
                cfg(opts, Strategy::Dws).optimizations(false),
                opts.reps,
            );
            let paper_row = paper::TABLE4
                .iter()
                .find(|(q, d, ..)| *q == query && *d == ds.name);
            let paper_ratio = paper_row
                .map(|(_, _, wo, w)| format!("{:.2}x", wo / w))
                .unwrap_or("-".into());
            let ratio = match (without.secs(), with.secs()) {
                (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
                _ => "-".into(),
            };
            rows.push((
                format!("{query}/{}", ds.name),
                vec![without.to_string(), with.to_string(), ratio, paper_ratio],
            ));
        }
    }
    Report {
        title: "Table 4: effect of §6.2 optimizations (seconds)".into(),
        columns: vec![
            "w/o".into(),
            "w/".into(),
            "speedup".into(),
            "paper-speedup".into(),
        ],
        rows,
        note: "paper reports 1.86x–2.91x gains".into(),
    }
}

/// Figure 8 — coordination-strategy ablation on CC and SSSP.
///
/// Parallel coordination effects cannot be observed with real threads on
/// a single-core host, so the primary columns replay the schedules in the
/// deterministic scheduler simulator with `opts.sim_workers` workers; the
/// last column grounds the table with the real engine's wall time under
/// DWS.
pub fn fig8(opts: &Opts) -> Report {
    use dcd_runtime::simulator::SimWorkload;
    let sim_cfg = SimConfig::realistic();
    let strategies = [
        ("Global", SimStrategy::Global),
        ("SSP(5)", SimStrategy::Ssp(5)),
        ("DWS", SimStrategy::DwsAuto),
    ];
    let mut rows = Vec::new();
    for (name, edges) in datasets::webgraphs(opts.scale) {
        // CC row: simulated schedule lengths + real DWS seconds.
        let sym: Vec<(u64, u64)> = dcd_datagen::symmetrize(&edges)
            .iter()
            .map(|&(a, b)| (a as u64, b as u64))
            .collect();
        let mut cells: Vec<String> = strategies
            .iter()
            .map(|(_, strat)| {
                // `cc_partitioned` resymmetrizes, so feed directed edges.
                let w = SimWorkload::cc_partitioned(&sym, opts.sim_workers);
                simulate(&w, &sim_cfg, *strat).makespan.to_string()
            })
            .collect();
        let ds = Dataset {
            name,
            loads: vec![(
                "arc".into(),
                sym.iter()
                    .map(|&(a, b)| dcd_common::Tuple::from_ints(&[a as i64, b as i64]))
                    .collect(),
            )],
        };
        cells.push(
            run_cell(
                &queries::cc().unwrap(),
                &ds,
                "cc",
                cfg(opts, Strategy::Dws),
                opts.reps,
            )
            .to_string(),
        );
        rows.push((format!("CC/{name}"), cells));
    }
    for (name, edges) in datasets::webgraphs(opts.scale) {
        let wedges: Vec<(u64, u64, u64)> = dcd_datagen::weighted(&edges, 100, datasets::SEED)
            .iter()
            .map(|&(a, b, w)| (a as u64, b as u64, w as u64))
            .collect();
        let source = wedges.first().map(|&(a, _, _)| a).unwrap_or(0);
        let mut cells: Vec<String> = strategies
            .iter()
            .map(|(_, strat)| {
                let w = SimWorkload::sssp_partitioned(&wedges, source, opts.sim_workers);
                simulate(&w, &sim_cfg, *strat).makespan.to_string()
            })
            .collect();
        let ds = Dataset {
            name,
            loads: vec![(
                "warc".into(),
                wedges
                    .iter()
                    .map(|&(a, b, w)| dcd_common::Tuple::from_ints(&[a as i64, b as i64, w as i64]))
                    .collect(),
            )],
        };
        cells.push(
            run_cell(
                &queries::sssp(source as i64).unwrap(),
                &ds,
                "results",
                cfg(opts, Strategy::Dws),
                opts.reps,
            )
            .to_string(),
        );
        rows.push((format!("SSSP/{name}"), cells));
    }
    let (g, s, d) = paper::FIG8_SSSP_LJ;
    Report {
        title: format!(
            "Figure 8: coordination strategies — simulated ticks ({} workers) + real DWS seconds",
            opts.sim_workers
        ),
        columns: vec![
            "Global-sim".into(),
            "SSP-sim".into(),
            "DWS-sim".into(),
            "DWS-real(s)".into(),
        ],
        rows,
        note: format!("paper SSSP/LiveJournal: Global {g}, SSP {s}, DWS {d} (seconds, 32 cores)"),
    }
}

/// Figure 9(a) — thread scaling.
///
/// Simulated makespans over a worker ladder (real threads cannot speed up
/// on a single-core host), plus the real single-host Delivery seconds for
/// grounding.
pub fn fig9a(opts: &Opts) -> Report {
    use dcd_runtime::simulator::SimWorkload;
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= opts.sim_workers.max(8) * 4)
        .collect();
    let sim_cfg = SimConfig::default();
    // (The clean model keeps the scaling curve noise-free; fig8 uses the
    // realistic model to expose coordination costs.)
    let dws = SimStrategy::DwsAuto;
    let mut rows = Vec::new();

    let lj: Vec<(u64, u64)> = dcd_datagen::symmetrize(&datasets::webgraphs(opts.scale)[0].1)
        .iter()
        .map(|&(a, b)| (a as u64, b as u64))
        .collect();
    let mut base = None;
    let cc_cells: Vec<String> = threads
        .iter()
        .map(|&t| {
            let m = simulate(&SimWorkload::cc_partitioned(&lj, t), &sim_cfg, dws).makespan;
            let b = *base.get_or_insert(m);
            format!("{m} ({:.1}x)", b as f64 / m as f64)
        })
        .collect();
    rows.push(("CC/LiveJournal (sim)".into(), cc_cells));

    let arabic: Vec<(u64, u64, u64)> =
        dcd_datagen::weighted(&datasets::webgraphs(opts.scale)[2].1, 100, datasets::SEED)
            .iter()
            .map(|&(a, b, w)| (a as u64, b as u64, w as u64))
            .collect();
    let source = arabic.first().map(|&(a, _, _)| a).unwrap_or(0);
    let mut base = None;
    let sssp_cells: Vec<String> = threads
        .iter()
        .map(|&t| {
            let m = simulate(
                &SimWorkload::sssp_partitioned(&arabic, source, t),
                &sim_cfg,
                dws,
            )
            .makespan;
            let b = *base.get_or_insert(m);
            format!("{m} ({:.1}x)", b as f64 / m as f64)
        })
        .collect();
    rows.push(("SSSP/Arabic (sim)".into(), sssp_cells));

    // Real engine row: Delivery on the largest N-tree, across real thread
    // counts (flat on a single-core host — recorded for honesty).
    let ds = datasets::delivery_datasets(opts.scale)
        .into_iter()
        .nth(3)
        .expect("N-300M dataset");
    let delivery_cells: Vec<String> = threads
        .iter()
        .map(|&t| {
            let mut c = EngineConfig::with_workers(t).strategy(Strategy::Dws);
            c.timeout = Some(opts.timeout);
            run_cell(&queries::delivery().unwrap(), &ds, "results", c, opts.reps).to_string()
        })
        .collect();
    rows.push(("Delivery/N-300M (real s)".into(), delivery_cells));

    Report {
        title: "Figure 9(a): worker scaling — simulated makespan (speedup)".into(),
        columns: threads.iter().map(|t| format!("{t} thr")).collect(),
        rows,
        note: format!(
            "host has {} core(s): real rows stay flat, simulated rows carry the scaling shape",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ),
    }
}

/// Figure 9(b) — data scaling.
pub fn fig9b(opts: &Opts) -> Report {
    let ladder = datasets::scaling_datasets(opts.scale);
    let mut rows = Vec::new();
    let mut cc_cells = Vec::new();
    let mut sssp_cells = Vec::new();
    for (_, edges) in &ladder {
        let cc_ds = Dataset {
            name: "scaling",
            loads: vec![(
                "arc".into(),
                dcd_datagen::symmetrize(edges)
                    .iter()
                    .map(|&(a, b)| dcd_common::Tuple::from_ints(&[a, b]))
                    .collect(),
            )],
        };
        cc_cells.push(
            run_cell(
                &queries::cc().unwrap(),
                &cc_ds,
                "cc",
                cfg(opts, Strategy::Dws),
                opts.reps,
            )
            .to_string(),
        );
        let sssp_ds = Dataset {
            name: "scaling",
            loads: vec![(
                "warc".into(),
                dcd_datagen::weighted(edges, 100, datasets::SEED)
                    .iter()
                    .map(|&(a, b, w)| dcd_common::Tuple::from_ints(&[a, b, w]))
                    .collect(),
            )],
        };
        sssp_cells.push(
            run_cell(
                &queries::sssp(0).unwrap(),
                &sssp_ds,
                "results",
                cfg(opts, Strategy::Dws),
                opts.reps,
            )
            .to_string(),
        );
    }
    rows.push(("CC".into(), cc_cells));
    rows.push(("SSSP".into(), sssp_cells));
    // Delivery scales over N-trees of the same ladder sizes.
    let mut delivery_cells = Vec::new();
    for ds in datasets::delivery_datasets(opts.scale) {
        delivery_cells.push(
            run_cell(
                &queries::delivery().unwrap(),
                &ds,
                "results",
                cfg(opts, Strategy::Dws),
                opts.reps,
            )
            .to_string(),
        );
    }
    delivery_cells.push("-".into());
    rows.push(("Delivery (N-40M..300M)".into(), delivery_cells));
    Report {
        title: "Figure 9(b): data scaling (seconds)".into(),
        columns: ladder.iter().map(|(n, _)| n.clone()).collect(),
        rows,
        note: "paper: time grows proportionally with data (CC 12.4→158.8s over 16x)".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Opts {
        Opts {
            scale: 200_000,
            workers: 2,
            timeout: Duration::from_secs(30),
            reps: 1,
            apsp_max: 256,
            sim_workers: 4,
        }
    }

    #[test]
    fn fig3_report_is_deterministic_and_ordered() {
        let r = fig3(&tiny_opts());
        let sim: Vec<u64> = r.rows[0].1.iter().map(|c| c.parse().unwrap()).collect();
        assert!(sim[2] < sim[1] && sim[1] < sim[0], "{sim:?}");
    }

    #[test]
    fn fig1_runs_at_tiny_scale() {
        let r = fig1(&tiny_opts());
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].1.len(), 5);
        // All five systems should complete at this scale.
        for cell in &r.rows[0].1 {
            assert!(cell.parse::<f64>().is_ok(), "cell {cell}");
        }
    }

    #[test]
    fn tab3_runs_at_tiny_scale() {
        // Debug builds are ~50x slower than release; a short timeout keeps
        // the test fast and `TO` is then a legitimate cell value.
        let mut opts = tiny_opts();
        opts.timeout = Duration::from_secs(10);
        let r = tab3(&opts);
        assert_eq!(r.rows.len(), 1, "apsp_max=256 keeps one row");
        let cell = &r.rows[0].1[0];
        assert!(
            cell.parse::<f64>().is_ok() || cell == "TO",
            "unexpected cell {cell}"
        );
    }
}
