//! A deliberately simple single-threaded semi-naive interpreter.
//!
//! This is the workspace's correctness oracle: it shares *no* code with the
//! parallel engine's planner or evaluator (it interprets the analyzed AST
//! directly with naive join resolution), so agreement between the two is
//! strong evidence both are right. It is also the "single-node Datalog
//! engine" comparison point in the benchmark harness.

use dcd_common::hash::{FastMap, FastSet};
use dcd_common::{DcdError, Result, Tuple, Value};
use dcd_frontend::ast::{AggFunc, ArithOp, BodyLit, CmpOp, Expr, HeadTerm, Rule, Term};
use dcd_frontend::{analyze, parse_program, AnalyzedProgram};

/// Relation contents in the reference engine.
#[derive(Clone, Debug, Default)]
struct RefRelation {
    /// Set semantics rows.
    rows: FastSet<Tuple>,
    /// Aggregate state: group → value (min/max) or contributor map (sum).
    agg: FastMap<Vec<Value>, AggState>,
}

#[derive(Clone, Debug)]
enum AggState {
    Extremum(Value),
    Contribs(FastMap<u64, f64>),
}

/// The reference interpreter.
pub struct Reference {
    prog: AnalyzedProgram,
    params: FastMap<String, Value>,
    /// ε for sum convergence.
    pub sum_epsilon: f64,
    edb: FastMap<String, Vec<Tuple>>,
}

impl Reference {
    /// Parses and analyzes a program.
    pub fn new(src: &str) -> Result<Reference> {
        Ok(Reference {
            prog: analyze(parse_program(src)?)?,
            params: FastMap::default(),
            sum_epsilon: 1e-9,
            edb: FastMap::default(),
        })
    }

    /// Binds a parameter.
    pub fn with_param(mut self, name: &str, v: impl Into<Value>) -> Reference {
        self.params.insert(name.to_string(), v.into());
        self
    }

    /// Loads base relation rows.
    pub fn load(&mut self, name: &str, rows: Vec<Tuple>) {
        self.edb.insert(name.to_string(), rows);
    }

    /// Convenience edge loader.
    pub fn load_edges(&mut self, name: &str, edges: &[(i64, i64)]) {
        self.load(
            name,
            edges
                .iter()
                .map(|&(a, b)| Tuple::from_ints(&[a, b]))
                .collect(),
        );
    }

    /// Convenience weighted edge loader.
    pub fn load_weighted_edges(&mut self, name: &str, edges: &[(i64, i64, i64)]) {
        self.load(
            name,
            edges
                .iter()
                .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
                .collect(),
        );
    }

    /// Evaluates to fixpoint; returns every derived relation's rows.
    pub fn run(&self) -> Result<FastMap<String, Vec<Tuple>>> {
        let mut rels: FastMap<String, RefRelation> = FastMap::default();
        // Base relations as plain row sets.
        for (id, info) in self.prog.catalog.iter() {
            let _ = id;
            if info.is_edb {
                let rows = self.edb.get(&info.name).cloned().unwrap_or_default();
                let mut r = RefRelation::default();
                r.rows.extend(rows);
                rels.insert(info.name.clone(), r);
            } else {
                rels.insert(info.name.clone(), RefRelation::default());
            }
        }
        // Inline facts.
        for (pred, t) in &self.prog.facts {
            let info = self.prog.catalog.info(*pred);
            let rel = rels.get_mut(&info.name).expect("interned");
            if let Some(spec) = &info.agg {
                // min/max facts merge through the aggregate path.
                self.merge_agg(rel, spec.func, t.clone(), t.arity() - 1)?;
            } else {
                rel.rows.insert(t.clone());
            }
        }
        // Strata in order; naive iteration within each stratum. The
        // iteration cap guards against non-converging float sums.
        for stratum in &self.prog.strata {
            let mut rounds = 0u32;
            loop {
                rounds += 1;
                if rounds > 100_000 {
                    return Err(DcdError::Execution(
                        "reference evaluation did not converge".into(),
                    ));
                }
                let mut changed = false;
                for ri in &stratum.rules {
                    let rule = &self.prog.ast.rules[ri.rule_idx];
                    let derived = self.derive(rule, &rels)?;
                    let head_info = self.prog.catalog.info(ri.head);
                    let name = head_info.name.clone();
                    match &head_info.agg {
                        None => {
                            let rel = rels.get_mut(&name).expect("present");
                            for t in derived {
                                changed |= rel.rows.insert(t);
                            }
                        }
                        Some(spec) => {
                            let group_cols = spec.term_idx;
                            let rel = rels.get_mut(&name).expect("present");
                            for t in derived {
                                changed |= self.merge_agg(rel, spec.func, t, group_cols)?;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        // Materialize derived relations.
        let mut out = FastMap::default();
        for (_, info) in self.prog.catalog.iter() {
            if info.is_edb {
                continue;
            }
            let rel = &rels[&info.name];
            let mut rows: Vec<Tuple> = rel.rows.iter().cloned().collect();
            for (group, state) in &rel.agg {
                let v = match state {
                    AggState::Extremum(v) => *v,
                    AggState::Contribs(m) => {
                        let total: f64 = m.values().sum();
                        match info.agg.as_ref().map(|s| s.func) {
                            Some(AggFunc::Count) => Value::Int(m.len() as i64),
                            _ => Value::Float(total),
                        }
                    }
                };
                let mut vals = group.clone();
                vals.push(v);
                rows.push(Tuple::new(&vals));
            }
            rows.sort();
            out.insert(info.name.clone(), rows);
        }
        Ok(out)
    }

    /// Merges a derived merge-layout tuple into an aggregate relation.
    /// Returns whether anything changed (for the naive fixpoint).
    fn merge_agg(
        &self,
        rel: &mut RefRelation,
        func: AggFunc,
        t: Tuple,
        group_cols: usize,
    ) -> Result<bool> {
        let group = t.values()[..group_cols].to_vec();
        Ok(match func {
            AggFunc::Min | AggFunc::Max => {
                let v = t.values()[group_cols];
                match rel.agg.get_mut(&group) {
                    None => {
                        rel.agg.insert(group, AggState::Extremum(v));
                        true
                    }
                    Some(AggState::Extremum(cur)) => {
                        let better = if func == AggFunc::Min {
                            v < *cur
                        } else {
                            v > *cur
                        };
                        if better {
                            *cur = v;
                        }
                        better
                    }
                    _ => unreachable!("extremum relation"),
                }
            }
            AggFunc::Count | AggFunc::Sum => {
                let contributor = t.values()[group_cols].key_bits();
                let v = if func == AggFunc::Count {
                    1.0
                } else {
                    t.values()[group_cols + 1].as_f64()
                };
                let state = rel
                    .agg
                    .entry(group)
                    .or_insert_with(|| AggState::Contribs(FastMap::default()));
                let AggState::Contribs(m) = state else {
                    unreachable!("contribution relation")
                };
                match m.insert(contributor, v) {
                    None => true,
                    Some(old) => (old - v).abs() > self.sum_epsilon,
                }
            }
        })
    }

    /// All merge-layout tuples derivable from `rule` in the current state.
    fn derive(&self, rule: &Rule, rels: &FastMap<String, RefRelation>) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        let mut env: FastMap<String, Value> = FastMap::default();
        let mut remaining: Vec<&BodyLit> = rule.body.iter().collect();
        self.solve(rule, rels, &mut env, &mut remaining, &mut out)?;
        Ok(out)
    }

    /// Tiny resolution loop: repeatedly pick the next evaluable literal.
    fn solve(
        &self,
        rule: &Rule,
        rels: &FastMap<String, RefRelation>,
        env: &mut FastMap<String, Value>,
        remaining: &mut Vec<&BodyLit>,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if remaining.is_empty() {
            out.push(self.emit(rule, env)?);
            return Ok(());
        }
        // Pick an evaluable constraint first (cheap pruning), else the
        // first atom.
        let pick = remaining
            .iter()
            .position(|l| match l {
                BodyLit::Compare { op, lhs, rhs } => {
                    let mut vs = Vec::new();
                    lhs.vars(&mut vs);
                    rhs.vars(&mut vs);
                    let unbound: Vec<_> = vs.iter().filter(|v| !env.contains_key(**v)).collect();
                    unbound.is_empty()
                        || (*op == CmpOp::Eq
                            && unbound.len() == 1
                            && (matches!(lhs, Expr::Term(Term::Var(x)) if x == *unbound[0])
                                || matches!(rhs, Expr::Term(Term::Var(x)) if x == *unbound[0])))
                }
                BodyLit::Atom(_) => false,
            })
            .or_else(|| remaining.iter().position(|l| matches!(l, BodyLit::Atom(_))));
        let Some(pick) = pick else {
            return Err(DcdError::Execution(format!(
                "cannot schedule remaining literals of rule {rule}"
            )));
        };
        let lit = remaining.remove(pick);
        match lit {
            BodyLit::Compare { op, lhs, rhs } => {
                let l_unbound = matches!(lhs, Expr::Term(Term::Var(x)) if !env.contains_key(x));
                let r_unbound = matches!(rhs, Expr::Term(Term::Var(x)) if !env.contains_key(x));
                if *op == CmpOp::Eq && (l_unbound || r_unbound) {
                    let (var, expr) = if l_unbound { (lhs, rhs) } else { (rhs, lhs) };
                    let Expr::Term(Term::Var(name)) = var else {
                        unreachable!()
                    };
                    let v = self.eval_expr(expr, env)?;
                    env.insert(name.clone(), v);
                    self.solve(rule, rels, env, remaining, out)?;
                    env.remove(name);
                } else {
                    let a = self.eval_expr(lhs, env)?;
                    let b = self.eval_expr(rhs, env)?;
                    let ok = match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                    };
                    if ok {
                        self.solve(rule, rels, env, remaining, out)?;
                    }
                }
            }
            BodyLit::Atom(atom) => {
                let rel = rels
                    .get(&atom.pred)
                    .ok_or_else(|| DcdError::MissingRelation(atom.pred.clone()))?;
                // Current logical rows of the relation.
                let info_agg = self
                    .prog
                    .catalog
                    .id(&atom.pred)
                    .map(|id| self.prog.catalog.info(id).agg.clone())
                    .unwrap_or(None);
                let rows: Vec<Tuple> = if info_agg.is_some() {
                    rel.agg
                        .iter()
                        .map(|(g, s)| {
                            let v = match s {
                                AggState::Extremum(v) => *v,
                                AggState::Contribs(m) => match info_agg.as_ref().map(|s| s.func) {
                                    Some(AggFunc::Count) => Value::Int(m.len() as i64),
                                    _ => Value::Float(m.values().sum()),
                                },
                            };
                            let mut vals = g.clone();
                            vals.push(v);
                            Tuple::new(&vals)
                        })
                        .collect()
                } else {
                    rel.rows.iter().cloned().collect()
                };
                for row in rows {
                    let mut bound_here: Vec<&str> = Vec::new();
                    let mut ok = true;
                    for (t, v) in atom.terms.iter().zip(row.values()) {
                        match t {
                            Term::Var(name) => match env.get(name) {
                                Some(b) => {
                                    if b != v {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    env.insert(name.clone(), *v);
                                    bound_here.push(name);
                                }
                            },
                            Term::Const(c) => {
                                if c != v {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Param(p) => {
                                let c = self.param(p)?;
                                if c != *v {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Wildcard => {}
                        }
                    }
                    if ok {
                        self.solve(rule, rels, env, remaining, out)?;
                    }
                    for name in bound_here {
                        env.remove(name);
                    }
                }
            }
        }
        remaining.insert(pick, lit);
        Ok(())
    }

    fn param(&self, name: &str) -> Result<Value> {
        self.params
            .get(name)
            .copied()
            .ok_or_else(|| DcdError::Execution(format!("parameter '{name}' not supplied")))
    }

    fn eval_expr(&self, e: &Expr, env: &FastMap<String, Value>) -> Result<Value> {
        Ok(match e {
            Expr::Term(Term::Var(v)) => *env
                .get(v)
                .ok_or_else(|| DcdError::Execution(format!("unbound variable '{v}'")))?,
            Expr::Term(Term::Const(c)) => *c,
            Expr::Term(Term::Param(p)) => self.param(p)?,
            Expr::Term(Term::Wildcard) => {
                return Err(DcdError::Execution("wildcard in expression".into()))
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, env)?;
                let b = self.eval_expr(rhs, env)?;
                match op {
                    ArithOp::Add => a.add(b),
                    ArithOp::Sub => a.sub(b),
                    ArithOp::Mul => a.mul(b),
                    ArithOp::Div => a.div(b),
                }
            }
        })
    }

    /// Builds the merge-layout output tuple for a complete binding.
    fn emit(&self, rule: &Rule, env: &FastMap<String, Value>) -> Result<Tuple> {
        let term_val = |t: &Term| -> Result<Value> {
            Ok(match t {
                Term::Var(v) => *env
                    .get(v)
                    .ok_or_else(|| DcdError::Execution(format!("unbound head var '{v}'")))?,
                Term::Const(c) => *c,
                Term::Param(p) => self.param(p)?,
                Term::Wildcard => return Err(DcdError::Execution("wildcard in head".into())),
            })
        };
        let mut vals = Vec::with_capacity(rule.head.terms.len() + 1);
        for t in &rule.head.terms {
            match t {
                HeadTerm::Plain(t) => vals.push(term_val(t)?),
                HeadTerm::Agg { func, args } => match func {
                    AggFunc::Min | AggFunc::Max | AggFunc::Count => {
                        vals.push(self.eval_expr(&args[0], env)?)
                    }
                    AggFunc::Sum => {
                        vals.push(self.eval_expr(&args[0], env)?);
                        vals.push(self.eval_expr(&args[1], env)?);
                    }
                },
            }
        }
        Ok(Tuple::new(&vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc_chain() {
        let mut r =
            Reference::new("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).").unwrap();
        r.load_edges("arc", &[(1, 2), (2, 3)]);
        let out = r.run().unwrap();
        assert_eq!(
            out["tc"],
            vec![
                Tuple::from_ints(&[1, 2]),
                Tuple::from_ints(&[1, 3]),
                Tuple::from_ints(&[2, 3]),
            ]
        );
    }

    #[test]
    fn sssp_with_params() {
        let mut r = Reference::new(
            "sp(To, min<C>) <- To = start, C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.",
        )
        .unwrap()
        .with_param("start", 1i64);
        r.load_weighted_edges("warc", &[(1, 2, 10), (1, 3, 2), (3, 2, 3)]);
        let out = r.run().unwrap();
        assert_eq!(
            out["sp"],
            vec![
                Tuple::from_ints(&[1, 0]),
                Tuple::from_ints(&[2, 5]),
                Tuple::from_ints(&[3, 2]),
            ]
        );
    }

    #[test]
    fn count_mutual_recursion() {
        let mut r = Reference::new(
            "attend(X) <- organizer(X).
             cnt(Y, count<X>) <- attend(X), friend(Y, X).
             attend(X) <- cnt(X, N), N >= 2.",
        )
        .unwrap();
        r.load(
            "organizer",
            vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])],
        );
        r.load_edges("friend", &[(9, 1), (9, 2), (8, 9), (8, 1)]);
        let out = r.run().unwrap();
        assert_eq!(
            out["attend"],
            vec![
                Tuple::from_ints(&[1]),
                Tuple::from_ints(&[2]),
                Tuple::from_ints(&[8]),
                Tuple::from_ints(&[9]),
            ]
        );
    }

    #[test]
    fn nonlinear_apsp() {
        let mut r = Reference::new(
            "path(A, B, min<D>) <- warc(A, B, D).
             path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.",
        )
        .unwrap();
        r.load_weighted_edges("warc", &[(1, 2, 4), (2, 3, 1), (1, 3, 10)]);
        let out = r.run().unwrap();
        assert_eq!(
            out["path"],
            vec![
                Tuple::from_ints(&[1, 2, 4]),
                Tuple::from_ints(&[1, 3, 5]),
                Tuple::from_ints(&[2, 3, 1]),
            ]
        );
    }
}
