#![warn(missing_docs)]
//! Comparison baselines for the DCDatalog benchmarks.
//!
//! * [`reference::Reference`] — an independent single-threaded naive
//!   interpreter used as the correctness oracle throughout the test suite
//!   and as the "single-node engine" row in the benchmark tables.
//! * [`broadcast_config`] — configures the parallel engine to broadcast
//!   every derived tuple to all workers, emulating the routing behaviour
//!   the paper attributes to SociaLite/DDlog on non-linear queries
//!   (Table 3).

pub mod reference;

pub use reference::Reference;

use dcdatalog::EngineConfig;

/// An [`EngineConfig`] with broadcast routing (the Table-3 comparator).
pub fn broadcast_config(workers: usize) -> EngineConfig {
    let mut cfg = EngineConfig::with_workers(workers);
    cfg.broadcast_routing = true;
    cfg
}
