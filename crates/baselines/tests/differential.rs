//! Differential testing: the parallel engine vs the independent
//! single-threaded reference interpreter on randomized inputs.
//!
//! The two implementations share no planner or evaluator code, so
//! agreement across random graphs, strategies and worker counts is the
//! strongest correctness evidence in this repository.

use dcd_baselines::Reference;
use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcdatalog::{queries, Engine, EngineConfig, Strategy, Tuple};

fn edges_strategy(
    max_v: i64,
    max_e: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

fn run_engine(
    program: dcdatalog::Program,
    loads: &[(&str, Vec<Tuple>)],
    workers: usize,
    strategy: Strategy,
) -> Vec<(String, Vec<Tuple>)> {
    let cfg = EngineConfig::with_workers(workers).strategy(strategy);
    let mut e = Engine::new(program, cfg).unwrap();
    for (name, rows) in loads {
        e.load_edb(name, rows.clone()).unwrap();
    }
    let r = e.run().unwrap();
    r.relation_names()
        .into_iter()
        .map(|n| (n.to_string(), r.sorted(n)))
        .collect()
}

fn to_tuples(edges: &[(i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b)| Tuple::from_ints(&[a, b]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tc_matches_reference(edges in edges_strategy(12, 40), workers in 1usize..4) {
        let mut reference = Reference::new(queries::TC).unwrap();
        reference.load_edges("arc", &edges);
        let expected = reference.run().unwrap();
        for strat in [Strategy::Global, Strategy::Dws] {
            let got = run_engine(
                queries::tc().unwrap(),
                &[("arc", to_tuples(&edges))],
                workers,
                strat,
            );
            prop_assert_eq!(&got[0].1, &expected["tc"], "workers={}", workers);
        }
    }

    #[test]
    fn cc_matches_reference(edges in edges_strategy(10, 30), workers in 1usize..4) {
        let sym = dcd_datagen::symmetrize(&edges);
        let mut reference = Reference::new(queries::CC).unwrap();
        reference.load_edges("arc", &sym);
        let expected = reference.run().unwrap();
        for strat in [Strategy::Global, Strategy::Ssp { s: 1 }, Strategy::Dws] {
            let got = run_engine(
                queries::cc().unwrap(),
                &[("arc", to_tuples(&sym))],
                workers,
                strat,
            );
            let cc = got.iter().find(|(n, _)| n == "cc").unwrap();
            prop_assert_eq!(&cc.1, &expected["cc"]);
        }
    }

    #[test]
    fn sssp_matches_reference(
        edges in proptest::collection::vec((0..10i64, 0..10i64, 1..20i64), 0..30),
        workers in 1usize..4,
    ) {
        let rows: Vec<Tuple> = edges.iter().map(|&(a, b, w)| Tuple::from_ints(&[a, b, w])).collect();
        let mut reference = Reference::new(queries::SSSP).unwrap().with_param("start", 0i64);
        reference.load("warc", rows.clone());
        let expected = reference.run().unwrap();
        let got = run_engine(
            queries::sssp(0).unwrap(),
            &[("warc", rows)],
            workers,
            Strategy::Dws,
        );
        let results = got.iter().find(|(n, _)| n == "results").unwrap();
        prop_assert_eq!(&results.1, &expected["results"]);
    }

    #[test]
    fn apsp_matches_reference(
        edges in proptest::collection::vec((0..7i64, 0..7i64, 1..10i64), 0..15),
        workers in 1usize..4,
    ) {
        let rows: Vec<Tuple> = edges.iter().map(|&(a, b, w)| Tuple::from_ints(&[a, b, w])).collect();
        let mut reference = Reference::new(queries::APSP).unwrap();
        reference.load("warc", rows.clone());
        let expected = reference.run().unwrap();
        for broadcast in [false, true] {
            let mut cfg = EngineConfig::with_workers(workers);
            cfg.broadcast_routing = broadcast;
            let mut e = Engine::new(queries::apsp().unwrap(), cfg).unwrap();
            e.load_edb("warc", rows.clone()).unwrap();
            let r = e.run().unwrap();
            prop_assert_eq!(&r.sorted("apsp"), &expected["apsp"], "broadcast={}", broadcast);
        }
    }

    #[test]
    fn sg_matches_reference(edges in edges_strategy(9, 16), workers in 1usize..4) {
        let mut reference = Reference::new(queries::SG).unwrap();
        reference.load_edges("arc", &edges);
        let expected = reference.run().unwrap();
        let got = run_engine(
            queries::sg().unwrap(),
            &[("arc", to_tuples(&edges))],
            workers,
            Strategy::Dws,
        );
        prop_assert_eq!(&got[0].1, &expected["sg"]);
    }

    #[test]
    fn delivery_matches_reference(
        assbl in edges_strategy(8, 12),
        basic in proptest::collection::vec((0..8i64, 1..30i64), 1..8),
        workers in 1usize..4,
    ) {
        // `assbl` must be acyclic for Delivery to terminate: keep only
        // parent < child edges.
        let dag: Vec<(i64, i64)> = assbl.into_iter().filter(|&(p, s)| p < s).collect();
        let basic_rows: Vec<Tuple> = basic.iter().map(|&(p, d)| Tuple::from_ints(&[p, d])).collect();
        let mut reference = Reference::new(queries::DELIVERY).unwrap();
        reference.load_edges("assbl", &dag);
        reference.load("basic", basic_rows.clone());
        let expected = reference.run().unwrap();
        let got = run_engine(
            queries::delivery().unwrap(),
            &[("assbl", to_tuples(&dag)), ("basic", basic_rows)],
            workers,
            Strategy::Dws,
        );
        let results = got.iter().find(|(n, _)| n == "results").unwrap();
        prop_assert_eq!(&results.1, &expected["results"]);
    }

    #[test]
    fn attend_matches_reference(
        organizers in proptest::collection::vec(0..6i64, 1..4),
        friends in edges_strategy(12, 25),
        workers in 1usize..4,
    ) {
        let orgs: Vec<Tuple> = {
            let mut o = organizers.clone();
            o.sort_unstable();
            o.dedup();
            o.iter().map(|&x| Tuple::from_ints(&[x])).collect()
        };
        let mut reference = Reference::new(queries::ATTEND).unwrap().with_param("threshold", 2i64);
        reference.load("organizer", orgs.clone());
        reference.load_edges("friend", &friends);
        let expected = reference.run().unwrap();
        let got = run_engine(
            queries::attend(2).unwrap(),
            &[("organizer", orgs), ("friend", to_tuples(&friends))],
            workers,
            Strategy::Dws,
        );
        let attend = got.iter().find(|(n, _)| n == "attend").unwrap();
        prop_assert_eq!(&attend.1, &expected["attend"]);
    }
}

/// A deterministic, larger differential check (not proptest-sized) so CI
/// exercises a non-trivial fixpoint depth.
#[test]
fn tc_on_rmat_graph_matches_reference() {
    let edges = dcd_datagen::rmat_with(64, 150, 99);
    let mut reference = Reference::new(queries::TC).unwrap();
    reference.load_edges("arc", &edges);
    let expected = reference.run().unwrap();
    for workers in [1, 3, 8] {
        for strat in [Strategy::Global, Strategy::Ssp { s: 3 }, Strategy::Dws] {
            let got = run_engine(
                queries::tc().unwrap(),
                &[("arc", to_tuples(&edges))],
                workers,
                strat,
            );
            assert_eq!(got[0].1, expected["tc"], "workers={workers}");
        }
    }
}

/// Sum coalescing (§5.2.2) under maximal interleaving: a star graph routes
/// every leaf's contribution into the hub's single group, and
/// `batch_size = 1` ships each contribution in its own batch, so several
/// contributors update the group within one gather window. Coalescing
/// keeps only the newest logical row per group — sound only because
/// sum-relation delta rows are full `(group, total)` snapshots; this test
/// would catch a regression to per-contribution increments.
#[test]
fn sum_coalescing_star_graph_matches_reference() {
    let mut edges: Vec<(i64, i64)> = Vec::new();
    for leaf in 1..=8 {
        edges.push((leaf, 0));
        edges.push((0, leaf));
    }
    let n = dcd_datagen::vertex_count(&edges);
    let matrix = dcd_datagen::pagerank_matrix(&edges);
    let mut reference = Reference::new(queries::PAGERANK)
        .unwrap()
        .with_param("alpha", 0.85)
        .with_param("vnum", n as f64);
    reference.sum_epsilon = 1e-10;
    reference.load("matrix", matrix.clone());
    let expected = reference.run().unwrap();
    for strat in [Strategy::Global, Strategy::Ssp { s: 1 }, Strategy::Dws] {
        let name = strat.name();
        let mut cfg = EngineConfig::with_workers(4).strategy(strat);
        cfg.sum_epsilon = 1e-10;
        cfg.batch_size = 1;
        let mut e = Engine::new(queries::pagerank(0.85, n).unwrap(), cfg).unwrap();
        e.load_edb("matrix", matrix.clone()).unwrap();
        let r = e.run().unwrap();
        let got = r.sorted("results");
        let want = &expected["results"];
        assert_eq!(got.len(), want.len(), "{name}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.values()[0], w.values()[0], "{name}");
            let dv = (g.values()[1].as_f64() - w.values()[1].as_f64()).abs();
            assert!(dv < 1e-6, "{name}: {g:?} vs {w:?}");
        }
    }
}

/// Count coalescing, same shape: person 20's `count<Y>` group receives
/// one contribution per organizer friend, each in its own batch across 4
/// workers, and 21 attends only once 20's count crosses the threshold —
/// so a lost or double-applied contribution changes the answer.
#[test]
fn count_coalescing_multiworker_matches_reference() {
    let orgs: Vec<Tuple> = (0..4).map(|x| Tuple::from_ints(&[x])).collect();
    let mut friends: Vec<(i64, i64)> = (0..4).map(|o| (20, o)).collect();
    friends.extend([(21, 0), (21, 1), (21, 20)]);
    let mut reference = Reference::new(queries::ATTEND)
        .unwrap()
        .with_param("threshold", 3i64);
    reference.load("organizer", orgs.clone());
    reference.load_edges("friend", &friends);
    let expected = reference.run().unwrap();
    for strat in [Strategy::Global, Strategy::Ssp { s: 1 }, Strategy::Dws] {
        let name = strat.name();
        let mut cfg = EngineConfig::with_workers(4).strategy(strat);
        cfg.batch_size = 1;
        let mut e = Engine::new(queries::attend(3).unwrap(), cfg).unwrap();
        e.load_edb("organizer", orgs.clone()).unwrap();
        e.load_edb("friend", to_tuples(&friends)).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.sorted("attend"), expected["attend"], "{name}");
    }
}

#[test]
fn pagerank_totals_match_reference_within_epsilon() {
    let edges = dcd_datagen::rmat_with(32, 100, 5);
    let n = dcd_datagen::vertex_count(&edges);
    let matrix = dcd_datagen::pagerank_matrix(&edges);
    let mut reference = Reference::new(queries::PAGERANK)
        .unwrap()
        .with_param("alpha", 0.85)
        .with_param("vnum", n as f64);
    reference.sum_epsilon = 1e-10;
    reference.load("matrix", matrix.clone());
    let expected = reference.run().unwrap();
    let mut cfg = EngineConfig::with_workers(4);
    cfg.sum_epsilon = 1e-10;
    let mut e = Engine::new(queries::pagerank(0.85, n).unwrap(), cfg).unwrap();
    e.load_edb("matrix", matrix).unwrap();
    let r = e.run().unwrap();
    let got = r.sorted("results");
    let want = &expected["results"];
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.values()[0], w.values()[0]);
        let dv = (g.values()[1].as_f64() - w.values()[1].as_f64()).abs();
        assert!(dv < 1e-6, "rank mismatch: {g:?} vs {w:?}");
    }
}
