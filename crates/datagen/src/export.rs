//! Writing generated datasets to delimited files (the `dcdatalog` CLI's
//! input format).

use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes `(src, dst)` edges as comma-separated lines.
pub fn write_edges(path: &Path, edges: &[(i64, i64)]) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for &(a, b) in edges {
        writeln!(out, "{a},{b}")?;
    }
    out.flush()
}

/// Writes `(src, dst, weight)` edges as comma-separated lines.
pub fn write_weighted_edges(path: &Path, edges: &[(i64, i64, i64)]) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for &(a, b, w) in edges {
        writeln!(out, "{a},{b},{w}")?;
    }
    out.flush()
}

/// Writes arbitrary tuples as comma-separated lines.
pub fn write_tuples(path: &Path, rows: &[dcd_common::Tuple]) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for row in rows {
        let mut first = true;
        for v in row.values() {
            if !first {
                write!(out, ",")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("dcd_datagen_export");
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn edges_roundtrip_text() {
        let p = tmp("e.csv");
        write_edges(&p, &[(1, 2), (3, 4)]).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "1,2\n3,4\n");
    }

    #[test]
    fn weighted_edges_text() {
        let p = tmp("w.csv");
        write_weighted_edges(&p, &[(1, 2, 9)]).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "1,2,9\n");
    }

    #[test]
    fn tuples_with_floats() {
        let p = tmp("t.csv");
        let rows = vec![dcd_common::Tuple::new(&[
            dcd_common::Value::Int(1),
            dcd_common::Value::Float(0.5),
        ])];
        write_tuples(&p, &rows).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "1,0.5\n");
    }
}
