//! Scaled-down stand-ins for the paper's four real web/social graphs.
//!
//! The paper evaluates CC, SSSP and PageRank on LiveJournal (4.8 M
//! vertices / 69 M edges), Orkut (3 M / 117 M), Arabic (23 M / 640 M) and
//! Twitter (42 M / 1.5 B). Those datasets are not redistributable here, so
//! each gets an RMAT stand-in whose vertex/edge *ratio* matches the
//! original and whose degree distribution is similarly heavy-tailed. The
//! `scale` divisor shrinks the graph to laptop size (DESIGN.md §2
//! documents why relative engine comparisons survive this substitution).

use crate::rmat::rmat_with;
use crate::Edges;

fn scaled(vertices: usize, edges: usize, scale: usize, seed: u64) -> Edges {
    let scale = scale.max(1);
    let n = (vertices / scale).max(64);
    let m = (edges / scale).max(n);
    rmat_with(n, m, seed)
}

/// LiveJournal-like: ratio 4 847 572 / 68 993 773 (~14 edges/vertex).
pub fn livejournal_like(scale: usize, seed: u64) -> Edges {
    scaled(4_847_572, 68_993_773, scale, seed ^ 0x11)
}

/// Orkut-like: ratio 3 072 441 / 117 185 083 (~38 edges/vertex).
pub fn orkut_like(scale: usize, seed: u64) -> Edges {
    scaled(3_072_441, 117_185_083, scale, seed ^ 0x22)
}

/// Arabic-like: ratio 22 744 080 / 639 999 458 (~28 edges/vertex).
pub fn arabic_like(scale: usize, seed: u64) -> Edges {
    scaled(22_744_080, 639_999_458, scale, seed ^ 0x33)
}

/// Twitter-like: ratio 41 652 231 / 1 468 365 182 (~35 edges/vertex).
pub fn twitter_like(scale: usize, seed: u64) -> Edges {
    scaled(41_652_231, 1_468_365_182, scale, seed ^ 0x44)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_count;

    #[test]
    fn ratios_follow_the_originals() {
        let scale = 10_000;
        let lj = livejournal_like(scale, 1);
        let ok = orkut_like(scale, 1);
        let lj_ratio = lj.len() as f64 / vertex_count(&lj) as f64;
        let ok_ratio = ok.len() as f64 / vertex_count(&ok) as f64;
        assert!(
            ok_ratio > lj_ratio,
            "Orkut is denser than LiveJournal: {ok_ratio:.1} vs {lj_ratio:.1}"
        );
    }

    #[test]
    fn scale_shrinks() {
        let big = livejournal_like(5_000, 2);
        let small = livejournal_like(50_000, 2);
        assert!(big.len() > small.len());
    }

    #[test]
    fn deterministic_per_graph() {
        assert_eq!(twitter_like(100_000, 3), twitter_like(100_000, 3));
        assert_ne!(twitter_like(100_000, 3), arabic_like(100_000, 3));
    }
}
