#![warn(missing_docs)]
//! Deterministic dataset generators for the DCDatalog benchmarks
//! (paper §7.1.1).
//!
//! Everything is seeded, so every experiment is exactly reproducible:
//!
//! * [`rmat()`] — RMAT graphs: `n` vertices, `10·n` directed edges, the
//!   paper's RMAT-*n* family (skewed degree distribution).
//! * [`random`] — G-*n* uniform random digraphs (the G-10K dataset:
//!   10 000 vertices, edge probability 0.001).
//! * [`trees`] — Tree-*h* (height *h*, fanout 2–6) used by SG, and the
//!   N-*n* trees (5–10 children, 20–60 % leaf probability) used by
//!   Delivery.
//! * [`webgraph`] — scaled-down power-law stand-ins for the paper's four
//!   real graphs (LiveJournal, Orkut, Arabic, Twitter). The *shape*
//!   (degree skew, one giant component) matches; the scale is a CLI knob.
//! * [`weighted`] / [`pagerank_matrix`] / [`symmetrize`] — adapters that
//!   turn an edge list into SSSP/APSP/PageRank inputs.

pub mod export;
pub mod random;
pub mod rmat;
pub mod trees;
pub mod webgraph;

pub use random::gnp;
pub use rmat::{rmat, rmat_with};
pub use trees::{n_tree, tree};
pub use webgraph::{arabic_like, livejournal_like, orkut_like, twitter_like};

use dcd_common::hash::FastMap;
use dcd_common::rng::Rng;
use dcd_common::Tuple;

/// Directed edge list with integer vertex ids.
pub type Edges = Vec<(i64, i64)>;

/// Assigns uniform random weights in `1..=max_w` to an edge list.
pub fn weighted(edges: &[(i64, i64)], max_w: i64, seed: u64) -> Vec<(i64, i64, i64)> {
    assert!(max_w >= 1);
    let mut rng = Rng::seed_from_u64(seed ^ 0x77ed);
    edges
        .iter()
        .map(|&(a, b)| (a, b, rng.gen_range(1..=max_w)))
        .collect()
}

/// Adds the reverse of every edge (CC operates on undirected graphs).
pub fn symmetrize(edges: &[(i64, i64)]) -> Edges {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        out.push((a, b));
        out.push((b, a));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the PageRank `matrix(Y, X, D)` rows: one row per edge `Y→X`
/// with `D = out-degree(Y)`.
pub fn pagerank_matrix(edges: &[(i64, i64)]) -> Vec<Tuple> {
    let mut deg: FastMap<i64, i64> = FastMap::default();
    for &(y, _) in edges {
        *deg.entry(y).or_insert(0) += 1;
    }
    edges
        .iter()
        .map(|&(y, x)| Tuple::from_ints(&[y, x, deg[&y]]))
        .collect()
}

/// Number of distinct vertices in an edge list.
pub fn vertex_count(edges: &[(i64, i64)]) -> usize {
    let mut vs: Vec<i64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    vs.sort_unstable();
    vs.dedup();
    vs.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_is_deterministic_and_in_range() {
        let edges = vec![(1, 2), (2, 3), (3, 4)];
        let a = weighted(&edges, 10, 42);
        let b = weighted(&edges, 10, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, _, w)| (1..=10).contains(&w)));
        let c = weighted(&edges, 10, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn symmetrize_adds_reverses_and_dedups() {
        let s = symmetrize(&[(1, 2), (2, 1), (2, 3)]);
        assert_eq!(s, vec![(1, 2), (2, 1), (2, 3), (3, 2)]);
    }

    #[test]
    fn pagerank_matrix_degrees() {
        let m = pagerank_matrix(&[(1, 2), (1, 3), (2, 3)]);
        assert_eq!(m[0], Tuple::from_ints(&[1, 2, 2]));
        assert_eq!(m[2], Tuple::from_ints(&[2, 3, 1]));
    }

    #[test]
    fn vertex_count_counts_endpoints() {
        assert_eq!(vertex_count(&[(1, 2), (2, 3)]), 3);
        assert_eq!(vertex_count(&[]), 0);
    }
}
