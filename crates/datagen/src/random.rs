//! Uniform random digraphs (the paper's G-10K dataset).

use crate::Edges;
use dcd_common::rng::Rng;

/// Generates a G(n, p) random digraph: each ordered pair `(u, v)`,
/// `u != v`, is an edge with probability `p`.
///
/// For the sparse regime used here (`p ≤ 0.01`) the generator samples the
/// expected number of edges directly (geometric skipping would also work;
/// rejection keeps the code simple and is plenty fast at this scale).
pub fn gnp(n: usize, p: f64, seed: u64) -> Edges {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = Rng::seed_from_u64(seed ^ 0x69b9);
    let target = ((n * (n - 1)) as f64 * p).round() as usize;
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut out = Vec::with_capacity(target);
    while out.len() < target {
        let u = rng.gen_range(0..n) as i64;
        let v = rng.gen_range(0..n) as i64;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            out.push((u, v));
        }
    }
    out
}

/// The paper's G-10K: 10 000 vertices, p = 0.001.
pub fn g10k(seed: u64) -> Edges {
    gnp(10_000, 0.001, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(gnp(100, 0.05, 1), gnp(100, 0.05, 1));
    }

    #[test]
    fn edge_count_matches_expectation() {
        let g = gnp(200, 0.01, 2);
        assert_eq!(g.len(), (200.0f64 * 199.0 * 0.01).round() as usize);
    }

    #[test]
    fn no_self_loops() {
        assert!(gnp(50, 0.1, 3).iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn g10k_scale() {
        let g = g10k(1);
        // ~ 10k·9999·0.001 ≈ 100k edges.
        assert!((99_000..101_000).contains(&g.len()), "got {}", g.len());
    }
}
