//! The RMAT recursive-matrix graph generator.
//!
//! The paper's RMAT-*n* datasets have *n* vertices and *10·n* directed
//! edges. RMAT recursively subdivides the adjacency matrix into four
//! quadrants with probabilities `(a, b, c, d)`; the classic parameters
//! `(0.57, 0.19, 0.19, 0.05)` produce the heavy-tailed degree
//! distribution that makes parallel Datalog workloads skewed — exactly
//! the straggler-inducing shape DWS targets.

use crate::Edges;
use dcd_common::rng::Rng;

/// Standard RMAT quadrant probabilities.
pub const RMAT_A: f64 = 0.57;
/// Quadrant b.
pub const RMAT_B: f64 = 0.19;
/// Quadrant c.
pub const RMAT_C: f64 = 0.19;

/// Generates an RMAT graph with `n` vertices (rounded up to a power of
/// two internally) and `10 * n` edges, deduplicated, no self-loops.
pub fn rmat(n: usize, seed: u64) -> Edges {
    rmat_with(n, 10 * n, seed)
}

/// Generates an RMAT graph with an explicit edge budget.
pub fn rmat_with(n: usize, edges: usize, seed: u64) -> Edges {
    assert!(n >= 2, "need at least two vertices");
    let scale = (n as f64).log2().ceil() as u32;
    let side = 1usize << scale;
    let mut rng = Rng::seed_from_u64(seed ^ 0x8a7a);
    let mut out: Edges = Vec::with_capacity(edges);
    let mut seen = std::collections::HashSet::with_capacity(edges * 2);
    let mut attempts = 0usize;
    let max_attempts = edges.saturating_mul(20).max(1000);
    while out.len() < edges && attempts < max_attempts {
        attempts += 1;
        let (mut x0, mut x1) = (0usize, side);
        let (mut y0, mut y1) = (0usize, side);
        while x1 - x0 > 1 {
            // Add noise per level so repeated descents decorrelate.
            let r: f64 = rng.gen_f64();
            let (mx, my) = ((x0 + x1) / 2, (y0 + y1) / 2);
            if r < RMAT_A {
                x1 = mx;
                y1 = my;
            } else if r < RMAT_A + RMAT_B {
                x1 = mx;
                y0 = my;
            } else if r < RMAT_A + RMAT_B + RMAT_C {
                x0 = mx;
                y1 = my;
            } else {
                x0 = mx;
                y0 = my;
            }
        }
        let (u, v) = (x0 % n, y0 % n);
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            out.push((u as i64, v as i64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_count;

    #[test]
    fn deterministic() {
        assert_eq!(rmat(256, 7), rmat(256, 7));
        assert_ne!(rmat(256, 7), rmat(256, 8));
    }

    #[test]
    fn edge_budget_roughly_met() {
        let g = rmat(256, 1);
        // Dedup can fall slightly short, but should be close to 10n.
        assert!(g.len() > 2000, "got {}", g.len());
        assert!(g.len() <= 2560);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = rmat(128, 3);
        assert!(g.iter().all(|&(a, b)| a != b));
        let mut d = g.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), g.len());
    }

    #[test]
    fn ids_in_range() {
        let n = 300; // not a power of two
        let g = rmat(n, 5);
        assert!(g
            .iter()
            .all(|&(a, b)| (0..n as i64).contains(&a) && (0..n as i64).contains(&b)));
        assert!(vertex_count(&g) <= n);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(1024, 11);
        let mut deg = vec![0usize; 1024];
        for &(a, _) in &g {
            deg[a as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top = deg[..10].iter().sum::<usize>();
        let avg10 = 10 * g.len() / 1024;
        assert!(
            top > avg10 * 3,
            "top-10 vertices should dominate: top={top}, 10·avg={avg10}"
        );
    }
}
