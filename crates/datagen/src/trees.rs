//! Tree generators: Tree-*h* (SG) and N-*n* (Delivery).

use crate::Edges;
use dcd_common::rng::Rng;

/// Tree-*h*: a tree of height `h` where every non-leaf vertex has a
/// uniform-random 2–6 children (paper §7.1.1). Edges point parent→child.
pub fn tree(height: usize, seed: u64) -> Edges {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7ee5);
    let mut edges = Vec::new();
    let mut frontier = vec![0i64];
    let mut next_id = 1i64;
    for _ in 0..height {
        let mut next = Vec::new();
        for &p in &frontier {
            let kids = rng.gen_range(2..=6);
            for _ in 0..kids {
                edges.push((p, next_id));
                next.push(next_id);
                next_id += 1;
            }
        }
        frontier = next;
    }
    edges
}

/// N-*n*: a tree with approximately `n` vertices, built level by level —
/// each node has 5–10 children and each child becomes a leaf with
/// probability 20–60 % (drawn per level, following the paper's reference \[24\]). Edges point
/// parent→child, which is the `assbl(Part, SubPart)` orientation of the
/// Delivery query.
pub fn n_tree(n: usize, seed: u64) -> Edges {
    let mut rng = Rng::seed_from_u64(seed ^ 0x4ee);
    let mut edges = Vec::with_capacity(n);
    let mut frontier = vec![0i64];
    let mut next_id = 1i64;
    while !frontier.is_empty() && (next_id as usize) < n {
        let leaf_p: f64 = rng.gen_range(0.2..0.6);
        let mut next = Vec::new();
        for &p in &frontier {
            if (next_id as usize) >= n {
                break;
            }
            let kids = rng.gen_range(5..=10);
            for _ in 0..kids {
                if (next_id as usize) >= n {
                    break;
                }
                edges.push((p, next_id));
                if !rng.gen_bool(leaf_p) {
                    next.push(next_id);
                }
                next_id += 1;
            }
        }
        // Guard: if every child became a leaf but we still need vertices,
        // keep one interior node so growth continues.
        if next.is_empty() && (next_id as usize) < n {
            if let Some(&(_, last)) = edges.last() {
                next.push(last);
            }
        }
        frontier = next;
    }
    edges
}

/// Basic-part delivery days for the leaves of an `assbl` tree: every leaf
/// part gets a deterministic pseudo-random 1..=max_days value.
pub fn leaf_days(assbl: &[(i64, i64)], max_days: i64, seed: u64) -> Vec<(i64, i64)> {
    use std::collections::HashSet;
    let parents: HashSet<i64> = assbl.iter().map(|&(p, _)| p).collect();
    let mut rng = Rng::seed_from_u64(seed ^ 0xdaee);
    let mut out = Vec::new();
    for &(_, c) in assbl {
        if !parents.contains(&c) {
            out.push((c, rng.gen_range(1..=max_days)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn is_tree(edges: &[(i64, i64)]) -> bool {
        // Every child has exactly one parent; root 0 has none.
        let mut child_seen = HashSet::new();
        for &(_, c) in edges {
            if c == 0 || !child_seen.insert(c) {
                return false;
            }
        }
        true
    }

    #[test]
    fn tree_is_a_tree_with_right_height() {
        let t = tree(5, 9);
        assert!(is_tree(&t));
        // Depth of deepest vertex is 5.
        let mut depth = std::collections::HashMap::new();
        depth.insert(0i64, 0usize);
        for &(p, c) in &t {
            let d = depth[&p] + 1;
            depth.insert(c, d);
        }
        assert_eq!(*depth.values().max().unwrap(), 5);
    }

    #[test]
    fn tree_fanout_in_range() {
        let t = tree(4, 3);
        let mut fanout = std::collections::HashMap::new();
        for &(p, _) in &t {
            *fanout.entry(p).or_insert(0usize) += 1;
        }
        assert!(fanout.values().all(|&f| (2..=6).contains(&f)));
    }

    #[test]
    fn n_tree_hits_target_size() {
        let t = n_tree(5_000, 4);
        assert!(is_tree(&t));
        let n = crate::vertex_count(&t);
        assert!((4_500..=5_001).contains(&n), "got {n}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(tree(6, 1), tree(6, 1));
        assert_eq!(n_tree(1000, 2), n_tree(1000, 2));
    }

    #[test]
    fn leaf_days_covers_exactly_the_leaves() {
        let t = n_tree(500, 5);
        let days = leaf_days(&t, 30, 5);
        let parents: HashSet<i64> = t.iter().map(|&(p, _)| p).collect();
        let children: HashSet<i64> = t.iter().map(|&(_, c)| c).collect();
        let leaves: HashSet<i64> = children.difference(&parents).copied().collect();
        let covered: HashSet<i64> = days.iter().map(|&(p, _)| p).collect();
        assert_eq!(covered, leaves);
        assert!(days.iter().all(|&(_, d)| (1..=30).contains(&d)));
    }
}
