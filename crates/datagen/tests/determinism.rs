//! Seed determinism for every generator family.
//!
//! The datagen crate sits on `dcd_common::rng` (first-party
//! xoshiro256++), and the whole repro story depends on its output being
//! a pure function of the seed: datasets are regenerated per run, never
//! shipped, so a drifting generator silently changes every experiment.
//!
//! Two layers of protection:
//!
//! 1. *Self-consistency* — generating twice from the same seed yields
//!    identical edge lists (and different seeds yield different ones).
//! 2. *Pinned checksums* — an FNV-1a digest of each family's output for
//!    a fixed seed is hardcoded here. These fail if the RNG stream, the
//!    sampling algorithms, or the generator call order ever change —
//!    that may be intentional, but it must be a conscious decision
//!    (update the constants and note it in the PR).

use dcd_datagen as gen;

const SEED: u64 = 0xDC_DA7A;

/// FNV-1a over the little-endian bytes of each endpoint pair.
fn fnv1a(edges: &[(i64, i64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: i64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(a, b) in edges {
        mix(a);
        mix(b);
    }
    h
}

fn fnv1a_weighted(edges: &[(i64, i64, i64)]) -> u64 {
    let flat: Vec<(i64, i64)> = edges
        .iter()
        .flat_map(|&(a, b, w)| [(a, b), (w, 0)])
        .collect();
    fnv1a(&flat)
}

/// Each generator family, invoked twice with the same seed, must agree
/// bit-for-bit — and disagree once the seed changes.
#[test]
fn same_seed_same_tuples_different_seed_different_tuples() {
    type Family = (&'static str, Box<dyn Fn(u64) -> Vec<(i64, i64)>>);
    let families: Vec<Family> = vec![
        ("gnp", Box::new(|s| gen::gnp(500, 0.02, s))),
        ("rmat", Box::new(|s| gen::rmat(512, s))),
        ("tree", Box::new(|s| gen::tree(6, s))),
        ("n_tree", Box::new(|s| gen::n_tree(2_000, s))),
        (
            "livejournal",
            Box::new(|s| gen::livejournal_like(100_000, s)),
        ),
        ("orkut", Box::new(|s| gen::orkut_like(100_000, s))),
        ("arabic", Box::new(|s| gen::arabic_like(100_000, s))),
        ("twitter", Box::new(|s| gen::twitter_like(100_000, s))),
    ];
    for (name, f) in &families {
        let a = f(SEED);
        let b = f(SEED);
        assert_eq!(a, b, "{name}: same seed must reproduce identical edges");
        assert!(!a.is_empty(), "{name}: generator produced nothing");
        let c = f(SEED ^ 1);
        assert_ne!(a, c, "{name}: different seed should perturb the output");
    }
}

/// Weighted edges and leaf-day attributes are deterministic too (they
/// draw from their own seeded streams on top of the base edges).
#[test]
fn derived_attributes_are_seed_deterministic() {
    let base = gen::rmat(256, SEED);
    assert_eq!(
        gen::weighted(&base, 100, SEED),
        gen::weighted(&base, 100, SEED)
    );
    assert_ne!(
        gen::weighted(&base, 100, SEED),
        gen::weighted(&base, 100, SEED ^ 1)
    );

    let assbl = gen::n_tree(1_000, SEED);
    assert_eq!(
        gen::trees::leaf_days(&assbl, 30, SEED),
        gen::trees::leaf_days(&assbl, 30, SEED)
    );
}

/// Pinned FNV-1a digests of every family for `SEED`. A failure here
/// means the generated datasets changed relative to what previous runs
/// (and the committed BENCH_baseline.json) were measured on.
#[test]
fn generator_checksums_are_pinned() {
    let checks: Vec<(&str, u64, u64)> = vec![
        ("gnp-500", fnv1a(&gen::gnp(500, 0.02, SEED)), CK_GNP_500),
        ("rmat-512", fnv1a(&gen::rmat(512, SEED)), CK_RMAT_512),
        ("tree-6", fnv1a(&gen::tree(6, SEED)), CK_TREE_6),
        (
            "n_tree-2000",
            fnv1a(&gen::n_tree(2_000, SEED)),
            CK_NTREE_2000,
        ),
        (
            "livejournal-100k",
            fnv1a(&gen::livejournal_like(100_000, SEED)),
            CK_LJ_100K,
        ),
        (
            "orkut-100k",
            fnv1a(&gen::orkut_like(100_000, SEED)),
            CK_ORKUT_100K,
        ),
        (
            "arabic-100k",
            fnv1a(&gen::arabic_like(100_000, SEED)),
            CK_ARABIC_100K,
        ),
        (
            "twitter-100k",
            fnv1a(&gen::twitter_like(100_000, SEED)),
            CK_TWITTER_100K,
        ),
        (
            "weighted-rmat-256",
            fnv1a_weighted(&gen::weighted(&gen::rmat(256, SEED), 100, SEED)),
            CK_WEIGHTED_RMAT_256,
        ),
    ];
    let drifted: Vec<String> = checks
        .iter()
        .filter(|&&(_, got, want)| got != want)
        .map(|&(name, got, _)| format!("  {name}: {got:#018x}"))
        .collect();
    assert!(
        drifted.is_empty(),
        "dataset checksums drifted; current values:\n{}",
        drifted.join("\n")
    );
}

// Recorded from the first run of the first-party RNG port; see module
// docs for when (and how) to update.
const CK_GNP_500: u64 = 0x282d_6419_3e2c_980c;
const CK_RMAT_512: u64 = 0x672a_0423_01f8_d12e;
const CK_TREE_6: u64 = 0x45a4_0f50_5438_7d0f;
const CK_NTREE_2000: u64 = 0xe8bb_3734_36d6_7cbc;
const CK_LJ_100K: u64 = 0x5bcb_c5a3_9955_ab18;
const CK_ORKUT_100K: u64 = 0x616d_a6d9_4c5b_ab9f;
const CK_ARABIC_100K: u64 = 0xcb4b_d31e_6092_059f;
const CK_TWITTER_100K: u64 = 0x7791_560b_7a9d_94b1;
const CK_WEIGHTED_RMAT_256: u64 = 0xea32_e186_0f20_b6a0;
