//! Property tests for the frontend: pretty-print → re-parse round-trips,
//! and planner totality over generated well-formed programs.

use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcd_frontend::analysis::analyze;
use dcd_frontend::ast::*;
use dcd_frontend::parser::parse_program;
use dcd_frontend::physical::{plan, PlannerConfig};

fn var_name() -> impl Strategy<Value = String> {
    (0u8..6).prop_map(|i| format!("V{i}"))
}

fn pred_name() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("p{i}"))
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => var_name().prop_map(Term::Var),
        1 => (-50i64..50).prop_map(|v| Term::Const(dcd_common::Value::Int(v))),
        1 => Just(Term::Wildcard),
    ]
}

fn atom(max_arity: usize) -> impl Strategy<Value = Atom> {
    (
        pred_name(),
        proptest::collection::vec(term(), 1..=max_arity),
    )
        .prop_map(|(pred, terms)| Atom { pred, terms })
}

/// A safe rule: the head repeats variables drawn from the body atoms.
fn rule() -> impl Strategy<Value = Rule> {
    (
        proptest::collection::vec(atom(3), 1..4),
        pred_name(),
        1usize..3,
    )
        .prop_map(|(body, head_pred, head_arity)| {
            // Collect body variables; fall back to a constant if none.
            let mut vars: Vec<String> = body
                .iter()
                .flat_map(|a| a.terms.iter())
                .filter_map(|t| match t {
                    Term::Var(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            vars.sort();
            vars.dedup();
            let head_terms: Vec<HeadTerm> = (0..head_arity)
                .map(|i| {
                    if vars.is_empty() {
                        HeadTerm::Plain(Term::Const(dcd_common::Value::Int(i as i64)))
                    } else {
                        HeadTerm::Plain(Term::Var(vars[i % vars.len()].clone()))
                    }
                })
                .collect();
            Rule {
                head: Head {
                    pred: head_pred,
                    terms: head_terms,
                },
                body: body.into_iter().map(BodyLit::Atom).collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(rules in proptest::collection::vec(rule(), 1..6)) {
        let ast = ProgramAst { rules };
        let text = ast.to_string();
        let reparsed = parse_program(&text).unwrap();
        prop_assert_eq!(reparsed, ast);
    }

    #[test]
    fn analyzer_and_planner_never_panic_on_wellformed_programs(
        rules in proptest::collection::vec(rule(), 1..6),
    ) {
        let ast = ProgramAst { rules };
        let text = ast.to_string();
        // Arity conflicts between generated rules are legal analyzer
        // *errors*; the property is totality (no panic), and that every
        // analyzable program also plans.
        if let Ok(parsed) = parse_program(&text) {
            if let Ok(analyzed) = analyze(parsed) {
                let planned = plan(&analyzed, &PlannerConfig::default());
                prop_assert!(planned.is_ok(), "plan failed: {:?}", planned.err());
            }
        }
    }
}
