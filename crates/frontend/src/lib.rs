#![warn(missing_docs)]
//! Query Processor for DCDatalog (paper §3 and §5).
//!
//! The frontend turns Datalog source text into an executable parallel plan
//! in four stages:
//!
//! 1. [`lexer`] / [`parser`] — source → [`ast::ProgramAst`].
//! 2. [`analysis`] — catalog, Predicate Connection Graph, Tarjan SCCs,
//!    recursion classification (simple / non-linear / mutual),
//!    stratification and safety checks.
//! 3. [`logical`] — per-rule relational operator DAGs with the paper's
//!    rewrites: selection pushdown and recursive-table-first join
//!    reordering (§5.1).
//! 4. [`physical`] — the parallel physical plan: join-method selection
//!    (hash / index / nested-loop), register-compiled rules, Distribute
//!    routing columns and Gather storage specs (§5.2), including
//!    two-partition replication for non-linear recursion (§4.3).

pub mod analysis;
pub mod ast;
pub mod lexer;
pub mod logical;
pub mod parser;
pub mod physical;

pub use analysis::{analyze, AnalyzedProgram, Catalog, PredInfo};
pub use ast::{AggFunc, ProgramAst};
pub use parser::parse_program;
pub use physical::{plan, PhysicalPlan};
