//! Tokenizer for the Datalog surface syntax.

use dcd_common::{DcdError, Result, Value};

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Lower-case identifier (predicate or parameter).
    LowerIdent(String),
    /// Upper-case identifier (variable).
    UpperIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `<-` or `:-`
    Arrow,
    /// `_`
    Underscore,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Tokenizes `src`, handling `%` and `//` line comments.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |m: &str, line: usize, col: usize| DcdError::Parse {
        message: m.to_string(),
        line,
        col,
    };
    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
            })
        };
    }
    while i < bytes.len() {
        let (l, c) = (line, col);
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b'%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                push!(TokenKind::LParen, l, c);
                i += 1;
                col += 1;
            }
            b')' => {
                push!(TokenKind::RParen, l, c);
                i += 1;
                col += 1;
            }
            b',' => {
                push!(TokenKind::Comma, l, c);
                i += 1;
                col += 1;
            }
            b'_' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_alphanumeric() => {
                push!(TokenKind::Underscore, l, c);
                i += 1;
                col += 1;
            }
            b'+' => {
                push!(TokenKind::Plus, l, c);
                i += 1;
                col += 1;
            }
            b'*' => {
                push!(TokenKind::Star, l, c);
                i += 1;
                col += 1;
            }
            b'/' => {
                push!(TokenKind::Slash, l, c);
                i += 1;
                col += 1;
            }
            b'=' => {
                push!(TokenKind::Eq, l, c);
                i += 1;
                col += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::Ne, l, c);
                    i += 2;
                    col += 2;
                } else {
                    return Err(err("expected '=' after '!'", l, c));
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    push!(TokenKind::Arrow, l, c);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::Le, l, c);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, l, c);
                    i += 1;
                    col += 1;
                }
            }
            b':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    push!(TokenKind::Arrow, l, c);
                    i += 2;
                    col += 2;
                } else {
                    return Err(err("expected '-' after ':'", l, c));
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::Ge, l, c);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, l, c);
                    i += 1;
                    col += 1;
                }
            }
            b'-' => {
                push!(TokenKind::Minus, l, c);
                i += 1;
                col += 1;
            }
            b'.' => {
                // Disambiguate rule terminator from a float like `.5`
                // (we require a leading digit, so `.` is always Dot).
                push!(TokenKind::Dot, l, c);
                i += 1;
                col += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                col += i - start;
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(&format!("bad float literal '{text}'"), l, c))?;
                    push!(TokenKind::Float(v), l, c);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(&format!("integer literal '{text}' overflows"), l, c))?;
                    push!(TokenKind::Int(v), l, c);
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                col += i - start;
                if text.as_bytes()[0].is_ascii_uppercase() {
                    push!(TokenKind::UpperIdent(text.to_string()), l, c);
                } else {
                    push!(TokenKind::LowerIdent(text.to_string()), l, c);
                }
            }
            other => {
                return Err(err(
                    &format!("unexpected character '{}'", other as char),
                    l,
                    c,
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

/// Parses a literal token payload into a [`Value`] (used by the parser).
pub fn literal_value(kind: &TokenKind) -> Option<Value> {
    match kind {
        TokenKind::Int(v) => Some(Value::Int(*v)),
        TokenKind::Float(v) => Some(Value::Float(*v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_rule() {
        let ks = kinds("tc(X, Y) <- arc(X, Y).");
        assert_eq!(
            ks,
            vec![
                TokenKind::LowerIdent("tc".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::LowerIdent("arc".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_disambiguate() {
        assert_eq!(
            kinds("< <= <- > >= = != + - * /"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Arrow,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn prolog_style_arrow() {
        assert_eq!(kinds(":-"), vec![TokenKind::Arrow, TokenKind::Eof]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0.5 3.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(0.5),
                TokenKind::Float(3.25),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("p(X). % a comment\nq(Y). // another\n");
        assert_eq!(ks.len(), 11); // two atoms of 5 tokens + Eof
    }

    #[test]
    fn wildcard_vs_identifier_with_underscore() {
        assert_eq!(
            kinds("_ x_y X_1"),
            vec![
                TokenKind::Underscore,
                TokenKind::LowerIdent("x_y".into()),
                TokenKind::UpperIdent("X_1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("p(X).\n q(Y).").unwrap();
        let q = toks
            .iter()
            .find(|t| t.kind == TokenKind::LowerIdent("q".into()))
            .unwrap();
        assert_eq!((q.line, q.col), (2, 2));
    }

    #[test]
    fn bad_character_errors() {
        let e = tokenize("p(X) & q(Y)").unwrap_err();
        assert!(e.to_string().contains("unexpected character '&'"));
    }

    #[test]
    fn bang_without_eq_errors() {
        assert!(tokenize("!p(X)").is_err());
    }
}
