//! Physical planning (§5.2, §4.3).
//!
//! Compiles the logical plan into register machines that the engine's
//! workers interpret directly:
//!
//! * Each rule variant becomes a [`CompiledRule`]: bind the delta tuple
//!   into registers, then run a chain of [`Step`]s, each probing a base or
//!   recursive relation (index join / hash join) or scanning it (nested
//!   loop), with constraints and `=` assignments evaluated at their
//!   earliest level.
//! * The planner derives the **Distribute** routing spec: every recursive
//!   relation's `partition_cols` (two columns — replication — for
//!   non-linear rules like APSP, §4.3), and every EDB's placement
//!   (co-partitioned on its probe column, or replicated when a rule probes
//!   it on a non-aligned key, as Same-Generation requires).
//! * The **Gather** spec is the storage kind of each relation: set
//!   semantics, or aggregate semantics with group columns (§6.2.1).

use crate::analysis::AnalyzedProgram;
use crate::ast::{AggFunc, ArithOp, Atom, BodyLit, CmpOp, Expr, HeadTerm, Rule, Term};
use crate::logical::{logical_plan, RuleVariant};
use dcd_common::hash::FastMap;
use dcd_common::{DcdError, PredicateId, Result, Value};
use std::collections::BTreeSet;

/// Relation id — same space as [`PredicateId`].
pub type RelId = PredicateId;

/// Planner configuration.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Values for the program's named parameters (`start`, `alpha`, …).
    pub params: FastMap<String, Value>,
    /// ε for `sum` aggregate delta emission (PageRank convergence).
    pub sum_epsilon: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            params: FastMap::default(),
            sum_epsilon: 1e-9,
        }
    }
}

/// A compiled arithmetic expression over registers.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Register reference.
    Reg(u16),
    /// Constant.
    Const(Value),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        l: Box<CExpr>,
        /// Right operand.
        r: Box<CExpr>,
    },
}

impl CExpr {
    /// Evaluates against a register file.
    #[inline]
    pub fn eval(&self, regs: &[Value]) -> Value {
        match self {
            CExpr::Reg(r) => regs[*r as usize],
            CExpr::Const(v) => *v,
            CExpr::Bin { op, l, r } => {
                let a = l.eval(regs);
                let b = r.eval(regs);
                match op {
                    ArithOp::Add => a.add(b),
                    ArithOp::Sub => a.sub(b),
                    ArithOp::Mul => a.mul(b),
                    ArithOp::Div => a.div(b),
                }
            }
        }
    }

    fn as_reg(&self) -> Option<u16> {
        match self {
            CExpr::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

/// A compiled comparison filter.
#[derive(Clone, Debug, PartialEq)]
pub struct CCond {
    /// Operator.
    pub op: CmpOp,
    /// Left side.
    pub l: CExpr,
    /// Right side.
    pub r: CExpr,
}

impl CCond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(&self, regs: &[Value]) -> bool {
        let a = self.l.eval(regs);
        let b = self.r.eval(regs);
        match self.op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A compiled `V = expr` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct CAssign {
    /// Destination register.
    pub reg: u16,
    /// Source expression.
    pub expr: CExpr,
}

/// Per-column action when matching a relation row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BindAction {
    /// Copy the column into a register (first occurrence of a variable).
    Bind(u16),
    /// The column must equal an already-bound register (repeated variable).
    Check(u16),
    /// The column must equal a constant.
    CheckConst(Value),
    /// Wildcard: ignore.
    Skip,
}

/// What a step reads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Target {
    /// A base (EDB) relation.
    Edb(RelId),
    /// A recursive/derived relation, probed or scanned through the
    /// secondary index on `index_col` (ignored for scans).
    Idb {
        /// The relation.
        rel: RelId,
        /// Index column used by probes.
        index_col: usize,
    },
}

impl Target {
    /// The relation id.
    pub fn rel(&self) -> RelId {
        match self {
            Target::Edb(r) => *r,
            Target::Idb { rel, .. } => *rel,
        }
    }
}

/// Access path of a step.
#[derive(Clone, Debug, PartialEq)]
pub enum Probe {
    /// Index probe: `row[col] == key`.
    Index {
        /// Probed column.
        col: usize,
        /// Key expression (evaluated against the registers).
        key: CExpr,
    },
    /// Full scan (nested loop).
    Scan,
}

/// Join method label for EXPLAIN output (the paper's §5.2.1 heuristic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// Probe of a base relation's hash index.
    Hash,
    /// Probe of a recursive relation's B+-tree index.
    Index,
    /// Fallback scan.
    NestedLoop,
}

/// One join step.
#[derive(Clone, Debug)]
pub struct Step {
    /// Relation accessed.
    pub target: Target,
    /// Access path.
    pub probe: Probe,
    /// Per-column actions (length = arity of the target).
    pub binds: Vec<BindAction>,
    /// Filters evaluable after this step.
    pub filters: Vec<CCond>,
    /// Assignments evaluable after this step (before the filters that
    /// mention them — assignments run first).
    pub assigns: Vec<CAssign>,
    /// Join method (explain only).
    pub join_kind: JoinKind,
}

/// Delta binding of a recursive rule variant.
#[derive(Clone, Debug)]
pub struct DeltaSpec {
    /// The recursive relation consumed as delta.
    pub rel: RelId,
    /// Which route (index into the relation's `partition_cols`) this
    /// variant consumes — workers only run the variant for tuples that
    /// were routed to them via this column (§4.3).
    pub route: usize,
    /// Per-column actions for the delta tuple.
    pub binds: Vec<BindAction>,
}

/// A fully compiled rule variant.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Head relation.
    pub head_rel: RelId,
    /// Delta spec (`None` for initialization rules).
    pub delta: Option<DeltaSpec>,
    /// Assignments evaluable right after the delta bind (or at entry for
    /// initialization rules with no steps).
    pub pre_assigns: Vec<CAssign>,
    /// Filters evaluable right after the delta bind.
    pub pre_filters: Vec<CCond>,
    /// Join chain.
    pub steps: Vec<Step>,
    /// Head row in merge layout: full row for set relations;
    /// `(group…, value)` for min/max; `(group…, contributor)` for count;
    /// `(group…, contributor, value)` for sum.
    pub head_exprs: Vec<CExpr>,
    /// Register file size.
    pub nregs: usize,
    /// Source rule index (diagnostics).
    pub rule_idx: usize,
}

/// Storage semantics of a derived relation (the Gather spec).
#[derive(Clone, Debug, PartialEq)]
pub enum StorageKind {
    /// Set semantics with exact dedup.
    Set,
    /// Aggregate semantics (§6.2.1).
    Agg {
        /// The function.
        func: AggFunc,
        /// Leading group-by columns of the logical row.
        group_cols: usize,
        /// `sum` emission threshold.
        epsilon: f64,
    },
}

/// A derived (IDB) relation declaration.
#[derive(Clone, Debug)]
pub struct RelDecl {
    /// Relation id.
    pub id: RelId,
    /// Name (diagnostics).
    pub name: String,
    /// Logical arity.
    pub arity: usize,
    /// Storage semantics.
    pub kind: StorageKind,
    /// Routing columns: a derived tuple is sent to `H(row[c])` for every
    /// `c` here (two entries ⇒ the non-linear replication of §4.3).
    pub partition_cols: Vec<usize>,
    /// Broadcast fallback: route every tuple to all workers (used when a
    /// probe key cannot be aligned with any partition column).
    pub broadcast: bool,
    /// Columns needing secondary probe indexes.
    pub index_cols: Vec<usize>,
}

/// EDB placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Split by `H(row[col])`; co-partitioned probes stay local.
    Partitioned(usize),
    /// Full copy on every worker (required by multi-key probes, e.g. SG).
    Replicated,
}

/// A base (EDB) relation declaration.
#[derive(Clone, Debug)]
pub struct EdbDecl {
    /// Relation id.
    pub id: RelId,
    /// Name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// Placement.
    pub placement: Placement,
    /// Columns needing hash indexes.
    pub index_cols: Vec<usize>,
}

/// One stratum of the physical plan.
#[derive(Clone, Debug)]
pub struct PhysStratum {
    /// Whether fixpoint iteration is needed.
    pub recursive: bool,
    /// Relations defined in this stratum.
    pub rels: Vec<RelId>,
    /// Rules run once to initialize (Algorithm 1 line 8).
    pub init_rules: Vec<CompiledRule>,
    /// Delta rule variants run each iteration.
    pub delta_rules: Vec<CompiledRule>,
}

/// Resolved relation declarations: `(EDB placements, IDB routings)`.
pub type Declarations = (Vec<Option<EdbDecl>>, Vec<Option<RelDecl>>);

/// The complete physical plan.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// `edb[p]` is `Some` iff predicate `p` is extensional.
    pub edb: Vec<Option<EdbDecl>>,
    /// `idb[p]` is `Some` iff predicate `p` is derived.
    pub idb: Vec<Option<RelDecl>>,
    /// Strata in evaluation order.
    pub strata: Vec<PhysStratum>,
    /// Inline facts `(pred, tuple)` from the program text.
    pub facts: Vec<(RelId, dcd_common::Tuple)>,
    /// Predicate names (diagnostics / result lookup).
    pub names: Vec<String>,
}

impl PhysicalPlan {
    /// Resolves a predicate name.
    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.names.iter().position(|n| n == name)
    }

    /// Human-readable plan description (EXPLAIN).
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, e) in self.edb.iter().enumerate() {
            if let Some(e) = e {
                let _ = writeln!(
                    out,
                    "edb {} ({}): {:?} indexes={:?}",
                    e.name, i, e.placement, e.index_cols
                );
            }
        }
        for r in self.idb.iter().flatten() {
            let _ = writeln!(
                out,
                "idb {} ({}): {:?} routes={:?}{} indexes={:?}",
                r.name,
                r.id,
                r.kind,
                r.partition_cols,
                if r.broadcast { " broadcast" } else { "" },
                r.index_cols
            );
        }
        for (si, s) in self.strata.iter().enumerate() {
            let _ = writeln!(
                out,
                "stratum {si} ({}):",
                if s.recursive { "recursive" } else { "once" }
            );
            for (label, rules) in [("init", &s.init_rules), ("delta", &s.delta_rules)] {
                for r in rules {
                    let _ = write!(out, "  [{label}] {} <-", self.names[r.head_rel]);
                    if let Some(d) = &r.delta {
                        let _ = write!(out, " δ{}[route {}]", self.names[d.rel], d.route);
                    }
                    for st in &r.steps {
                        let kind = match st.join_kind {
                            JoinKind::Hash => "hash",
                            JoinKind::Index => "index",
                            JoinKind::NestedLoop => "loop",
                        };
                        let _ = write!(out, " ⋈{kind} {}", self.names[st.target.rel()]);
                    }
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

/// Compiles an analyzed program into a physical plan.
pub fn plan(prog: &AnalyzedProgram, cfg: &PlannerConfig) -> Result<PhysicalPlan> {
    // Check all referenced parameters are supplied.
    for p in &prog.params {
        if !cfg.params.contains_key(p) {
            return Err(DcdError::Planning(format!(
                "program references parameter '{p}' — supply it via with_param()"
            )));
        }
    }
    let lp = logical_plan(prog)?;
    let npreds = prog.catalog.len();
    let mut compiler = PlanCompiler {
        prog,
        cfg,
        edb_probes: vec![BTreeSet::new(); npreds],
        edb_needs_full: vec![false; npreds],
        idb_probe_cols: vec![BTreeSet::new(); npreds],
        idb_needs_broadcast: vec![false; npreds],
        route_requirements: vec![BTreeSet::new(); npreds],
    };

    // First pass: compile every variant, collecting probe/route facts.
    let mut strata = Vec::new();
    for (ls, s) in lp.strata.iter().zip(&prog.strata) {
        let mut init_rules = Vec::new();
        let mut delta_rules = Vec::new();
        for lr in &ls.init_rules {
            for v in &lr.variants {
                init_rules.push(compiler.compile_variant(
                    &prog.ast.rules[lr.rule_idx],
                    lr.rule_idx,
                    lr.head,
                    v,
                )?);
            }
        }
        for lr in &ls.delta_rules {
            for v in &lr.variants {
                delta_rules.push(compiler.compile_variant(
                    &prog.ast.rules[lr.rule_idx],
                    lr.rule_idx,
                    lr.head,
                    v,
                )?);
            }
        }
        strata.push(PhysStratum {
            recursive: s.recursive,
            rels: s.preds.clone(),
            init_rules,
            delta_rules,
        });
    }

    // Second pass: placement + routing resolution.
    let (edb, idb) = compiler.resolve_declarations(&mut strata)?;

    Ok(PhysicalPlan {
        edb,
        idb,
        strata,
        facts: prog.facts.clone(),
        names: prog.catalog.iter().map(|(_, p)| p.name.clone()).collect(),
    })
}

struct PlanCompiler<'a> {
    prog: &'a AnalyzedProgram,
    cfg: &'a PlannerConfig,
    /// Index-probe columns per EDB.
    edb_probes: Vec<BTreeSet<usize>>,
    /// EDBs that are nested-loop scanned at a non-leading position (must
    /// hold the full table on every worker).
    edb_needs_full: Vec<bool>,
    /// Secondary-index columns per IDB.
    idb_probe_cols: Vec<BTreeSet<usize>>,
    /// IDBs requiring broadcast routing.
    idb_needs_broadcast: Vec<bool>,
    /// Required routing columns per IDB (from delta variants + probes).
    route_requirements: Vec<BTreeSet<usize>>,
}

impl PlanCompiler<'_> {
    fn is_edb(&self, id: PredicateId) -> bool {
        self.prog.catalog.info(id).is_edb
    }

    fn compile_variant(
        &mut self,
        rule: &Rule,
        rule_idx: usize,
        head_rel: RelId,
        v: &RuleVariant,
    ) -> Result<CompiledRule> {
        let atoms: Vec<&Atom> = rule.body_atoms().collect();
        let mut regs: FastMap<String, u16> = FastMap::default();
        let mut nregs: u16 = 0;
        let alloc = |name: &str, regs: &mut FastMap<String, u16>, nregs: &mut u16| -> u16 {
            if let Some(&r) = regs.get(name) {
                return r;
            }
            let r = *nregs;
            *nregs += 1;
            regs.insert(name.to_string(), r);
            r
        };

        // Delta binding.
        let mut delta_reg_cols: FastMap<u16, usize> = FastMap::default();
        let delta = match v.delta_atom {
            Some(d) => {
                let atom = atoms[d];
                let mut binds = Vec::with_capacity(atom.terms.len());
                for (col, t) in atom.terms.iter().enumerate() {
                    binds.push(match t {
                        Term::Var(name) => {
                            if let Some(&r) = regs.get(name) {
                                BindAction::Check(r)
                            } else {
                                let r = alloc(name, &mut regs, &mut nregs);
                                delta_reg_cols.insert(r, col);
                                BindAction::Bind(r)
                            }
                        }
                        Term::Const(c) => BindAction::CheckConst(*c),
                        Term::Param(p) => BindAction::CheckConst(self.param(p)?),
                        Term::Wildcard => BindAction::Skip,
                    });
                }
                Some((d, binds))
            }
            None => None,
        };

        // Constraint compilation helper: splits a literal list into
        // assignments + filters given currently bound registers.
        let compile_constraints = |this: &Self,
                                   lits: &[usize],
                                   regs: &mut FastMap<String, u16>,
                                   nregs: &mut u16|
         -> Result<(Vec<CAssign>, Vec<CCond>)> {
            let mut assigns = Vec::new();
            let mut filters = Vec::new();
            for &ci in lits {
                let BodyLit::Compare { op, lhs, rhs } = &rule.body[ci] else {
                    continue;
                };
                if *op == CmpOp::Eq {
                    // Binding form? Exactly when one side is an unbound var.
                    let l_unbound =
                        matches!(lhs, Expr::Term(Term::Var(x)) if !regs.contains_key(x));
                    let r_unbound =
                        matches!(rhs, Expr::Term(Term::Var(x)) if !regs.contains_key(x));
                    if l_unbound || r_unbound {
                        let (var_side, expr_side) = if l_unbound { (lhs, rhs) } else { (rhs, lhs) };
                        let Expr::Term(Term::Var(name)) = var_side else {
                            unreachable!()
                        };
                        let expr = this.compile_expr(expr_side, regs)?;
                        let r = if let Some(&r) = regs.get(name) {
                            r
                        } else {
                            let r = *nregs;
                            *nregs += 1;
                            regs.insert(name.clone(), r);
                            r
                        };
                        assigns.push(CAssign { reg: r, expr });
                        continue;
                    }
                }
                filters.push(CCond {
                    op: *op,
                    l: this.compile_expr(lhs, regs)?,
                    r: this.compile_expr(rhs, regs)?,
                });
            }
            Ok((assigns, filters))
        };

        // Pre-step constraints (level 0 for delta variants or constraint-only
        // rules).
        let (mut pre_assigns, mut pre_filters) = (Vec::new(), Vec::new());
        let level0_is_pre = delta.is_some() || v.atom_order.is_empty();
        if level0_is_pre && !v.constraints_at.is_empty() {
            let (a, f) = compile_constraints(self, &v.constraints_at[0], &mut regs, &mut nregs)?;
            pre_assigns = a;
            pre_filters = f;
        }

        // Join steps.
        let mut steps = Vec::new();
        let step_atoms: &[usize] = if delta.is_some() {
            &v.atom_order[1..]
        } else {
            &v.atom_order[..]
        };
        for (k, &ai) in step_atoms.iter().enumerate() {
            let atom = atoms[ai];
            let rel = self.prog.catalog.id(&atom.pred).expect("catalog complete");
            // Probe column: first column whose term is already bound.
            let mut probe: Option<(usize, CExpr)> = None;
            for (col, t) in atom.terms.iter().enumerate() {
                let key = match t {
                    Term::Var(name) => regs.get(name).map(|&r| CExpr::Reg(r)),
                    Term::Const(c) => Some(CExpr::Const(*c)),
                    Term::Param(p) => Some(CExpr::Const(self.param(p)?)),
                    Term::Wildcard => None,
                };
                if let Some(key) = key {
                    probe = Some((col, key));
                    break;
                }
            }
            // Binds (probe column still checked: key-bit equality on the
            // index is necessary but we re-verify exact value equality).
            let mut binds = Vec::with_capacity(atom.terms.len());
            for t in &atom.terms {
                binds.push(match t {
                    Term::Var(name) => {
                        if let Some(&r) = regs.get(name) {
                            BindAction::Check(r)
                        } else {
                            BindAction::Bind(alloc(name, &mut regs, &mut nregs))
                        }
                    }
                    Term::Const(c) => BindAction::CheckConst(*c),
                    Term::Param(p) => BindAction::CheckConst(self.param(p)?),
                    Term::Wildcard => BindAction::Skip,
                });
            }
            // Record probe/scan facts for placement resolution.
            let (probe_enum, join_kind, target) = match probe {
                Some((col, key)) => {
                    if self.is_edb(rel) {
                        self.edb_probes[rel].insert(col);
                        (Probe::Index { col, key }, JoinKind::Hash, Target::Edb(rel))
                    } else {
                        self.idb_probe_cols[rel].insert(col);
                        self.route_requirements[rel].insert(col);
                        (
                            Probe::Index { col, key },
                            JoinKind::Index,
                            Target::Idb {
                                rel,
                                index_col: col,
                            },
                        )
                    }
                }
                None => {
                    let leading = k == 0 && delta.is_none();
                    if self.is_edb(rel) {
                        if !leading {
                            self.edb_needs_full[rel] = true;
                        }
                        (Probe::Scan, JoinKind::NestedLoop, Target::Edb(rel))
                    } else {
                        if !leading {
                            self.idb_needs_broadcast[rel] = true;
                        }
                        (
                            Probe::Scan,
                            JoinKind::NestedLoop,
                            Target::Idb { rel, index_col: 0 },
                        )
                    }
                }
            };
            // Constraints at this level.
            let level = if delta.is_some() { k + 1 } else { k };
            let (assigns, filters) = if level < v.constraints_at.len() {
                compile_constraints(self, &v.constraints_at[level], &mut regs, &mut nregs)?
            } else {
                (Vec::new(), Vec::new())
            };
            steps.push(Step {
                target,
                probe: probe_enum,
                binds,
                filters,
                assigns,
                join_kind,
            });
        }

        // Head expressions (merge layout).
        let head_exprs = self.compile_head(rule, &regs)?;

        // Delta route requirement: the first index-probe whose key register
        // was bound from a delta column pins the route to that column.
        let delta_spec = if let Some((d, binds)) = delta {
            let atom = atoms[d];
            let rel = self.prog.catalog.id(&atom.pred).expect("catalog");
            let mut route_col: Option<usize> = None;
            for st in &steps {
                if let Probe::Index { key, .. } = &st.probe {
                    if let Some(r) = key.as_reg() {
                        if let Some(&col) = delta_reg_cols.get(&r) {
                            route_col = Some(col);
                            break;
                        }
                    }
                }
            }
            if let Some(c) = route_col {
                self.route_requirements[rel].insert(c);
            }
            Some((rel, route_col, binds))
        } else {
            None
        };

        Ok(CompiledRule {
            head_rel,
            delta: delta_spec.map(|(rel, route_col, binds)| DeltaSpec {
                rel,
                // Resolved to a route *index* in resolve_declarations; stash
                // the column here temporarily (usize::MAX = unconstrained).
                route: route_col.unwrap_or(usize::MAX),
                binds,
            }),
            pre_assigns,
            pre_filters,
            steps,
            head_exprs,
            nregs: nregs as usize,
            rule_idx,
        })
    }

    fn param(&self, name: &str) -> Result<Value> {
        self.cfg
            .params
            .get(name)
            .copied()
            .ok_or_else(|| DcdError::Planning(format!("parameter '{name}' not supplied")))
    }

    fn compile_expr(&self, e: &Expr, regs: &FastMap<String, u16>) -> Result<CExpr> {
        Ok(match e {
            Expr::Term(Term::Var(v)) => CExpr::Reg(*regs.get(v).ok_or_else(|| {
                DcdError::Planning(format!("variable '{v}' used before it is bound"))
            })?),
            Expr::Term(Term::Const(c)) => CExpr::Const(*c),
            Expr::Term(Term::Param(p)) => CExpr::Const(self.param(p)?),
            Expr::Term(Term::Wildcard) => {
                return Err(DcdError::Planning(
                    "wildcard cannot appear in an expression".into(),
                ))
            }
            Expr::Binary { op, lhs, rhs } => CExpr::Bin {
                op: *op,
                l: Box::new(self.compile_expr(lhs, regs)?),
                r: Box::new(self.compile_expr(rhs, regs)?),
            },
        })
    }

    fn compile_head(&self, rule: &Rule, regs: &FastMap<String, u16>) -> Result<Vec<CExpr>> {
        let term_expr =
            |t: &Term| -> Result<CExpr> {
                Ok(match t {
                    Term::Var(v) => CExpr::Reg(*regs.get(v).ok_or_else(|| {
                        DcdError::Planning(format!("head variable '{v}' unbound"))
                    })?),
                    Term::Const(c) => CExpr::Const(*c),
                    Term::Param(p) => CExpr::Const(self.param(p)?),
                    Term::Wildcard => return Err(DcdError::Planning("wildcard in head".into())),
                })
            };
        let mut out = Vec::with_capacity(rule.head.terms.len() + 1);
        for t in &rule.head.terms {
            match t {
                HeadTerm::Plain(t) => out.push(term_expr(t)?),
                HeadTerm::Agg { func, args } => {
                    // Merge layout: min/max → value; count → contributor;
                    // sum → contributor, value.
                    match func {
                        AggFunc::Min | AggFunc::Max | AggFunc::Count => {
                            out.push(self.compile_expr(&args[0], regs)?);
                        }
                        AggFunc::Sum => {
                            out.push(self.compile_expr(&args[0], regs)?);
                            out.push(self.compile_expr(&args[1], regs)?);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Resolves EDB placement and IDB routing, patching route indices into
    /// the compiled delta specs.
    fn resolve_declarations(&mut self, strata: &mut [PhysStratum]) -> Result<Declarations> {
        let n = self.prog.catalog.len();

        // IDB routing columns.
        let mut idb: Vec<Option<RelDecl>> = vec![None; n];
        for (id, info) in self.prog.catalog.iter() {
            if info.is_edb {
                continue;
            }
            let kind = match &info.agg {
                Some(spec) => StorageKind::Agg {
                    func: spec.func,
                    group_cols: spec.term_idx,
                    epsilon: self.cfg.sum_epsilon,
                },
                None => StorageKind::Set,
            };
            let group_limit = match &kind {
                StorageKind::Agg { group_cols, .. } => *group_cols,
                StorageKind::Set => info.arity,
            };
            if group_limit == 0 {
                return Err(DcdError::Planning(format!(
                    "relation '{}' aggregates with no group-by column",
                    info.name
                )));
            }
            let mut cols: Vec<usize> = self.route_requirements[id]
                .iter()
                .copied()
                .filter(|&c| c < group_limit)
                .collect();
            // Route columns inside the aggregate value are impossible —
            // if a rule probes the aggregate column we must broadcast.
            let unroutable = self.route_requirements[id]
                .iter()
                .any(|&c| c >= group_limit);
            if cols.is_empty() {
                cols.push(0);
            }
            let broadcast = self.idb_needs_broadcast[id] || unroutable;
            idb[id] = Some(RelDecl {
                id,
                name: info.name.clone(),
                arity: info.arity,
                kind,
                partition_cols: cols,
                broadcast,
                index_cols: self.idb_probe_cols[id].iter().copied().collect(),
            });
        }

        // EDB placement fixpoint: start optimistic, demote on violations.
        let mut placement: Vec<Option<Placement>> = vec![None; n];
        for (id, info) in self.prog.catalog.iter() {
            if !info.is_edb {
                continue;
            }
            let probes = &self.edb_probes[id];
            let p = if self.edb_needs_full[id] || probes.len() > 1 {
                Placement::Replicated
            } else if let Some(&c) = probes.iter().next() {
                Placement::Partitioned(c)
            } else {
                Placement::Partitioned(0)
            };
            placement[id] = Some(p);
        }

        // Demotion fixpoint: a probe of a partitioned EDB is valid only when
        // its key register is "aligned" (guaranteed to hash to the local
        // worker). Alignment sources: the delta route column, or the
        // partition column of a leading partitioned scan.
        loop {
            let mut changed = false;
            for stratum in strata.iter() {
                for r in stratum.init_rules.iter().chain(&stratum.delta_rules) {
                    let aligned = self.aligned_reg(r, &placement, &idb);
                    for st in &r.steps {
                        let Probe::Index { key, .. } = &st.probe else {
                            continue;
                        };
                        let rel = st.target.rel();
                        let key_aligned = matches!(
                            (key.as_reg(), aligned),
                            (Some(kr), Some(ar)) if kr == ar
                        );
                        match st.target {
                            Target::Edb(_) => {
                                if let Some(Placement::Partitioned(_)) = placement[rel] {
                                    if !key_aligned {
                                        placement[rel] = Some(Placement::Replicated);
                                        changed = true;
                                    }
                                }
                            }
                            Target::Idb { .. } => {
                                let decl = idb[rel].as_mut().expect("idb decl");
                                if !decl.broadcast && !key_aligned {
                                    // Probe key not aligned with the probed
                                    // column routing: fall back to broadcast.
                                    decl.broadcast = true;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Patch delta route columns into route indices.
        for stratum in strata.iter_mut() {
            for r in stratum.delta_rules.iter_mut() {
                let Some(d) = r.delta.as_mut() else { continue };
                let decl = idb[d.rel].as_ref().expect("idb decl");
                d.route = if d.route == usize::MAX {
                    0
                } else {
                    decl.partition_cols
                        .iter()
                        .position(|&c| c == d.route)
                        .unwrap_or(0)
                };
            }
        }

        let mut edb: Vec<Option<EdbDecl>> = vec![None; n];
        for (id, info) in self.prog.catalog.iter() {
            if !info.is_edb {
                continue;
            }
            edb[id] = Some(EdbDecl {
                id,
                name: info.name.clone(),
                arity: info.arity,
                placement: placement[id].expect("placed"),
                index_cols: self.edb_probes[id].iter().copied().collect(),
            });
        }
        Ok((edb, idb))
    }

    /// The register (if any) whose value is guaranteed to hash to the
    /// executing worker in every execution of `r`.
    fn aligned_reg(
        &self,
        r: &CompiledRule,
        placement: &[Option<Placement>],
        idb: &[Option<RelDecl>],
    ) -> Option<u16> {
        if let Some(d) = &r.delta {
            // Delta tuples arrive routed by the variant's route column
            // (broadcast relations give no alignment).
            let decl = idb[d.rel].as_ref()?;
            if decl.broadcast {
                return None;
            }
            // `d.route` is still a *column* at this stage of resolution.
            let col = if d.route == usize::MAX {
                *decl.partition_cols.first()?
            } else if decl.partition_cols.contains(&d.route) {
                d.route
            } else {
                // The requested column was unroutable (e.g. an aggregate
                // value column): tuples actually arrive via another route,
                // so nothing is aligned.
                return None;
            };
            return match d.binds.get(col) {
                Some(BindAction::Bind(reg)) | Some(BindAction::Check(reg)) => Some(*reg),
                _ => None,
            };
        }
        // Init rule: leading partitioned scan aligns its partition column.
        let first = r.steps.first()?;
        if first.probe != Probe::Scan {
            return None;
        }
        let col = match first.target {
            Target::Edb(rel) => match placement[rel]? {
                Placement::Partitioned(c) => c,
                Placement::Replicated => return None,
            },
            Target::Idb { rel, .. } => {
                let decl = idb[rel].as_ref()?;
                if decl.broadcast || decl.partition_cols.len() != 1 {
                    return None;
                }
                decl.partition_cols[0]
            }
        };
        match first.binds.get(col) {
            Some(BindAction::Bind(reg)) | Some(BindAction::Check(reg)) => Some(*reg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;

    fn plan_src(src: &str) -> PhysicalPlan {
        plan_src_cfg(src, PlannerConfig::default())
    }

    fn plan_src_cfg(src: &str, cfg: PlannerConfig) -> PhysicalPlan {
        let a = analyze(parse_program(src).unwrap()).unwrap();
        plan(&a, &cfg).unwrap()
    }

    #[test]
    fn tc_plan_shapes() {
        let p = plan_src("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).");
        let tc = p.rel_by_name("tc").unwrap();
        let arc = p.rel_by_name("arc").unwrap();
        let tc_decl = p.idb[tc].as_ref().unwrap();
        assert_eq!(tc_decl.kind, StorageKind::Set);
        // tc routed by its join column Z = column 1.
        assert_eq!(tc_decl.partition_cols, vec![1]);
        assert!(!tc_decl.broadcast);
        let arc_decl = p.edb[arc].as_ref().unwrap();
        assert_eq!(arc_decl.placement, Placement::Partitioned(0));
        let s = &p.strata[0];
        assert_eq!(s.delta_rules.len(), 1);
        let dr = &s.delta_rules[0];
        assert_eq!(dr.steps.len(), 1);
        assert_eq!(dr.steps[0].join_kind, JoinKind::Hash);
        assert_eq!(dr.delta.as_ref().unwrap().route, 0);
    }

    #[test]
    fn cc_aggregate_plan() {
        let p = plan_src(
            "cc2(Y, min<Y>) <- arc(Y, _).
             cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).
             cc(Y, min<Z>) <- cc2(Y, Z).",
        );
        let cc2 = p.rel_by_name("cc2").unwrap();
        let d = p.idb[cc2].as_ref().unwrap();
        assert!(matches!(
            d.kind,
            StorageKind::Agg {
                func: AggFunc::Min,
                group_cols: 1,
                ..
            }
        ));
        assert_eq!(d.partition_cols, vec![0]);
        // Head of the delta rule emits (Y, Z): group + value.
        let dr = &p.strata[0].delta_rules[0];
        assert_eq!(dr.head_exprs.len(), 2);
    }

    #[test]
    fn sg_replicates_arc() {
        let p = plan_src(
            "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
             sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).",
        );
        let arc = p.rel_by_name("arc").unwrap();
        // Two probe keys (A and B) cannot both be aligned: replicate.
        assert_eq!(
            p.edb[arc].as_ref().unwrap().placement,
            Placement::Replicated
        );
        let sg = p.rel_by_name("sg").unwrap();
        assert!(!p.idb[sg].as_ref().unwrap().broadcast);
    }

    #[test]
    fn apsp_two_routes_two_variants() {
        let p = plan_src(
            "path(A, B, min<D>) <- warc(A, B, D).
             path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.
             apsp(A, B, min<D>) <- path(A, B, D).",
        );
        let path = p.rel_by_name("path").unwrap();
        let d = p.idb[path].as_ref().unwrap();
        assert_eq!(d.partition_cols, vec![0, 1], "replicate to H(A) and H(B)");
        assert!(!d.broadcast);
        assert_eq!(d.index_cols, vec![0, 1]);
        let s = &p.strata[0];
        assert_eq!(s.delta_rules.len(), 2);
        let routes: BTreeSet<usize> = s
            .delta_rules
            .iter()
            .map(|r| r.delta.as_ref().unwrap().route)
            .collect();
        assert_eq!(routes, BTreeSet::from([0, 1]));
        // Both variants index-join the other path occurrence.
        for r in &s.delta_rules {
            assert_eq!(r.steps[0].join_kind, JoinKind::Index);
        }
    }

    #[test]
    fn sssp_with_params() {
        let mut cfg = PlannerConfig::default();
        cfg.params.insert("start".into(), Value::Int(1));
        let p = plan_src_cfg(
            "sp(To, min<C>) <- To = start, C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
             results(To, min<C>) <- sp(To, C).",
            cfg,
        );
        let s = &p.strata[0];
        // Constraint-only init rule: no steps, two pre-assignments.
        let init = &s.init_rules[0];
        assert!(init.steps.is_empty());
        assert_eq!(init.pre_assigns.len(), 2);
        // Delta rule: assignment C = C1 + C2 on the warc step.
        let dr = &s.delta_rules[0];
        assert_eq!(dr.steps.len(), 1);
        assert_eq!(dr.steps[0].assigns.len(), 1);
        let warc = p.rel_by_name("warc").unwrap();
        assert_eq!(
            p.edb[warc].as_ref().unwrap().placement,
            Placement::Partitioned(0)
        );
    }

    #[test]
    fn missing_param_errors() {
        let a = analyze(
            parse_program("sp(To, min<C>) <- To = start, C = 0. sp(X, min<C>) <- sp(X, C).")
                .unwrap(),
        )
        .unwrap();
        let e = plan(&a, &PlannerConfig::default()).unwrap_err();
        assert!(e.to_string().contains("start"));
    }

    #[test]
    fn attend_mutual_recursion_plan() {
        let p = plan_src(
            "attend(X) <- organizer(X).
             cnt(Y, count<X>) <- attend(X), friend(Y, X).
             attend(X) <- cnt(X, N), N >= 3.",
        );
        let friend = p.rel_by_name("friend").unwrap();
        assert_eq!(
            p.edb[friend].as_ref().unwrap().placement,
            Placement::Partitioned(1)
        );
        let cnt = p.rel_by_name("cnt").unwrap();
        assert!(matches!(
            p.idb[cnt].as_ref().unwrap().kind,
            StorageKind::Agg {
                func: AggFunc::Count,
                group_cols: 1,
                ..
            }
        ));
        // Find the δcnt variant: it has a pre-filter N >= 3.
        let s = p.strata.iter().find(|s| s.recursive).unwrap();
        let cnt_variant = s
            .delta_rules
            .iter()
            .find(|r| r.delta.as_ref().unwrap().rel == cnt)
            .unwrap();
        assert_eq!(cnt_variant.pre_filters.len(), 1);
    }

    #[test]
    fn pagerank_sum_layout() {
        let mut cfg = PlannerConfig::default();
        cfg.params.insert("alpha".into(), Value::Float(0.85));
        cfg.params.insert("vnum".into(), Value::Float(100.0));
        cfg.sum_epsilon = 1e-7;
        let p = plan_src_cfg(
            "rank(X, sum<(X, I)>) <- matrix(X, _, _), I = (1 - alpha) / vnum.
             rank(X, sum<(Y, K)>) <- rank(Y, C), matrix(Y, X, D), K = alpha * (C / D).
             results(X, V) <- rank(X, V).",
            cfg,
        );
        let rank = p.rel_by_name("rank").unwrap();
        let d = p.idb[rank].as_ref().unwrap();
        assert!(matches!(
            d.kind,
            StorageKind::Agg {
                func: AggFunc::Sum,
                group_cols: 1,
                ..
            }
        ));
        // Merge layout (X, contributor, value): three head exprs.
        let dr = &p.strata[0].delta_rules[0];
        assert_eq!(dr.head_exprs.len(), 3);
        let matrix = p.rel_by_name("matrix").unwrap();
        assert_eq!(
            p.edb[matrix].as_ref().unwrap().placement,
            Placement::Partitioned(0)
        );
    }

    #[test]
    fn cross_product_replicates_second_table() {
        let p = plan_src("p(X, Y) <- q(X), r(Y).");
        let r = p.rel_by_name("r").unwrap();
        assert_eq!(p.edb[r].as_ref().unwrap().placement, Placement::Replicated);
        let q = p.rel_by_name("q").unwrap();
        assert_eq!(
            p.edb[q].as_ref().unwrap().placement,
            Placement::Partitioned(0)
        );
        let rule = &p.strata[0].init_rules[0];
        assert_eq!(rule.steps[1].join_kind, JoinKind::NestedLoop);
    }

    #[test]
    fn explain_output_mentions_placement_and_joins() {
        let p = plan_src("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).");
        let text = p.explain();
        assert!(text.contains("Partitioned(0)"), "{text}");
        assert!(text.contains("⋈hash arc"), "{text}");
        assert!(text.contains("δtc"), "{text}");
    }

    #[test]
    fn delivery_plan_partitions_assbl_on_second_column() {
        let p = plan_src(
            "delivery(P, max<D>) <- basic(P, D).
             delivery(P, max<D>) <- assbl(P, S), delivery(S, D).
             results(P, max<D>) <- delivery(P, D).",
        );
        let assbl = p.rel_by_name("assbl").unwrap();
        assert_eq!(
            p.edb[assbl].as_ref().unwrap().placement,
            Placement::Partitioned(1)
        );
        let delivery = p.rel_by_name("delivery").unwrap();
        assert_eq!(p.idb[delivery].as_ref().unwrap().partition_cols, vec![0]);
    }
}
