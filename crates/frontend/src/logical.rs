//! Logical planning (§5.1).
//!
//! The logical planner rewrites each analyzed rule into an ordered join
//! chain annotated for parallel semi-naive evaluation:
//!
//! * **Recursive-table-first reordering** — the paper's §5.1 rewrite: the
//!   recursive (delta) atom becomes the leftmost table of the join so the
//!   physical nested-loop/index pipeline probes the indexed base tables.
//! * **Connected join ordering** — remaining atoms are ordered greedily so
//!   that every atom joins on at least one already-bound variable whenever
//!   possible (turning the join into an index probe instead of a cross
//!   product).
//! * **Semi-naive variant expansion** — a rule with `k` recursive atoms
//!   becomes `k` delta variants (`δR ⋈ R`, `R ⋈ δR`, …), the classical
//!   rewrite that the paper applies to non-linear queries such as APSP
//!   (§4.3).
//! * **Selection pushdown** — constraints and `=` bindings are attached to
//!   the earliest join level at which their variables are bound.

use crate::analysis::{AnalyzedProgram, StratumInfo};
use crate::ast::*;
use dcd_common::{PredicateId, Result};
use std::collections::BTreeSet;
use std::fmt;

/// One execution ordering of a rule body.
#[derive(Clone, Debug)]
pub struct RuleVariant {
    /// Index (into the rule's atom list) of the atom bound to the delta
    /// relation; `None` for initialization / non-recursive rules.
    pub delta_atom: Option<usize>,
    /// Atom evaluation order (original atom indices). When `delta_atom` is
    /// `Some(a)`, the order starts with `a`.
    pub atom_order: Vec<usize>,
    /// For each non-delta position `k` in `atom_order` (so `k ≥ 1` for
    /// delta variants, `k ≥ 0` shifted accordingly), whether the atom can
    /// be probed on a bound variable.
    pub probeable: Vec<bool>,
    /// Constraint literal indices attached after each position: entry `k`
    /// lists the body-literal indices evaluable once `atom_order[..=k]`
    /// (plus earlier bindings) are bound. Index `0` holds those evaluable
    /// from the first atom alone.
    pub constraints_at: Vec<Vec<usize>>,
}

/// A logically planned rule.
#[derive(Clone, Debug)]
pub struct LogicalRule {
    /// Index into the program's rule list.
    pub rule_idx: usize,
    /// Head predicate.
    pub head: PredicateId,
    /// All execution variants (exactly one for non-recursive rules, one
    /// per recursive atom otherwise).
    pub variants: Vec<RuleVariant>,
}

/// A logically planned stratum.
#[derive(Clone, Debug)]
pub struct LogicalStratum {
    /// Whether the stratum needs fixpoint iteration.
    pub recursive: bool,
    /// Member predicates.
    pub preds: Vec<PredicateId>,
    /// Initialization rules (no same-stratum atom in the body).
    pub init_rules: Vec<LogicalRule>,
    /// Recursive rules (delta variants).
    pub delta_rules: Vec<LogicalRule>,
}

/// The whole logical plan.
#[derive(Clone, Debug)]
pub struct LogicalPlan {
    /// Strata in evaluation order.
    pub strata: Vec<LogicalStratum>,
}

/// Builds the logical plan for an analyzed program.
pub fn logical_plan(prog: &AnalyzedProgram) -> Result<LogicalPlan> {
    let mut strata = Vec::new();
    for s in &prog.strata {
        strata.push(plan_stratum(prog, s)?);
    }
    Ok(LogicalPlan { strata })
}

fn plan_stratum(prog: &AnalyzedProgram, s: &StratumInfo) -> Result<LogicalStratum> {
    let mut init_rules = Vec::new();
    let mut delta_rules = Vec::new();
    for ri in &s.rules {
        let rule = &prog.ast.rules[ri.rule_idx];
        if ri.recursive_atoms.is_empty() {
            init_rules.push(LogicalRule {
                rule_idx: ri.rule_idx,
                head: ri.head,
                variants: vec![order_variant(rule, None)],
            });
        } else {
            let variants = ri
                .recursive_atoms
                .iter()
                .map(|&a| order_variant(rule, Some(a)))
                .collect();
            delta_rules.push(LogicalRule {
                rule_idx: ri.rule_idx,
                head: ri.head,
                variants,
            });
        }
    }
    Ok(LogicalStratum {
        recursive: s.recursive,
        preds: s.preds.clone(),
        init_rules,
        delta_rules,
    })
}

/// Variables bound by an atom.
fn atom_vars(atom: &Atom) -> BTreeSet<&str> {
    atom.terms
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            _ => None,
        })
        .collect()
}

fn lit_index_map(rule: &Rule) -> (Vec<&Atom>, Vec<usize>, Vec<usize>) {
    // Returns (atoms, atom literal indices, constraint literal indices).
    let mut atoms = Vec::new();
    let mut atom_lits = Vec::new();
    let mut cons_lits = Vec::new();
    for (i, l) in rule.body.iter().enumerate() {
        match l {
            BodyLit::Atom(a) => {
                atoms.push(a);
                atom_lits.push(i);
            }
            BodyLit::Compare { .. } => cons_lits.push(i),
        }
    }
    (atoms, atom_lits, cons_lits)
}

/// Orders a rule body: `delta` (an *atom index*) first if given, then the
/// remaining atoms greedily by join connectivity, with constraints pushed
/// to the earliest level at which they are evaluable.
fn order_variant(rule: &Rule, delta: Option<usize>) -> RuleVariant {
    let (atoms, _atom_lits, cons_lits) = lit_index_map(rule);
    let natoms = atoms.len();
    let mut order: Vec<usize> = Vec::with_capacity(natoms);
    let mut used = vec![false; natoms];
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    let mut probeable: Vec<bool> = Vec::new();

    if let Some(d) = delta {
        order.push(d);
        used[d] = true;
        bound.extend(atom_vars(atoms[d]));
        probeable.push(false); // the delta atom is scanned from δR
    }
    while order.len() < natoms {
        // Greedy: prefer an unused atom sharing a bound variable (or
        // having a constant term) — it can be index-probed; otherwise take
        // the first unused atom (nested loop).
        let pick = (0..natoms)
            .filter(|&i| !used[i])
            .find(|&i| {
                atoms[i].terms.iter().any(|t| match t {
                    Term::Var(v) => bound.contains(v.as_str()),
                    Term::Const(_) | Term::Param(_) => true,
                    Term::Wildcard => false,
                })
            })
            .or_else(|| (0..natoms).find(|&i| !used[i]));
        let Some(pick) = pick else { break };
        let can_probe = atoms[pick].terms.iter().any(|t| match t {
            Term::Var(v) => bound.contains(v.as_str()),
            Term::Const(_) | Term::Param(_) => true,
            Term::Wildcard => false,
        });
        order.push(pick);
        probeable.push(can_probe);
        used[pick] = true;
        bound.extend(atom_vars(atoms[pick]));
    }

    // Constraint placement: simulate bound-variable growth level by level,
    // running the `=`-binding fixpoint at each level (selection pushdown).
    let levels = order.len().max(1);
    let mut constraints_at: Vec<Vec<usize>> = vec![Vec::new(); levels];
    let mut placed: BTreeSet<usize> = BTreeSet::new();
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for (k, &ai) in order.iter().enumerate() {
        bound.extend(atom_vars(atoms[ai]));
        place_constraints(
            rule,
            &cons_lits,
            &mut bound,
            &mut placed,
            k,
            &mut constraints_at,
        );
    }
    if order.is_empty() {
        // Constraint-only rule (e.g. `sp(To, min<C>) <- To = start, C = 0.`).
        place_constraints(
            rule,
            &cons_lits,
            &mut bound,
            &mut placed,
            0,
            &mut constraints_at,
        );
    }
    RuleVariant {
        delta_atom: delta,
        atom_order: order,
        probeable,
        constraints_at,
    }
}

fn place_constraints<'r>(
    rule: &'r Rule,
    cons_lits: &[usize],
    bound: &mut BTreeSet<&'r str>,
    placed: &mut BTreeSet<usize>,
    level: usize,
    constraints_at: &mut [Vec<usize>],
) {
    // Fixpoint: a `V = expr` binding can enable later constraints.
    loop {
        let mut changed = false;
        for &ci in cons_lits {
            if placed.contains(&ci) {
                continue;
            }
            let BodyLit::Compare { op, lhs, rhs } = &rule.body[ci] else {
                continue;
            };
            let evaluable = {
                let mut vs = Vec::new();
                lhs.vars(&mut vs);
                rhs.vars(&mut vs);
                let unbound: Vec<&&str> = vs.iter().filter(|v| !bound.contains(**v)).collect();
                match (op, unbound.as_slice()) {
                    (_, []) => true,
                    // Binding assignment: exactly one unbound side variable.
                    (CmpOp::Eq, [v]) => {
                        let lhs_is_v = matches!(lhs, Expr::Term(Term::Var(x)) if x == **v);
                        let rhs_is_v = matches!(rhs, Expr::Term(Term::Var(x)) if x == **v);
                        lhs_is_v || rhs_is_v
                    }
                    _ => false,
                }
            };
            if evaluable {
                // Record any newly bound variable.
                if let CmpOp::Eq = op {
                    for side in [lhs, rhs] {
                        if let Expr::Term(Term::Var(v)) = side {
                            bound.insert(v.as_str());
                        }
                    }
                }
                constraints_at[level].push(ci);
                placed.insert(ci);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (si, s) in self.strata.iter().enumerate() {
            writeln!(
                f,
                "stratum {si} ({}):",
                if s.recursive { "recursive" } else { "once" }
            )?;
            for (label, rules) in [("init", &s.init_rules), ("delta", &s.delta_rules)] {
                for r in rules.iter() {
                    for v in &r.variants {
                        write!(f, "  [{label}] rule#{}", r.rule_idx)?;
                        if let Some(d) = v.delta_atom {
                            write!(f, " δ@atom{d}")?;
                        }
                        write!(f, " order={:?}", v.atom_order)?;
                        writeln!(f)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;

    fn plan_src(src: &str) -> (AnalyzedProgram, LogicalPlan) {
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let p = logical_plan(&a).unwrap();
        (a, p)
    }

    #[test]
    fn tc_reorders_nothing_but_marks_delta() {
        let (_, p) = plan_src("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).");
        let s = &p.strata[0];
        assert_eq!(s.init_rules.len(), 1);
        assert_eq!(s.delta_rules.len(), 1);
        let v = &s.delta_rules[0].variants[0];
        assert_eq!(v.delta_atom, Some(0));
        assert_eq!(v.atom_order, vec![0, 1]);
        assert!(v.probeable[1], "arc should be probeable on Z");
    }

    #[test]
    fn sg_moves_recursive_atom_first() {
        // Source order: arc(A,X), sg(A,B), arc(B,Y) — sg is atom 1.
        let (_, p) = plan_src(
            "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
             sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).",
        );
        let s = &p.strata[0];
        let v = &s.delta_rules[0].variants[0];
        assert_eq!(v.delta_atom, Some(1));
        assert_eq!(v.atom_order[0], 1, "recursive table leftmost (§5.1)");
        // Both arcs join on variables bound by sg: probeable.
        assert!(v.probeable[1] && v.probeable[2]);
    }

    #[test]
    fn apsp_produces_two_variants() {
        let (_, p) = plan_src(
            "path(A, B, min<D>) <- warc(A, B, D).
             path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.
             apsp(A, B, min<D>) <- path(A, B, D).",
        );
        let s = &p.strata[0];
        assert_eq!(s.delta_rules[0].variants.len(), 2);
        let v0 = &s.delta_rules[0].variants[0];
        let v1 = &s.delta_rules[0].variants[1];
        assert_eq!(v0.delta_atom, Some(0));
        assert_eq!(v0.atom_order, vec![0, 1]);
        assert_eq!(v1.delta_atom, Some(1));
        assert_eq!(v1.atom_order, vec![1, 0]);
    }

    #[test]
    fn constraints_pushed_to_earliest_level() {
        // X != Y is evaluable after the second arc binds Y... actually both
        // P, X from atom 0; Y needs atom 1.
        let (_, p) = plan_src("sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.");
        let v = &p.strata[0].init_rules[0].variants[0];
        assert_eq!(v.atom_order, vec![0, 1]);
        assert!(v.constraints_at[0].is_empty());
        assert_eq!(v.constraints_at[1].len(), 1);
    }

    #[test]
    fn binding_assignment_placed_with_its_inputs() {
        let (_, p) = plan_src(
            "sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
             sp(To, min<C>) <- seed(To), C = 0.",
        );
        let s = &p.strata[0];
        let dv = &s.delta_rules[0].variants[0];
        // C = C1 + C2 requires warc (C2): level 1.
        assert_eq!(dv.constraints_at[1].len(), 1);
        let iv = &s.init_rules[0].variants[0];
        // C = 0 evaluable immediately after the first atom.
        assert_eq!(iv.constraints_at[0].len(), 1);
    }

    #[test]
    fn constraint_only_rule_places_at_level_zero() {
        let (_, p) = plan_src(
            "sp(To, min<C>) <- To = start, C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.",
        );
        let s = &p.strata[0];
        let iv = &s.init_rules[0].variants[0];
        assert!(iv.atom_order.is_empty());
        assert_eq!(iv.constraints_at[0].len(), 2);
    }

    #[test]
    fn display_mentions_strata() {
        let (_, p) = plan_src("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).");
        let text = p.to_string();
        assert!(text.contains("stratum 0 (recursive)"));
        assert!(text.contains("δ@atom0"));
    }

    #[test]
    fn disconnected_join_falls_back_to_nested_loop() {
        let (_, p) = plan_src("p(X, Y) <- q(X), r(Y).");
        let v = &p.strata[0].init_rules[0].variants[0];
        assert_eq!(v.atom_order, vec![0, 1]);
        assert!(!v.probeable[1], "r(Y) shares no variable: nested loop");
    }
}
