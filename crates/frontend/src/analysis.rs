//! Program analysis: catalog construction, the Predicate Connection Graph,
//! recursion detection (Tarjan SCC), stratification and safety checks.
//!
//! This is the first half of the paper's Query Processor (§3, §5): it turns
//! a parsed [`ProgramAst`] into an [`AnalyzedProgram`] whose strata are
//! ready for logical/physical planning. Aggregates are allowed in
//! recursion (the whole point of DCDatalog); negation is not part of the
//! language (the paper leaves negation-in-recursion as an open problem).

use crate::ast::*;
use dcd_common::hash::FastMap;
use dcd_common::{DcdError, PredicateId, Result, Tuple, Value};
use std::collections::BTreeSet;

/// Aggregate specification for an IDB predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Index of the aggregate head term — always the last term (enforced).
    pub term_idx: usize,
}

/// Catalog entry for a predicate.
#[derive(Clone, Debug)]
pub struct PredInfo {
    /// Predicate name.
    pub name: String,
    /// Arity of the logical relation.
    pub arity: usize,
    /// Whether the predicate is extensional (loaded, never derived by a
    /// rule with a body).
    pub is_edb: bool,
    /// Aggregate spec if the predicate's rules aggregate.
    pub agg: Option<AggSpec>,
}

/// Name ↔ id catalog of every predicate in the program.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    preds: Vec<PredInfo>,
    by_name: FastMap<String, PredicateId>,
}

impl Catalog {
    /// Resolves a name.
    pub fn id(&self, name: &str) -> Option<PredicateId> {
        self.by_name.get(name).copied()
    }

    /// Info for `id`.
    pub fn info(&self, id: PredicateId) -> &PredInfo {
        &self.preds[id]
    }

    /// All predicates.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &PredInfo)> {
        self.preds.iter().enumerate()
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// EDB predicate ids.
    pub fn edb_ids(&self) -> Vec<PredicateId> {
        self.iter()
            .filter(|(_, p)| p.is_edb)
            .map(|(i, _)| i)
            .collect()
    }

    fn intern(&mut self, name: &str, arity: usize) -> Result<PredicateId> {
        if let Some(&id) = self.by_name.get(name) {
            let known = self.preds[id].arity;
            if known != arity {
                return Err(DcdError::Analysis(format!(
                    "predicate '{name}' used with arity {arity} but previously {known}"
                )));
            }
            return Ok(id);
        }
        let id = self.preds.len();
        self.preds.push(PredInfo {
            name: name.to_string(),
            arity,
            is_edb: true, // flipped to false when seen in a rule head
            agg: None,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }
}

/// A rule annotated with catalog ids and recursion info.
#[derive(Clone, Debug)]
pub struct RuleInfo {
    /// Index into `ast.rules`.
    pub rule_idx: usize,
    /// Head predicate.
    pub head: PredicateId,
    /// Body atom predicate ids, in body order.
    pub body_preds: Vec<PredicateId>,
    /// Indices (into the rule's *atom list*) of atoms whose predicate is in
    /// the same SCC as the head — the recursive atoms.
    pub recursive_atoms: Vec<usize>,
}

/// One stratum: an SCC of the predicate connection graph plus all rules
/// defining its members.
#[derive(Clone, Debug)]
pub struct StratumInfo {
    /// Member predicates.
    pub preds: Vec<PredicateId>,
    /// Whether the stratum is recursive (self-loop or |SCC| > 1).
    pub recursive: bool,
    /// Rules whose head lies in this stratum.
    pub rules: Vec<RuleInfo>,
}

impl StratumInfo {
    /// Mutual recursion: more than one predicate in the SCC.
    pub fn is_mutual(&self) -> bool {
        self.preds.len() > 1
    }

    /// Non-linear: some rule joins two or more same-SCC atoms.
    pub fn is_nonlinear(&self) -> bool {
        self.rules.iter().any(|r| r.recursive_atoms.len() > 1)
    }
}

/// The fully analyzed program.
#[derive(Clone, Debug)]
pub struct AnalyzedProgram {
    /// The source AST.
    pub ast: ProgramAst,
    /// Predicate catalog.
    pub catalog: Catalog,
    /// Strata in dependency (evaluation) order.
    pub strata: Vec<StratumInfo>,
    /// Ground facts written inline in the program, per predicate.
    pub facts: Vec<(PredicateId, Tuple)>,
    /// Names of parameters the program references (must be supplied).
    pub params: BTreeSet<String>,
}

/// Analyzes a parsed program.
pub fn analyze(ast: ProgramAst) -> Result<AnalyzedProgram> {
    let mut catalog = Catalog::default();
    let mut facts = Vec::new();
    let mut params = BTreeSet::new();
    let mut derivation_rules: Vec<usize> = Vec::new();

    // Pass 1: intern predicates, split facts from rules, basic head checks.
    for (idx, rule) in ast.rules.iter().enumerate() {
        let head_id = catalog.intern(&rule.head.pred, rule.head.terms.len())?;
        collect_params_rule(rule, &mut params);
        if rule.body.is_empty() {
            let vals = ground_head(&rule.head).ok_or_else(|| {
                DcdError::Analysis(format!("fact '{}' must have constant arguments", rule.head))
            })?;
            facts.push((head_id, Tuple::new(&vals)));
            continue;
        }
        catalog.preds[head_id].is_edb = false;
        derivation_rules.push(idx);
        for atom in rule.body_atoms() {
            catalog.intern(&atom.pred, atom.terms.len())?;
        }
        check_safety(rule)?;
        check_head_aggregate(rule)?;
    }

    // Predicates that only have facts stay EDB; their facts are loaded as
    // base data. Facts for derived predicates seed the base rules instead.
    // Aggregate consistency per predicate.
    let mut agg_specs: FastMap<PredicateId, Option<AggSpec>> = FastMap::default();
    for &idx in &derivation_rules {
        let rule = &ast.rules[idx];
        let head_id = catalog.id(&rule.head.pred).expect("interned");
        let spec = rule.head.aggregate().map(|(i, f, _)| AggSpec {
            func: *f,
            term_idx: i,
        });
        match agg_specs.entry(head_id) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(spec);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                if *o.get() != spec {
                    return Err(DcdError::Analysis(format!(
                        "predicate '{}' mixes aggregate and non-aggregate rules",
                        rule.head.pred
                    )));
                }
            }
        }
    }
    for (id, spec) in agg_specs {
        catalog.preds[id].agg = spec;
    }

    // Pass 2: Predicate Connection Graph over IDB predicates and SCCs.
    let n = catalog.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &idx in &derivation_rules {
        let rule = &ast.rules[idx];
        let head_id = catalog.id(&rule.head.pred).expect("interned");
        for atom in rule.body_atoms() {
            let dep = catalog.id(&atom.pred).expect("interned");
            if !catalog.preds[dep].is_edb {
                edges[head_id].push(dep);
            }
        }
    }
    let sccs = tarjan_sccs(n, &edges);

    // Build strata in reverse-topological (dependency-first) order — Tarjan
    // emits SCCs in reverse topological order of the condensation already.
    let mut scc_of = vec![usize::MAX; n];
    for (si, scc) in sccs.iter().enumerate() {
        for &p in scc {
            scc_of[p] = si;
        }
    }
    let mut strata = Vec::new();
    for scc in &sccs {
        let members: Vec<PredicateId> = scc
            .iter()
            .copied()
            .filter(|&p| !catalog.preds[p].is_edb)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut rules = Vec::new();
        let mut recursive = members.len() > 1;
        for &idx in &derivation_rules {
            let rule = &ast.rules[idx];
            let head_id = catalog.id(&rule.head.pred).expect("interned");
            if !members.contains(&head_id) {
                continue;
            }
            let body_preds: Vec<PredicateId> = rule
                .body_atoms()
                .map(|a| catalog.id(&a.pred).expect("interned"))
                .collect();
            let recursive_atoms: Vec<usize> = body_preds
                .iter()
                .enumerate()
                .filter(|(_, &p)| scc_of[p] == scc_of[head_id] && !catalog.preds[p].is_edb)
                .map(|(i, _)| i)
                .collect();
            if !recursive_atoms.is_empty() {
                recursive = true;
            }
            rules.push(RuleInfo {
                rule_idx: idx,
                head: head_id,
                body_preds,
                recursive_atoms,
            });
        }
        strata.push(StratumInfo {
            preds: members,
            recursive,
            rules,
        });
    }

    // Every IDB predicate needs at least one rule (or inline facts).
    for (id, p) in catalog.iter() {
        if !p.is_edb {
            let has_rule = strata.iter().any(|s| s.rules.iter().any(|r| r.head == id));
            let has_fact = facts.iter().any(|(f, _)| *f == id);
            if !has_rule && !has_fact {
                return Err(DcdError::Analysis(format!(
                    "derived predicate '{}' has no rules",
                    p.name
                )));
            }
        }
    }

    Ok(AnalyzedProgram {
        ast,
        catalog,
        strata,
        facts,
        params,
    })
}

fn ground_head(head: &Head) -> Option<Vec<Value>> {
    head.terms
        .iter()
        .map(|t| match t {
            HeadTerm::Plain(Term::Const(v)) => Some(*v),
            _ => None,
        })
        .collect()
}

fn collect_params_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Term(Term::Param(p)) => {
            out.insert(p.clone());
        }
        Expr::Term(_) => {}
        Expr::Binary { lhs, rhs, .. } => {
            collect_params_expr(lhs, out);
            collect_params_expr(rhs, out);
        }
    }
}

fn collect_params_rule(rule: &Rule, out: &mut BTreeSet<String>) {
    for t in &rule.head.terms {
        match t {
            HeadTerm::Plain(Term::Param(p)) => {
                out.insert(p.clone());
            }
            HeadTerm::Agg { args, .. } => {
                for a in args {
                    collect_params_expr(a, out);
                }
            }
            _ => {}
        }
    }
    for l in &rule.body {
        match l {
            BodyLit::Atom(a) => {
                for t in &a.terms {
                    if let Term::Param(p) = t {
                        out.insert(p.clone());
                    }
                }
            }
            BodyLit::Compare { lhs, rhs, .. } => {
                collect_params_expr(lhs, out);
                collect_params_expr(rhs, out);
            }
        }
    }
}

/// Safety: every head variable must be bound by a body atom or by a chain
/// of `=` bindings rooted in bound variables/constants/parameters; every
/// constraint variable must be bound too. Wildcards may not appear in
/// heads.
fn check_safety(rule: &Rule) -> Result<()> {
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for atom in rule.body_atoms() {
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound.insert(v);
            }
        }
    }
    // Fixpoint over `=` bindings (either side may be the defined variable).
    loop {
        let mut changed = false;
        for l in &rule.body {
            if let BodyLit::Compare {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = l
            {
                for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                    if let Expr::Term(Term::Var(v)) = a {
                        if !bound.contains(v.as_str()) {
                            let mut vs = Vec::new();
                            b.vars(&mut vs);
                            if vs.iter().all(|x| bound.contains(x)) {
                                bound.insert(v);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // All comparison variables must be bound.
    for l in &rule.body {
        if let BodyLit::Compare { lhs, rhs, op } = l {
            let mut vs = Vec::new();
            lhs.vars(&mut vs);
            rhs.vars(&mut vs);
            // For `=`, one side may be the variable being defined.
            let defined: Option<&str> = if *op == CmpOp::Eq {
                match (lhs, rhs) {
                    (Expr::Term(Term::Var(v)), _) => Some(v.as_str()),
                    (_, Expr::Term(Term::Var(v))) => Some(v.as_str()),
                    _ => None,
                }
            } else {
                None
            };
            for v in vs {
                if !bound.contains(v) && defined != Some(v) {
                    return Err(DcdError::Analysis(format!(
                        "variable '{v}' in constraint '{l}' is never bound (rule: {rule})"
                    )));
                }
            }
        }
    }
    // Head variables must be bound.
    let mut head_vars: Vec<&str> = Vec::new();
    for t in &rule.head.terms {
        match t {
            HeadTerm::Plain(Term::Var(v)) => head_vars.push(v),
            HeadTerm::Plain(Term::Wildcard) => {
                return Err(DcdError::Analysis(format!(
                    "wildcard not allowed in rule head: {rule}"
                )))
            }
            HeadTerm::Agg { args, .. } => {
                for a in args {
                    a.vars(&mut head_vars);
                }
            }
            _ => {}
        }
    }
    for v in head_vars {
        if !bound.contains(v) {
            return Err(DcdError::Analysis(format!(
                "head variable '{v}' is not bound by the body (rule: {rule})"
            )));
        }
    }
    Ok(())
}

/// Aggregate heads must place the aggregate as the last term (the storage
/// layout groups on the leading columns).
fn check_head_aggregate(rule: &Rule) -> Result<()> {
    let n = rule.head.terms.len();
    let mut seen = 0;
    for (i, t) in rule.head.terms.iter().enumerate() {
        if matches!(t, HeadTerm::Agg { .. }) {
            seen += 1;
            if i + 1 != n {
                return Err(DcdError::Analysis(format!(
                    "aggregate must be the last head term: {rule}"
                )));
            }
        }
    }
    if seen > 1 {
        return Err(DcdError::Analysis(format!(
            "at most one aggregate per head: {rule}"
        )));
    }
    Ok(())
}

/// Iterative Tarjan SCC. Returns SCCs in reverse topological order of the
/// condensation (dependencies before dependents), which is exactly the
/// stratum evaluation order.
fn tarjan_sccs(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut st = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack: (node, edge cursor).
    for start in 0..n {
        if st[start].visited {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                st[v].visited = true;
                st[v].index = next_index;
                st[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                st[v].on_stack = true;
            }
            if *cursor < edges[v].len() {
                let w = edges[v][*cursor];
                *cursor += 1;
                if !st[w].visited {
                    dfs.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        st[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_src(src: &str) -> AnalyzedProgram {
        analyze(parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn tc_classification() {
        let a = analyze_src("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).");
        assert_eq!(a.strata.len(), 1);
        let s = &a.strata[0];
        assert!(s.recursive);
        assert!(!s.is_mutual());
        assert!(!s.is_nonlinear());
        let arc = a.catalog.id("arc").unwrap();
        assert!(a.catalog.info(arc).is_edb);
        let tc = a.catalog.id("tc").unwrap();
        assert!(!a.catalog.info(tc).is_edb);
    }

    #[test]
    fn apsp_is_nonlinear() {
        let a = analyze_src(
            "path(A, B, min<D>) <- warc(A, B, D).
             path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.
             apsp(A, B, min<D>) <- path(A, B, D).",
        );
        // Two strata: {path} (recursive, nonlinear), then {apsp}.
        assert_eq!(a.strata.len(), 2);
        assert!(a.strata[0].recursive);
        assert!(a.strata[0].is_nonlinear());
        assert!(!a.strata[1].recursive);
        let path = a.catalog.id("path").unwrap();
        assert_eq!(
            a.catalog.info(path).agg,
            Some(AggSpec {
                func: AggFunc::Min,
                term_idx: 2
            })
        );
    }

    #[test]
    fn attend_is_mutual() {
        let a = analyze_src(
            "attend(X) <- organizer(X).
             cnt(Y, count<X>) <- attend(X), friend(Y, X).
             attend(X) <- cnt(X, N), N >= 3.",
        );
        let rec: Vec<_> = a.strata.iter().filter(|s| s.recursive).collect();
        assert_eq!(rec.len(), 1);
        assert!(rec[0].is_mutual());
        assert_eq!(rec[0].preds.len(), 2);
    }

    #[test]
    fn strata_order_respects_dependencies() {
        let a = analyze_src(
            "b(X) <- e(X).
             c(X) <- b(X).
             d(X) <- c(X), b(X).",
        );
        let pos = |name: &str| {
            let id = a.catalog.id(name).unwrap();
            a.strata.iter().position(|s| s.preds.contains(&id)).unwrap()
        };
        assert!(pos("b") < pos("c"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn facts_are_collected_and_fact_only_preds_stay_edb() {
        let a = analyze_src("arc(1, 2). arc(2, 3). tc(X, Y) <- arc(X, Y).");
        assert_eq!(a.facts.len(), 2);
        let arc = a.catalog.id("arc").unwrap();
        assert!(a.catalog.info(arc).is_edb);
    }

    #[test]
    fn params_collected() {
        let a = analyze_src(
            "sp(To, min<C>) <- sp(F, C1), warc(F, To, C2), C = C1 + C2.
                             sp(To, min<C>) <- w(To), To = start, C = 0.",
        );
        assert!(a.params.contains("start"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = analyze(parse_program("p(X) <- q(X). r(X) <- q(X, X).").unwrap()).unwrap_err();
        assert!(e.to_string().contains("arity"));
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let e = analyze(parse_program("p(X, Y) <- q(X).").unwrap()).unwrap_err();
        assert!(e.to_string().contains("not bound"));
    }

    #[test]
    fn assignment_chain_binds() {
        // C bound via C = C1 + C2 where C1, C2 come from atoms.
        let a = analyze_src("p(C) <- q(C1, C2), C = C1 + C2.");
        assert_eq!(a.strata.len(), 1);
    }

    #[test]
    fn unbound_constraint_variable_rejected() {
        let e = analyze(parse_program("p(X) <- q(X), Y > 3.").unwrap()).unwrap_err();
        assert!(e.to_string().contains("never bound"));
    }

    #[test]
    fn aggregate_not_last_rejected() {
        let e = analyze(parse_program("p(min<X>, Y) <- q(X, Y).").unwrap()).unwrap_err();
        assert!(e.to_string().contains("last head term"));
    }

    #[test]
    fn mixed_agg_plain_rules_rejected() {
        let e = analyze(parse_program("p(X, min<Y>) <- q(X, Y). p(X, Y) <- r(X, Y).").unwrap())
            .unwrap_err();
        assert!(e.to_string().contains("mixes aggregate"));
    }

    #[test]
    fn wildcard_in_head_rejected() {
        let e = analyze(parse_program("p(_) <- q(X).").unwrap()).unwrap_err();
        assert!(e.to_string().contains("wildcard"));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let e = analyze(parse_program("arc(X, 2).").unwrap()).unwrap_err();
        assert!(e.to_string().contains("constant arguments"));
    }

    #[test]
    fn cc_program_shape() {
        let a = analyze_src(
            "cc2(Y, min<Y>) <- arc(Y, _).
             cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).
             cc(Y, min<Z>) <- cc2(Y, Z).",
        );
        assert_eq!(a.strata.len(), 2);
        assert!(a.strata[0].recursive);
        assert!(!a.strata[0].is_nonlinear());
        let cc2 = a.catalog.id("cc2").unwrap();
        assert_eq!(a.catalog.info(cc2).agg.as_ref().unwrap().func, AggFunc::Min);
    }
}
