//! Recursive-descent parser producing a [`ProgramAst`].

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use dcd_common::{DcdError, Result, Value};

/// Parses a full program.
pub fn parse_program(src: &str) -> Result<ProgramAst> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at(&TokenKind::Eof) {
        rules.push(p.rule()?);
    }
    Ok(ProgramAst { rules })
}

/// Parses a single rule (convenience for tests and the REPL-style API).
pub fn parse_rule(src: &str) -> Result<Rule> {
    let program = parse_program(src)?;
    match program.rules.len() {
        1 => Ok(program.rules.into_iter().next().expect("one rule")),
        n => Err(DcdError::Parse {
            message: format!("expected exactly one rule, found {n}"),
            line: 1,
            col: 1,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> DcdError {
        let t = &self.tokens[self.pos];
        DcdError::Parse {
            message: msg.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, k: TokenKind, what: &str) -> Result<Token> {
        if self.at(&k) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn lower_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::LowerIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    /// `rule := head ( '<-' body )? '.'`
    fn rule(&mut self) -> Result<Rule> {
        let head = self.head()?;
        let body = if self.at(&TokenKind::Arrow) {
            self.bump();
            self.body()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::Dot, "'.' ending the rule")?;
        Ok(Rule { head, body })
    }

    /// `head := pred '(' head_term (',' head_term)* ')'`
    fn head(&mut self) -> Result<Head> {
        let pred = self.lower_ident("a predicate name")?;
        self.expect(TokenKind::LParen, "'('")?;
        let mut terms = Vec::new();
        loop {
            terms.push(self.head_term()?);
            if self.at(&TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(TokenKind::RParen, "')'")?;
        Ok(Head { pred, terms })
    }

    /// A head term: aggregate `func< … >` or a plain term.
    fn head_term(&mut self) -> Result<HeadTerm> {
        if let TokenKind::LowerIdent(name) = self.peek() {
            let func = match name.as_str() {
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "sum" => Some(AggFunc::Sum),
                "count" => Some(AggFunc::Count),
                _ => None,
            };
            if let (Some(func), TokenKind::Lt) = (func, self.peek2()) {
                self.bump(); // func name
                self.bump(); // '<'
                let args = if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    self.expect(TokenKind::RParen, "')'")?;
                    args
                } else {
                    vec![self.expr()?]
                };
                self.expect(TokenKind::Gt, "'>' closing the aggregate")?;
                let expected = if func == AggFunc::Sum { 2 } else { 1 };
                if args.len() != expected {
                    return Err(self.error(format!(
                        "{func} takes {expected} argument(s), found {}",
                        args.len()
                    )));
                }
                return Ok(HeadTerm::Agg { func, args });
            }
        }
        Ok(HeadTerm::Plain(self.term()?))
    }

    /// `body := literal (',' literal)*`
    fn body(&mut self) -> Result<Vec<BodyLit>> {
        let mut lits = vec![self.literal()?];
        while self.at(&TokenKind::Comma) {
            self.bump();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    /// A body literal: an atom, or a comparison between expressions.
    fn literal(&mut self) -> Result<BodyLit> {
        // Atom when a lower identifier is directly followed by '('.
        if matches!(self.peek(), TokenKind::LowerIdent(_)) && *self.peek2() == TokenKind::LParen {
            let pred = self.lower_ident("a predicate name")?;
            self.bump(); // '('
            let mut terms = Vec::new();
            loop {
                terms.push(self.term()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "')'")?;
            return Ok(BodyLit::Atom(Atom { pred, terms }));
        }
        let lhs = self.expr()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected a comparison operator, found {other:?}")))
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(BodyLit::Compare { op, lhs, rhs })
    }

    /// `term := Var | '_' | literal | param`
    fn term(&mut self) -> Result<Term> {
        match self.peek().clone() {
            TokenKind::UpperIdent(v) => {
                self.bump();
                Ok(Term::Var(v))
            }
            TokenKind::Underscore => {
                self.bump();
                Ok(Term::Wildcard)
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Term::Const(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Term::Const(Value::Float(v)))
            }
            TokenKind::Minus => {
                self.bump();
                match self.peek().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        Ok(Term::Const(Value::Int(-v)))
                    }
                    TokenKind::Float(v) => {
                        self.bump();
                        Ok(Term::Const(Value::Float(-v)))
                    }
                    _ => Err(self.error("expected a number after unary '-'")),
                }
            }
            TokenKind::LowerIdent(p) => {
                self.bump();
                Ok(Term::Param(p))
            }
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    /// `expr := mul (('+'|'-') mul)*`
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    /// `mul := unary (('*'|'/') unary)*`
    fn mul(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    /// `unary := '(' expr ')' | term`
    fn unary(&mut self) -> Result<Expr> {
        if self.at(&TokenKind::LParen) {
            self.bump();
            let e = self.expr()?;
            self.expect(TokenKind::RParen, "')'")?;
            return Ok(e);
        }
        Ok(Expr::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_closure_round_trips() {
        let src = "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.to_string(), src);
    }

    #[test]
    fn aggregate_heads() {
        let r = parse_rule("cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).").unwrap();
        let (idx, func, _) = r.head.aggregate().unwrap();
        assert_eq!((idx, *func), (1, AggFunc::Min));
    }

    #[test]
    fn sum_with_pair() {
        let r =
            parse_rule("rank(X, sum<(Y, K)>) <- rank(Y, C), matrix(Y, X, D), K = alpha * (C / D).")
                .unwrap();
        let (_, func, args) = r.head.aggregate().unwrap();
        assert_eq!(*func, AggFunc::Sum);
        assert_eq!(args.len(), 2);
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body[2], BodyLit::Compare { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn sum_arity_checked() {
        let e = parse_rule("r(X, sum<Y>) <- q(X, Y).").unwrap_err();
        assert!(e.to_string().contains("sum takes 2"));
        let e = parse_rule("r(X, min<(Y, Z)>) <- q(X, Y, Z).").unwrap_err();
        assert!(e.to_string().contains("min takes 1"));
    }

    #[test]
    fn constraints_and_arithmetic_precedence() {
        let r = parse_rule("p(X) <- q(X, Y), X = Y + 2 * 3.").unwrap();
        if let BodyLit::Compare { rhs, .. } = &r.body[1] {
            assert_eq!(rhs.to_string(), "(Y + (2 * 3))");
        } else {
            panic!("expected constraint");
        }
    }

    #[test]
    fn wildcards_and_constants() {
        let r = parse_rule("cc2(Y, min<Y>) <- arc(Y, _).").unwrap();
        let atom = r.body_atoms().next().unwrap();
        assert_eq!(atom.terms[1], Term::Wildcard);
        let r = parse_rule("sp(To, min<C>) <- To = start, C = 0.").unwrap();
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn negative_constant() {
        let r = parse_rule("p(X) <- q(X, -5).").unwrap();
        let atom = r.body_atoms().next().unwrap();
        assert_eq!(atom.terms[1], Term::Const(Value::Int(-5)));
    }

    #[test]
    fn facts_have_empty_bodies() {
        let p = parse_program("arc(1, 2). arc(2, 3).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[0].head.terms.len(), 2);
    }

    #[test]
    fn prolog_arrow_accepted() {
        let r = parse_rule("p(X) :- q(X).").unwrap();
        assert_eq!(r.body.len(), 1);
    }

    #[test]
    fn min_as_plain_param_when_not_followed_by_lt() {
        // `min` without `<…>` is an ordinary parameter name.
        let r = parse_rule("p(min) <- q(min).").unwrap();
        assert_eq!(r.head.terms[0], HeadTerm::Plain(Term::Param("min".into())));
    }

    #[test]
    fn missing_dot_is_an_error() {
        let e = parse_program("p(X) <- q(X)").unwrap_err();
        assert!(e.to_string().contains("'.'"));
    }

    #[test]
    fn error_position_reported() {
        let e = parse_program("p(X) <- q(X), .").unwrap_err();
        match e {
            DcdError::Parse { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col >= 14);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn apsp_parses() {
        let src = "path(A, B, min<D>) <- warc(A, B, D).
path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.
apsp(A, B, min<D>) <- path(A, B, D).";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[1].body_atoms().count(), 2);
    }
}
