//! Abstract syntax tree for DCDatalog programs.
//!
//! The surface syntax follows the paper's examples:
//!
//! ```text
//! tc(X, Y) <- arc(X, Y).
//! tc(X, Y) <- tc(X, Z), arc(Z, Y).
//! cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).
//! sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
//! rank(X, sum<(Y, K)>) <- rank(Y, C), matrix(Y, X, D), K = alpha * (C / D).
//! ```
//!
//! Identifiers starting with an upper-case letter are variables; lower-case
//! identifiers are predicate names in atom position and *parameters*
//! (engine-supplied constants such as `start` or `alpha`) in term position.

use dcd_common::Value;
use std::fmt;

/// Aggregate functions allowed in rule heads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `min<V>`.
    Min,
    /// `max<V>`.
    Max,
    /// `sum<(Contributor, V)>`.
    Sum,
    /// `count<Contributor>`.
    Count,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
        };
        f.write_str(s)
    }
}

/// A term in an atom.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// An upper-case variable.
    Var(String),
    /// A literal constant.
    Const(Value),
    /// A lower-case identifier in term position: a named parameter bound
    /// at evaluation time (`start`, `alpha`, `vnum`, …).
    Param(String),
    /// `_` — matches anything, binds nothing.
    Wildcard,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => write!(f, "{c}"),
            Term::Param(p) => f.write_str(p),
            Term::Wildcard => f.write_str("_"),
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Comparison operators in body constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` (filter when both sides bound; binding when the left side is an
    /// unbound variable).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An arithmetic expression over terms.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A leaf term.
    Term(Term),
    /// A binary operation.
    Binary {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Collects the variable names referenced by the expression.
    pub fn vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Term(Term::Var(v)) => out.push(v),
            Expr::Term(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.vars(out);
                rhs.vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

/// A term in a rule head: plain, or an aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum HeadTerm {
    /// A plain term (group-by column for aggregate heads).
    Plain(Term),
    /// An aggregate: `min<V>`, `max<V>`, `sum<(C, V)>`, `count<C>`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// One argument for min/max/count, two (contributor, value) for
        /// sum.
        args: Vec<Expr>,
    },
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Plain(t) => write!(f, "{t}"),
            HeadTerm::Agg { func, args } => {
                if args.len() == 1 {
                    write!(f, "{func}<{}>", args[0])
                } else {
                    write!(f, "{func}<(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")>")
                }
            }
        }
    }
}

/// A predicate application in a rule body.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A rule head: predicate plus (possibly aggregate) terms.
#[derive(Clone, Debug, PartialEq)]
pub struct Head {
    /// Predicate name.
    pub pred: String,
    /// Head terms.
    pub terms: Vec<HeadTerm>,
}

impl Head {
    /// The aggregate spec, if the head carries one. Returns the index of
    /// the aggregate term too.
    pub fn aggregate(&self) -> Option<(usize, &AggFunc, &[Expr])> {
        self.terms.iter().enumerate().find_map(|(i, t)| match t {
            HeadTerm::Agg { func, args } => Some((i, func, args.as_slice())),
            HeadTerm::Plain(_) => None,
        })
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom or a comparison/assignment constraint.
#[derive(Clone, Debug, PartialEq)]
pub enum BodyLit {
    /// A positive atom.
    Atom(Atom),
    /// `lhs op rhs` — filter, or binding when `op` is `=` and `lhs` is a
    /// single unbound variable.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left side.
        lhs: Expr,
        /// Right side.
        rhs: Expr,
    },
}

impl fmt::Display for BodyLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyLit::Atom(a) => write!(f, "{a}"),
            BodyLit::Compare { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A Datalog rule `head <- body.` (a fact when the body is empty).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// The body literals.
    pub body: Vec<BodyLit>,
}

impl Rule {
    /// Body atoms only (skipping constraints).
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            BodyLit::Atom(a) => Some(a),
            _ => None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A parsed program: an ordered list of rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgramAst {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl fmt::Display for ProgramAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(s: &str) -> Term {
        Term::Var(s.into())
    }

    #[test]
    fn display_round_trip_shapes() {
        let rule = Rule {
            head: Head {
                pred: "tc".into(),
                terms: vec![HeadTerm::Plain(var("X")), HeadTerm::Plain(var("Y"))],
            },
            body: vec![
                BodyLit::Atom(Atom {
                    pred: "tc".into(),
                    terms: vec![var("X"), var("Z")],
                }),
                BodyLit::Atom(Atom {
                    pred: "arc".into(),
                    terms: vec![var("Z"), var("Y")],
                }),
            ],
        };
        assert_eq!(rule.to_string(), "tc(X, Y) <- tc(X, Z), arc(Z, Y).");
    }

    #[test]
    fn aggregate_display() {
        let h = Head {
            pred: "rank".into(),
            terms: vec![
                HeadTerm::Plain(var("X")),
                HeadTerm::Agg {
                    func: AggFunc::Sum,
                    args: vec![Expr::Term(var("Y")), Expr::Term(var("K"))],
                },
            ],
        };
        assert_eq!(h.to_string(), "rank(X, sum<(Y, K)>)");
        let (idx, func, args) = h.aggregate().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(*func, AggFunc::Sum);
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn expr_vars_collects_all() {
        let e = Expr::Binary {
            op: ArithOp::Add,
            lhs: Box::new(Expr::Term(var("A"))),
            rhs: Box::new(Expr::Binary {
                op: ArithOp::Mul,
                lhs: Box::new(Expr::Term(Term::Const(Value::Int(2)))),
                rhs: Box::new(Expr::Term(var("B"))),
            }),
        };
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec!["A", "B"]);
        assert_eq!(e.to_string(), "(A + (2 * B))");
    }

    #[test]
    fn body_atoms_skips_constraints() {
        let rule = Rule {
            head: Head {
                pred: "p".into(),
                terms: vec![HeadTerm::Plain(var("X"))],
            },
            body: vec![
                BodyLit::Atom(Atom {
                    pred: "q".into(),
                    terms: vec![var("X")],
                }),
                BodyLit::Compare {
                    op: CmpOp::Ge,
                    lhs: Expr::Term(var("X")),
                    rhs: Expr::Term(Term::Const(Value::Int(3))),
                },
            ],
        };
        assert_eq!(rule.body_atoms().count(), 1);
    }
}
