#![warn(missing_docs)]
//! Library backing the `dcdatalog` command-line tool: argument parsing,
//! delimited-file loading and run orchestration, factored out of `main`
//! so everything is unit-testable.

pub mod args;
pub mod loader;
pub mod runner;

pub use args::{Cli, Command};
pub use runner::run_cli;
