//! Delimited-file loading: whitespace-, comma- or tab-separated rows of
//! integers/floats, with `#` and `%` line comments.

use dcd_common::{DcdError, Result, Tuple, Value};
use std::io::BufRead;
use std::path::Path;

/// Parses one line into values (empty ⇒ `None`).
fn parse_line(line: &str, lineno: usize, path: &str) -> Result<Option<Tuple>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return Ok(None);
    }
    let mut vals = Vec::new();
    for field in line.split([',', '\t', ' ']) {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let v = if let Ok(i) = field.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = field.parse::<f64>() {
            Value::Float(f)
        } else {
            return Err(DcdError::Execution(format!(
                "{path}:{lineno}: '{field}' is not a number"
            )));
        };
        vals.push(v);
    }
    if vals.is_empty() {
        return Ok(None);
    }
    Ok(Some(Tuple::new(&vals)))
}

/// Reads a whole file of rows.
pub fn load_file(path: &Path) -> Result<Vec<Tuple>> {
    let file = std::fs::File::open(path)
        .map_err(|e| DcdError::Execution(format!("cannot open '{}': {e}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    let mut rows = Vec::new();
    let display = path.display().to_string();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| DcdError::Execution(format!("{display}:{}: {e}", i + 1)))?;
        if let Some(t) = parse_line(&line, i + 1, &display)? {
            rows.push(t);
        }
    }
    Ok(rows)
}

/// Parses rows from an in-memory string (testing and stdin support).
pub fn load_str(content: &str, name: &str) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if let Some(t) = parse_line(line, i + 1, name)? {
            rows.push(t);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_delimiters_and_comments() {
        let rows = load_str("# a comment\n1, 2\n3\t4\n5 6\n% another\n\n7,  8\n", "test").unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], Tuple::from_ints(&[1, 2]));
        assert_eq!(rows[3], Tuple::from_ints(&[7, 8]));
    }

    #[test]
    fn floats_and_negatives() {
        let rows = load_str("1 -2 0.5\n", "test").unwrap();
        assert_eq!(
            rows[0],
            Tuple::new(&[Value::Int(1), Value::Int(-2), Value::Float(0.5)])
        );
    }

    #[test]
    fn bad_field_reports_position() {
        let e = load_str("1 2\n3 oops\n", "data.csv").unwrap_err();
        assert!(e.to_string().contains("data.csv:2"), "{e}");
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = load_file(Path::new("/nonexistent/nowhere.csv")).unwrap_err();
        assert!(e.to_string().contains("cannot open"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dcd_cli_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("edges.csv");
        std::fs::write(&p, "1,2\n2,3\n").unwrap();
        let rows = load_file(&p).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
