//! Orchestrates a CLI invocation: parse program, load data, run, print.

use crate::args::{Cli, Command};
use crate::loader::load_file;
use dcd_common::Result;
use dcd_runtime::simulator::{figure3_workload, simulate, SimConfig, SimStrategy};
use dcd_runtime::Strategy;
use dcdatalog::{Engine, EngineConfig, Program};
use std::io::Write;
use std::path::Path;

/// Writes a JSON document to `path` (`-` = the CLI's output stream).
fn write_json(out: &mut impl Write, path: &str, json: &str, what: &str) -> Result<()> {
    if path == "-" {
        let _ = out.write_all(json.as_bytes());
    } else {
        std::fs::write(path, json)
            .map_err(|e| dcd_common::DcdError::Execution(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "wrote {what} to {path}");
    }
    Ok(())
}

/// `simulate`: replay the Figure-3 workload through the deterministic
/// cost-model simulator under the selected strategy.
fn run_simulate(cli: &Cli, out: &mut impl Write) -> Result<()> {
    let strat = match cli.strategy {
        Strategy::Global => SimStrategy::Global,
        Strategy::Ssp { s } => SimStrategy::Ssp(s as u64),
        _ => SimStrategy::DwsAuto,
    };
    let rep = simulate(&figure3_workload(), &SimConfig::default(), strat);
    let _ = writeln!(
        out,
        "simulated {} schedule of the Figure-3 workload ({} workers):",
        rep.strategy,
        rep.iterations.len()
    );
    let _ = writeln!(out, "  makespan: {} ticks", rep.makespan);
    let _ = writeln!(out, "  local iterations per worker: {:?}", rep.iterations);
    let _ = writeln!(out, "  tuples exchanged: {}", rep.messages);
    if let Some(path) = &cli.trace_json {
        write_json(out, path, &rep.trace_json(), "simulated trace")?;
    }
    Ok(())
}

/// Executes the parsed CLI against `out` (stdout in `main`).
pub fn run_cli(cli: &Cli, out: &mut impl Write) -> Result<()> {
    if cli.command == Command::Simulate {
        return run_simulate(cli, out);
    }
    let src = std::fs::read_to_string(&cli.program).map_err(|e| {
        dcd_common::DcdError::Execution(format!("cannot read '{}': {e}", cli.program))
    })?;
    let mut program = Program::parse(&src)?;
    for (name, value) in &cli.params {
        program = program.with_param(name, *value);
    }
    let mut cfg = EngineConfig::default();
    if let Some(w) = cli.workers {
        cfg.workers = w.max(1);
    }
    cfg.strategy = cli.strategy.clone();
    cfg.timeout = cli.timeout;
    cfg.optimized = cli.optimized;
    cfg.trace = cli.trace_json.is_some();

    let mut engine = Engine::new(program, cfg)?;
    if cli.command == Command::Explain {
        let _ = writeln!(out, "{}", engine.explain());
        return Ok(());
    }
    for (name, path) in &cli.edb {
        let rows = load_file(Path::new(path))?;
        engine.load_edb(name, rows)?;
    }
    let result = engine.run()?;
    let names: Vec<String> = if cli.print.is_empty() {
        result
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        cli.print.clone()
    };
    for name in names {
        let rows = result.sorted(&name);
        let _ = writeln!(out, "{name} ({} rows):", rows.len());
        let shown = if cli.limit == 0 {
            rows.len()
        } else {
            cli.limit
        };
        for row in rows.iter().take(shown) {
            let _ = writeln!(out, "  {name}{row}");
        }
        if rows.len() > shown {
            let _ = writeln!(out, "  … {} more", rows.len() - shown);
        }
    }
    let _ = writeln!(
        out,
        "done in {:?} ({} local iterations, {} tuples exchanged)",
        result.stats.elapsed,
        result.stats.total_iterations(),
        result.stats.total_sent()
    );
    if let Some(path) = &cli.stats_json {
        write_json(out, path, &result.stats.report.to_json(), "stats")?;
    }
    if let Some(path) = &cli.trace_json {
        write_json(out, path, &result.stats.report.trace_json(), "trace")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dcd_cli_run_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write(dir: &Path, name: &str, content: &str) -> String {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p.display().to_string()
    }

    fn cli(words: Vec<String>) -> Cli {
        Cli::parse(&words).unwrap()
    }

    #[test]
    fn end_to_end_tc_run() {
        let dir = tmpdir();
        let prog = write(
            &dir,
            "tc.dl",
            "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).\n",
        );
        let edges = write(&dir, "edges.csv", "1,2\n2,3\n");
        let c = cli(vec![
            "run".into(),
            prog,
            "--edb".into(),
            format!("arc={edges}"),
            "--workers".into(),
            "2".into(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("tc (3 rows):"), "{text}");
        assert!(text.contains("tc(1, 3)"), "{text}");
        assert!(text.contains("done in"), "{text}");
    }

    #[test]
    fn explain_prints_plan_without_data() {
        let dir = tmpdir();
        let prog = write(
            &dir,
            "tc2.dl",
            "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).\n",
        );
        let c = cli(vec!["explain".into(), prog]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("stratum 0 (recursive)"), "{text}");
    }

    #[test]
    fn params_flow_through() {
        let dir = tmpdir();
        let prog = write(
            &dir,
            "sp.dl",
            "sp(To, min<C>) <- To = start, C = 0.
             sp(T2, min<C>) <- sp(T1, C1), warc(T1, T2, C2), C = C1 + C2.",
        );
        let w = write(&dir, "w.csv", "1 2 10\n2 3 4\n");
        let c = cli(vec![
            "run".into(),
            prog,
            "--edb".into(),
            format!("warc={w}"),
            "--param".into(),
            "start=1".into(),
            "--limit".into(),
            "0".into(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("sp(3, 14)"), "{text}");
    }

    #[test]
    fn limit_truncates_output() {
        let dir = tmpdir();
        let prog = write(&dir, "t.dl", "t(X, Y) <- e(X, Y).");
        let rows: String = (0..30).map(|i| format!("{i},{}\n", i + 1)).collect();
        let data = write(&dir, "e.csv", &rows);
        let c = cli(vec![
            "run".into(),
            prog,
            "--edb".into(),
            format!("e={data}"),
            "--limit".into(),
            "5".into(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("… 25 more"), "{text}");
    }

    #[test]
    fn stats_json_goes_to_stdout_and_file() {
        let dir = tmpdir();
        let prog = write(
            &dir,
            "tc3.dl",
            "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).\n",
        );
        let edges = write(&dir, "edges3.csv", "1,2\n2,3\n3,4\n");
        // stdout variant
        let c = cli(vec![
            "run".into(),
            prog.clone(),
            "--edb".into(),
            format!("arc={edges}"),
            "--workers".into(),
            "2".into(),
            "--stats-json".into(),
            "-".into(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"schema\": 4"), "{text}");
        assert!(text.contains("\"per_worker\""), "{text}");
        assert!(text.contains("\"exchanged_bytes\""), "{text}");
        assert!(text.contains("\"edb_resident_bytes\""), "{text}");
        assert!(text.contains("\"probe_hits\""), "{text}");
        assert!(text.contains("\"rows_per_batch\""), "{text}");
        assert!(text.contains("\"dropped_events\""), "{text}");
        assert!(text.contains("\"iteration_series\""), "{text}");
        // file variant
        let path = dir.join("stats.json").display().to_string();
        let c = cli(vec![
            "run".into(),
            prog,
            "--edb".into(),
            format!("arc={edges}"),
            "--stats-json".into(),
            path.clone(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"produced\""), "{json}");
    }

    #[test]
    fn trace_json_enables_tracing_and_writes_perfetto_doc() {
        let dir = tmpdir();
        let prog = write(
            &dir,
            "tc4.dl",
            "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).\n",
        );
        let rows: String = (0..60)
            .map(|i| format!("{},{}\n", i % 20, (i * 3 + 1) % 20))
            .collect();
        let edges = write(&dir, "edges4.csv", &rows);
        let path = dir.join("trace.json").display().to_string();
        let c = cli(vec![
            "run".into(),
            prog,
            "--edb".into(),
            format!("arc={edges}"),
            "--workers".into(),
            "2".into(),
            "--trace-json".into(),
            path.clone(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote trace to"), "{text}");
        let doc = dcd_common::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!doc.get("traceEvents").unwrap().items().unwrap().is_empty());
        assert_eq!(
            doc.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("ns")
        );
    }

    #[test]
    fn simulate_prints_schedule_and_exports_trace() {
        let dir = tmpdir();
        let path = dir.join("sim.json").display().to_string();
        let c = cli(vec![
            "simulate".into(),
            "--strategy".into(),
            "global".into(),
            "--trace-json".into(),
            path.clone(),
        ]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("simulated Global schedule"), "{text}");
        assert!(text.contains("makespan:"), "{text}");
        let doc = dcd_common::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("ticks")
        );
        // stdout variant, DWS
        let c = cli(vec!["simulate".into(), "--trace-json".into(), "-".into()]);
        let mut out = Vec::new();
        run_cli(&c, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");
    }

    #[test]
    fn missing_program_file_errors_cleanly() {
        let c = cli(vec!["run".into(), "/nonexistent.dl".into()]);
        let mut out = Vec::new();
        let e = run_cli(&c, &mut out).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
