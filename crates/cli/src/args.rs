//! Hand-rolled argument parsing (the workspace stays dependency-light).

use dcd_common::{DcdError, Result, Value};
use dcd_runtime::Strategy;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
    /// Path to the Datalog program.
    pub program: String,
    /// `--edb name=path` loads.
    pub edb: Vec<(String, String)>,
    /// `--param name=value` bindings.
    pub params: Vec<(String, Value)>,
    /// `--workers N`.
    pub workers: Option<usize>,
    /// `--strategy global|ssp:N|dws`.
    pub strategy: Strategy,
    /// `--timeout SECS`.
    pub timeout: Option<Duration>,
    /// `--print rel` (default: every derived relation).
    pub print: Vec<String>,
    /// `--limit N` rows printed per relation (default 20; 0 = all).
    pub limit: usize,
    /// `--no-optimizations` (Table-4 ablation switch).
    pub optimized: bool,
    /// `--stats-json PATH` writes the per-worker observability report
    /// (`-` = stdout).
    pub stats_json: Option<String>,
    /// `--trace-json PATH` enables per-worker event tracing and writes
    /// the Chrome/Perfetto timeline (`-` = stdout).
    pub trace_json: Option<String>,
}

/// Subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Evaluate the program and print results.
    Run,
    /// Print the physical plan and exit.
    Explain,
    /// Replay the Figure-3 schedule simulator (no program needed).
    Simulate,
}

/// Usage text.
pub const USAGE: &str = "\
usage: dcdatalog <run|explain> <program.dl> [options]
       dcdatalog simulate [options]

options:
  --edb NAME=PATH       load a base relation from a delimited file
                        (whitespace/comma/tab separated; ints or floats);
                        repeatable
  --param NAME=VALUE    bind a program parameter (int or float); repeatable
  --workers N           worker threads (default: available parallelism)
  --strategy S          global | ssp:N | dws   (default dws)
  --timeout SECS        abort evaluation after SECS seconds
  --print REL           print only this relation (repeatable; default all)
  --limit N             max rows printed per relation (default 20; 0 = all)
  --no-optimizations    disable the aggregate-index and existence-cache
                        optimizations (the paper's Table-4 ablation)
  --stats-json PATH     write the per-worker observability report (counters,
                        time splits, DWS ω/τ samples, per-iteration series)
                        as JSON; '-' = stdout
  --trace-json PATH     record per-worker phase spans and export a
                        Chrome/Perfetto timeline (one track per worker plus
                        the DWS controller); '-' = stdout. With 'simulate',
                        exports the abstract-tick schedule in the same
                        schema, so real and simulated runs open side by side

simulate replays the paper's Figure-3 workload through the deterministic
cost-model simulator under --strategy and prints the schedule summary.
";

fn err(msg: impl Into<String>) -> DcdError {
    DcdError::Execution(msg.into())
}

fn parse_value(s: &str) -> Result<Value> {
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    s.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| err(format!("'{s}' is neither an integer nor a float")))
}

fn split_kv(arg: &str, flag: &str) -> Result<(String, String)> {
    match arg.split_once('=') {
        Some((k, v)) if !k.is_empty() && !v.is_empty() => Ok((k.to_string(), v.to_string())),
        _ => Err(err(format!("{flag} expects NAME=VALUE, got '{arg}'"))),
    }
}

impl Cli {
    /// Parses `args` (without the executable name).
    pub fn parse(args: &[String]) -> Result<Cli> {
        let mut it = args.iter().peekable();
        let command = match it.next().map(|s| s.as_str()) {
            Some("run") => Command::Run,
            Some("explain") => Command::Explain,
            Some("simulate") => Command::Simulate,
            Some("--help") | Some("-h") | None => {
                return Err(err(USAGE));
            }
            Some(other) => return Err(err(format!("unknown command '{other}'\n{USAGE}"))),
        };
        let program = if command == Command::Simulate {
            String::new() // the simulator carries its own workload
        } else {
            it.next()
                .ok_or_else(|| err(format!("missing program path\n{USAGE}")))?
                .clone()
        };
        let mut cli = Cli {
            command,
            program,
            edb: Vec::new(),
            params: Vec::new(),
            workers: None,
            strategy: Strategy::Dws,
            timeout: None,
            print: Vec::new(),
            limit: 20,
            optimized: true,
            stats_json: None,
            trace_json: None,
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| err(format!("{name} needs an argument")))
            };
            match flag.as_str() {
                "--edb" => {
                    let (k, v) = split_kv(&value("--edb")?, "--edb")?;
                    cli.edb.push((k, v));
                }
                "--param" => {
                    let (k, v) = split_kv(&value("--param")?, "--param")?;
                    cli.params.push((k, parse_value(&v)?));
                }
                "--workers" => {
                    cli.workers = Some(
                        value("--workers")?
                            .parse()
                            .map_err(|_| err("--workers expects a number"))?,
                    );
                }
                "--strategy" => {
                    let v = value("--strategy")?;
                    cli.strategy = match v.as_str() {
                        "global" => Strategy::Global,
                        "dws" => Strategy::Dws,
                        other => match other.strip_prefix("ssp:") {
                            Some(n) => Strategy::Ssp {
                                s: n.parse().map_err(|_| {
                                    err("--strategy ssp:N expects a number after ':'")
                                })?,
                            },
                            None => {
                                return Err(err(format!(
                                    "unknown strategy '{other}' (global | ssp:N | dws)"
                                )))
                            }
                        },
                    };
                }
                "--timeout" => {
                    cli.timeout = Some(Duration::from_secs(
                        value("--timeout")?
                            .parse()
                            .map_err(|_| err("--timeout expects seconds"))?,
                    ));
                }
                "--print" => cli.print.push(value("--print")?),
                "--limit" => {
                    cli.limit = value("--limit")?
                        .parse()
                        .map_err(|_| err("--limit expects a number"))?;
                }
                "--no-optimizations" => cli.optimized = false,
                "--stats-json" => cli.stats_json = Some(value("--stats-json")?),
                "--trace-json" => cli.trace_json = Some(value("--trace-json")?),
                other => return Err(err(format!("unknown option '{other}'\n{USAGE}"))),
            }
        }
        Ok(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Cli> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Cli::parse(&v)
    }

    #[test]
    fn minimal_run() {
        let c = parse(&["run", "p.dl"]).unwrap();
        assert_eq!(c.command, Command::Run);
        assert_eq!(c.program, "p.dl");
        assert_eq!(c.strategy.name(), "DWS");
        assert!(c.optimized);
    }

    #[test]
    fn full_flag_set() {
        let c = parse(&[
            "run",
            "p.dl",
            "--edb",
            "arc=edges.csv",
            "--edb",
            "warc=w.tsv",
            "--param",
            "start=5",
            "--param",
            "alpha=0.85",
            "--workers",
            "8",
            "--strategy",
            "ssp:3",
            "--timeout",
            "60",
            "--print",
            "tc",
            "--limit",
            "0",
            "--no-optimizations",
            "--stats-json",
            "stats.json",
            "--trace-json",
            "trace.json",
        ])
        .unwrap();
        assert_eq!(c.edb.len(), 2);
        assert_eq!(c.params[0], ("start".into(), Value::Int(5)));
        assert_eq!(c.params[1], ("alpha".into(), Value::Float(0.85)));
        assert_eq!(c.workers, Some(8));
        assert_eq!(c.strategy.name(), "SSP");
        assert_eq!(c.timeout, Some(Duration::from_secs(60)));
        assert_eq!(c.print, vec!["tc"]);
        assert_eq!(c.limit, 0);
        assert!(!c.optimized);
        assert_eq!(c.stats_json.as_deref(), Some("stats.json"));
        assert_eq!(c.trace_json.as_deref(), Some("trace.json"));
    }

    #[test]
    fn simulate_needs_no_program() {
        let c = parse(&["simulate", "--strategy", "global"]).unwrap();
        assert_eq!(c.command, Command::Simulate);
        assert!(c.program.is_empty());
        assert_eq!(c.strategy.name(), "Global");
        let c = parse(&["simulate", "--trace-json", "sim.json"]).unwrap();
        assert_eq!(c.trace_json.as_deref(), Some("sim.json"));
    }

    #[test]
    fn explain_command() {
        assert_eq!(
            parse(&["explain", "p.dl"]).unwrap().command,
            Command::Explain
        );
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&[]).unwrap_err().to_string().contains("usage"));
        assert!(parse(&["frobnicate", "p.dl"])
            .unwrap_err()
            .to_string()
            .contains("unknown command"));
        assert!(parse(&["run"])
            .unwrap_err()
            .to_string()
            .contains("missing program"));
        assert!(parse(&["run", "p.dl", "--edb", "nope"])
            .unwrap_err()
            .to_string()
            .contains("NAME=VALUE"));
        assert!(parse(&["run", "p.dl", "--strategy", "magic"])
            .unwrap_err()
            .to_string()
            .contains("unknown strategy"));
        assert!(parse(&["run", "p.dl", "--param", "x=abc"])
            .unwrap_err()
            .to_string()
            .contains("neither an integer"));
    }
}
