//! The `dcdatalog` command-line tool. See `dcd_cli::args::USAGE`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match dcd_cli::Cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = dcd_cli::run_cli(&cli, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
