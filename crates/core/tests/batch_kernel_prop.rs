//! Differential property tests for the batched delta-join kernel.
//!
//! `Evaluator::eval_delta_batch` must emit *exactly* the rows the
//! tuple-at-a-time reference `eval_delta` emits for the same delta and
//! store state — batching, shared registers and probe memoization are
//! pure mechanics, not semantics. This harness drives both paths
//! round-by-round through a full semi-naive evaluation on a single
//! worker (which sees every route of every relation), comparing the
//! sorted `(head_rel, row)` emissions after each round, on randomized
//! EDBs over the paper's query pool: linear recursion (TC), non-linear
//! with two routes (APSP, SG), `min` inside recursion (CC, SSSP with
//! arithmetic) and `count` with a threshold filter (Attend).

use dcd_common::proptest;
use dcd_common::proptest::prelude::*;
use dcd_common::{Partitioner, Tuple, Value};
use dcd_frontend::physical::{plan, PhysicalPlan, PlannerConfig, RelId};
use dcd_frontend::{analyze, parse_program};
use dcdatalog::catalog::EdbCatalog;
use dcdatalog::eval::{DeltaRow, EvalScratch, Evaluator};
use dcdatalog::queries;
use dcdatalog::store::{Merged, WorkerStore};

/// Builds a single-worker plan + store for `src` with `params` bound and
/// the given EDB rows loaded.
fn build(
    src: &str,
    params: &[(&str, i64)],
    edb: &[(&str, Vec<Tuple>)],
) -> (PhysicalPlan, WorkerStore) {
    let analyzed = analyze(parse_program(src).unwrap()).unwrap();
    let mut cfg = PlannerConfig::default();
    for (name, v) in params {
        cfg.params.insert(name.to_string(), Value::Int(*v));
    }
    let p = plan(&analyzed, &cfg).unwrap();
    let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
    for (name, rows) in edb {
        let id = p.rel_by_name(name).unwrap();
        data[id] = Some(rows.clone());
    }
    let catalog = EdbCatalog::build(&p, &data, &Partitioner::new(1));
    let store = WorkerStore::build(&p, &catalog, 0, true, 64);
    (p, store)
}

/// Merges pending `(rel, row)` emissions into the store; new rows become
/// delta entries for every route of their relation (a single worker owns
/// every partition, mirroring `Worker::merge_local`).
fn merge_pending(
    p: &PhysicalPlan,
    store: &mut WorkerStore,
    pending: Vec<(RelId, Tuple)>,
    delta: &mut Vec<DeltaRow>,
) {
    for (rel, row) in pending {
        if let Merged::New(logical) = store.rec_mut(rel).merge(&row) {
            let decl = p.idb[rel].as_ref().expect("IDB");
            for route in 0..decl.partition_cols.len().max(1) {
                delta.push((rel, route as u8, logical.clone()));
            }
        }
    }
}

/// Runs the full semi-naive evaluation on one worker, evaluating every
/// round through **both** kernels and asserting their emissions agree
/// before advancing the store. Returns the number of delta rounds run —
/// callers can sanity-check the recursion actually fired.
fn differential_fixpoint(p: &PhysicalPlan, store: &mut WorkerStore) -> usize {
    let ev = Evaluator {
        plan: p,
        me: 0,
        workers: 1,
    };
    let mut scratch = EvalScratch::new();
    let mut rounds = 0usize;
    for stratum in &p.strata {
        let mut delta: Vec<DeltaRow> = Vec::new();
        let mut pending: Vec<(RelId, Tuple)> = Vec::new();
        for rule in &stratum.init_rules {
            let mut out = Vec::new();
            ev.eval_init(rule, store, &mut out);
            pending.extend(out.into_iter().map(|t| (rule.head_rel, t)));
        }
        merge_pending(p, store, pending, &mut delta);

        while !delta.is_empty() {
            rounds += 1;
            assert!(rounds < 10_000, "runaway fixpoint");
            let mut rows = std::mem::take(&mut delta);
            rows.sort();

            // Reference: every row through `eval_delta`, one at a time.
            let mut reference: Vec<(RelId, Tuple)> = Vec::new();
            for (rel, route, row) in &rows {
                for rule in &stratum.delta_rules {
                    let spec = rule.delta.as_ref().expect("delta rule");
                    if spec.rel != *rel || spec.route != *route as usize {
                        continue;
                    }
                    let mut out = Vec::new();
                    ev.eval_delta(rule, store, row, &mut out);
                    reference.extend(out.into_iter().map(|t| (rule.head_rel, t)));
                }
            }

            // Batched: cluster by (rel, route), one kernel call per rule,
            // exactly as `Worker::iterate` does.
            let mut batched: Vec<(RelId, Tuple)> = Vec::new();
            let mut start = 0;
            while start < rows.len() {
                let (rel, route) = (rows[start].0, rows[start].1);
                let mut end = start + 1;
                while end < rows.len() && rows[end].0 == rel && rows[end].1 == route {
                    end += 1;
                }
                for rule in &stratum.delta_rules {
                    let spec = rule.delta.as_ref().expect("delta rule");
                    if spec.rel != rel || spec.route != route as usize {
                        continue;
                    }
                    let head = rule.head_rel;
                    let before = batched.len() as u64;
                    let n = ev.eval_delta_batch(
                        rule,
                        store,
                        &rows[start..end],
                        &mut scratch,
                        &mut |t| batched.push((head, t)),
                    );
                    assert_eq!(n, batched.len() as u64 - before, "kernel emission count");
                }
                start = end;
            }

            let mut want = reference.clone();
            want.sort();
            let mut got = batched;
            got.sort();
            assert_eq!(
                got, want,
                "batched kernel diverged from tuple-at-a-time reference"
            );

            merge_pending(p, store, reference, &mut delta);
        }
    }
    rounds
}

fn to_tuples(edges: &[(i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b)| Tuple::from_ints(&[a, b]))
        .collect()
}

fn to_tuples3(edges: &[(i64, i64, i64)]) -> Vec<Tuple> {
    edges
        .iter()
        .map(|&(a, b, c)| Tuple::from_ints(&[a, b, c]))
        .collect()
}

fn edges_strategy(
    max_v: i64,
    max_e: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

fn weighted_strategy(
    max_v: i64,
    max_e: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0..max_v, 0..max_v, 1..8i64), 0..max_e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tc_batch_matches_reference(edges in edges_strategy(16, 60)) {
        let (p, mut store) = build(queries::TC, &[], &[("arc", to_tuples(&edges))]);
        differential_fixpoint(&p, &mut store);
    }

    #[test]
    fn sg_batch_matches_reference(edges in edges_strategy(12, 36)) {
        let (p, mut store) = build(queries::SG, &[], &[("arc", to_tuples(&edges))]);
        differential_fixpoint(&p, &mut store);
    }

    #[test]
    fn cc_batch_matches_reference(edges in edges_strategy(12, 36)) {
        let sym = dcd_datagen::symmetrize(&edges);
        let (p, mut store) = build(queries::CC, &[], &[("arc", to_tuples(&sym))]);
        differential_fixpoint(&p, &mut store);
    }

    #[test]
    fn sssp_batch_matches_reference(warc in weighted_strategy(10, 40)) {
        let (p, mut store) =
            build(queries::SSSP, &[("start", 0)], &[("warc", to_tuples3(&warc))]);
        differential_fixpoint(&p, &mut store);
    }

    #[test]
    fn apsp_batch_matches_reference(warc in weighted_strategy(7, 24)) {
        let (p, mut store) = build(queries::APSP, &[], &[("warc", to_tuples3(&warc))]);
        differential_fixpoint(&p, &mut store);
    }

    #[test]
    fn attend_batch_matches_reference(
        friend in edges_strategy(14, 50),
        organizers in 1..4i64,
    ) {
        let orgs: Vec<Tuple> = (1..=organizers).map(|i| Tuple::from_ints(&[i])).collect();
        let (p, mut store) = build(
            queries::ATTEND,
            &[("threshold", 2)],
            &[("organizer", orgs), ("friend", to_tuples(&friend))],
        );
        differential_fixpoint(&p, &mut store);
    }
}

/// The deterministic anchor: a graph where the kernel's probe clustering
/// demonstrably fires (several delta rows share a join key per round).
#[test]
fn tc_skewed_hub_runs_to_fixpoint() {
    let mut edges = Vec::new();
    for i in 0..12i64 {
        edges.push((i, 12)); // every vertex points at the hub
    }
    edges.push((12, 13));
    edges.push((13, 14));
    let (p, mut store) = build(queries::TC, &[], &[("arc", to_tuples(&edges))]);
    let rounds = differential_fixpoint(&p, &mut store);
    assert!(rounds >= 2, "hub graph must recurse, got {rounds} rounds");
    // 14 arcs + {i→13, i→14 : i < 12} + 12→14 = 14 + 24 + 1.
    assert_eq!(store.rec(p.rel_by_name("tc").unwrap()).len(), 39);
}
