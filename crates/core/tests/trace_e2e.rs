//! End-to-end well-formedness of the per-worker event traces: TC and SG
//! under every strategy × {1, 4} workers, checking that spans on one
//! track nest properly, recorded timestamps are monotone, iteration
//! instants agree with the metrics counters, and the Perfetto export is
//! valid JSON with one track per worker plus the controller track.

use dcd_common::Json;
use dcd_runtime::trace::{EventKind, Mark};
use dcd_runtime::WorkerTrace;
use dcdatalog::{queries, Engine, EngineConfig, Program, Strategy};

fn traced_configs() -> Vec<EngineConfig> {
    let mut out = Vec::new();
    for w in [1usize, 4] {
        for s in [Strategy::Global, Strategy::Ssp { s: 2 }, Strategy::Dws] {
            out.push(EngineConfig::with_workers(w).strategy(s).tracing(true));
        }
    }
    out
}

fn run_traced(prog: Program, cfg: EngineConfig) -> dcdatalog::EvalResult {
    let edges: Vec<(i64, i64)> = (0..240).map(|i| (i % 40, (i * 7 + 1) % 40)).collect();
    let mut e = Engine::new(prog, cfg).unwrap();
    e.load_edges("arc", &edges).unwrap();
    e.run().unwrap()
}

/// Spans on one worker track must be disjoint or properly nested —
/// a partial overlap means two phases claim the same wall time.
fn assert_spans_nest(tr: &WorkerTrace, name: &str) {
    let spans: Vec<(u64, u64)> = tr
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span(_)))
        .map(|e| (e.ts, e.end()))
        .collect();
    for (i, &(s1, e1)) in spans.iter().enumerate() {
        for &(s2, e2) in &spans[i + 1..] {
            let disjoint = e1 <= s2 || e2 <= s1;
            let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
            assert!(
                disjoint || nested,
                "{name} w{}: spans [{s1},{e1}] and [{s2},{e2}] partially overlap",
                tr.worker
            );
        }
    }
}

#[test]
fn traces_are_wellformed_across_queries_and_strategies() {
    for (qname, prog) in [("tc", queries::tc()), ("sg", queries::sg())] {
        for cfg in traced_configs() {
            let name = format!("{qname} {} x{}", cfg.strategy.name(), cfg.workers);
            let workers = cfg.workers;
            let r = run_traced(prog.clone().unwrap(), cfg);
            let rep = &r.stats.report;
            assert_eq!(rep.traces.len(), workers, "{name}");
            for (i, tr) in rep.traces.iter().enumerate() {
                assert_eq!(tr.worker, i, "{name}");
                assert_eq!(tr.dropped, 0, "{name}: default ring must not drop");
                assert!(!tr.events.is_empty(), "{name} w{i}: empty trace");
                // Recording order is span-completion order: the recorded
                // end timestamps are monotone.
                for pair in tr.events.windows(2) {
                    assert!(
                        pair[0].end() <= pair[1].end(),
                        "{name} w{i}: end timestamps not monotone"
                    );
                }
                assert_spans_nest(tr, &name);
                // One Iteration instant per local iteration the metrics
                // counted.
                let iters = tr
                    .events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Instant(Mark::Iteration)))
                    .count() as u64;
                assert_eq!(iters, rep.per_worker[i].iterations, "{name} w{i}");
            }
            // The Perfetto export parses and carries every track.
            let doc = Json::parse(&rep.trace_json())
                .unwrap_or_else(|e| panic!("{name}: trace JSON does not parse: {e}"));
            assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1), "{name}");
            let events = doc.get("traceEvents").unwrap().items().unwrap();
            let names: Vec<&str> = events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
                .filter_map(|e| e.get("args")?.get("name")?.as_str())
                .collect();
            for w in 0..workers {
                assert!(
                    names.contains(&format!("worker {w}").as_str()),
                    "{name}: missing worker {w} track"
                );
            }
            assert!(names.contains(&"dws-controller"), "{name}");
            for ev in events {
                for field in ["name", "ph", "pid", "tid", "ts"] {
                    assert!(
                        ev.get(field).is_some() || ev.get("ph").and_then(Json::as_str) == Some("M"),
                        "{name}: event missing '{field}'"
                    );
                }
            }
        }
    }
}

#[test]
fn dws_spans_cover_worker_wall_time() {
    // The acceptance bar for the schedule view: on a DWS TC run the
    // phase spans account for ≥95% of each worker's recorded timeline —
    // anything less means the view has unexplained holes.
    let cfg = EngineConfig::with_workers(4)
        .strategy(Strategy::Dws)
        .tracing(true);
    let r = run_traced(queries::tc().unwrap(), cfg);
    let rep = &r.stats.report;
    for tr in &rep.traces {
        let cov = tr.span_coverage();
        assert!(
            cov >= 0.95,
            "worker {}: spans cover only {:.1}% of the timeline",
            tr.worker,
            cov * 100.0
        );
    }
    // DWS controller decisions are present and land on the controller
    // track in the export.
    let decisions = rep
        .traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| matches!(e.kind, EventKind::Instant(Mark::DwsDecision)))
        .count();
    assert!(decisions > 0, "DWS run recorded no controller decisions");
    let doc = Json::parse(&rep.trace_json()).unwrap();
    let controller_tid = rep.workers as f64;
    assert!(
        doc.get("traceEvents")
            .unwrap()
            .items()
            .unwrap()
            .iter()
            .any(
                |e| e.get("name").and_then(Json::as_str) == Some("dws-decision")
                    && e.get("tid").and_then(Json::as_f64) == Some(controller_tid)
            ),
        "no dws-decision instant on the controller track"
    );
}

#[test]
fn disabled_tracing_leaves_report_empty_but_shaped() {
    let cfg = EngineConfig::with_workers(2).strategy(Strategy::Dws);
    let r = run_traced(queries::tc().unwrap(), cfg);
    let rep = &r.stats.report;
    assert_eq!(rep.traces.len(), 2, "tracers exist even when disabled");
    assert!(rep.traces.iter().all(|t| t.events.is_empty()));
    assert!(rep.iteration_series().is_empty());
    let json = rep.to_json();
    assert!(json.contains("\"iteration_series\": []"));
    assert!(json.contains("\"dropped_events\":0"));
}

#[test]
fn tiny_ring_truncates_and_reports_drops() {
    // Satellite: overflowing a deliberately tiny ring must be detectable
    // through the report, not silent.
    let mut cfg = EngineConfig::with_workers(2)
        .strategy(Strategy::Dws)
        .tracing(true);
    cfg.trace_capacity = 8;
    let r = run_traced(queries::tc().unwrap(), cfg);
    let rep = &r.stats.report;
    let total_dropped: u64 = (0..rep.workers).map(|i| rep.dropped_events(i)).sum();
    assert!(
        total_dropped > 0,
        "an 8-slot ring must overflow on this run"
    );
    for tr in &rep.traces {
        assert!(tr.events.len() <= 8);
    }
    let json = rep.to_json();
    assert!(!json.contains("\"dropped_events\":0") || total_dropped > 0);
}
