//! Differential tests for the frame-based data plane: every paper query,
//! across Global/SSP/DWS × 1/2/4 workers, must produce exactly the rows of
//! the single-worker reference run — and every result relation must
//! survive a `Frame::from_tuples` → `to_tuples` round-trip byte-identical.
//! The first check pins the flat-frame exchange against the Tuple
//! semantics it replaced; the second pins the wire encoding itself.

use dcd_common::Frame;
use dcdatalog::{queries, Engine, EngineConfig, Program, Strategy, Tuple};

fn configs() -> Vec<EngineConfig> {
    let mut out = Vec::new();
    for w in [1usize, 2, 4] {
        for s in [Strategy::Global, Strategy::Ssp { s: 2 }, Strategy::Dws] {
            out.push(EngineConfig::with_workers(w).strategy(s));
        }
    }
    out
}

/// Runs `program` under `cfg` after `load`, returning the sorted rows of
/// each relation in `rels`.
fn run_once(
    program: Program,
    cfg: EngineConfig,
    load: &dyn Fn(&mut Engine),
    rels: &[&str],
) -> Vec<Vec<Tuple>> {
    let mut e = Engine::new(program, cfg).unwrap();
    load(&mut e);
    let r = e.run().unwrap();
    // Byte-accounting invariant: at the fixpoint every queue is drained,
    // so the bytes producers pushed equal the bytes consumers drained.
    let rep = &r.stats.report;
    assert_eq!(
        rep.exchanged_bytes(),
        rep.total(|w| w.bytes_in),
        "sent/received byte totals must reconcile"
    );
    rels.iter().map(|n| r.sorted(n)).collect()
}

/// The differential harness: single-worker Global is the reference; every
/// other (strategy, workers) combination must match it, and each result
/// relation must round-trip through a `Frame` unchanged.
fn differential(
    make: &dyn Fn() -> Program,
    load: &dyn Fn(&mut Engine),
    rels: &[&str],
    exact: bool,
) {
    let reference = run_once(
        make(),
        EngineConfig::with_workers(1).strategy(Strategy::Global),
        load,
        rels,
    );
    for (rel, rows) in rels.iter().zip(&reference) {
        let arity = rows.first().map(|t| t.arity()).unwrap_or(0);
        let round = Frame::from_tuples(arity, rows).to_tuples();
        assert_eq!(&round, rows, "frame round-trip of '{rel}'");
    }
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let got = run_once(make(), cfg, load, rels);
        compare(&name, rels, &reference, &got, exact);
    }
    // The batched Iterate kernel is the default above; the legacy
    // tuple-at-a-time path must reach the same fixpoint. Running it
    // through the full engine pins `batch_kernel = false` against the
    // batched reference end to end.
    for w in [1usize, 4] {
        let cfg = EngineConfig::with_workers(w).batch_kernel(false);
        let name = format!("tuple-at-a-time x{w}");
        let got = run_once(make(), cfg, load, rels);
        compare(&name, rels, &reference, &got, exact);
    }
    // Table-4 ablation path: with the §6.2 optimizations off there is no
    // merge-side existence cache and no Distribute sent-filter, so every
    // duplicate derivation travels the exchange and must be rejected by
    // the idempotent merge alone.
    let cfg = EngineConfig::with_workers(4).optimizations(false);
    let got = run_once(make(), cfg, load, rels);
    compare("unoptimized x4", rels, &reference, &got, exact);
}

/// Asserts `got` matches `want` relation by relation — bit-exact, or
/// within a float tolerance for order-sensitive sum aggregates.
fn compare(name: &str, rels: &[&str], want: &[Vec<Tuple>], got: &[Vec<Tuple>], exact: bool) {
    for ((rel, want), have) in rels.iter().zip(want).zip(got) {
        if exact {
            assert_eq!(have, want, "{name}: relation '{rel}' diverged");
        } else {
            // Float aggregates (pagerank's sums) are order-sensitive;
            // compare groups with a tolerance instead of bit equality.
            assert_eq!(have.len(), want.len(), "{name}: '{rel}' row count");
            for (a, b) in have.iter().zip(want) {
                assert_eq!(a.arity(), b.arity(), "{name}: '{rel}' arity");
                for (va, vb) in a.values().iter().zip(b.values()) {
                    let (fa, fb) = (va.as_f64(), vb.as_f64());
                    assert!((fa - fb).abs() < 1e-6, "{name}: '{rel}' {a:?} vs {b:?}");
                }
            }
        }
    }
}

#[test]
fn tc_differential() {
    let edges: Vec<(i64, i64)> = (0..60).map(|i| (i % 20, (i * 7 + 1) % 20)).collect();
    differential(
        &|| queries::tc().unwrap(),
        &|e| e.load_edges("arc", &edges).unwrap(),
        &["tc"],
        true,
    );
}

#[test]
fn cc_differential() {
    // Two components with symmetric edges.
    let mut edges = Vec::new();
    for i in 0..10i64 {
        edges.push((i, (i + 1) % 10));
        edges.push(((i + 1) % 10, i));
    }
    for i in 20..26i64 {
        edges.push((i, i + 1));
        edges.push((i + 1, i));
    }
    differential(
        &|| queries::cc().unwrap(),
        &|e| e.load_edges("arc", &edges).unwrap(),
        &["cc"],
        true,
    );
}

#[test]
fn sssp_differential() {
    let warc: Vec<(i64, i64, i64)> = (0..40)
        .map(|i| (i % 12, (i * 5 + 2) % 12, (i % 7) + 1))
        .collect();
    differential(
        &|| queries::sssp(0).unwrap(),
        &|e| e.load_weighted_edges("warc", &warc).unwrap(),
        &["results"],
        true,
    );
}

#[test]
fn apsp_differential() {
    let warc: Vec<(i64, i64, i64)> = (0..30)
        .map(|i| (i % 8, (i * 3 + 1) % 8, (i % 5) + 1))
        .collect();
    differential(
        &|| queries::apsp().unwrap(),
        &|e| e.load_weighted_edges("warc", &warc).unwrap(),
        &["apsp"],
        true,
    );
}

#[test]
fn sg_differential() {
    // Two perfect binary trees sharing no vertices.
    let mut edges = Vec::new();
    for root in [1i64, 100] {
        for p in 0..7 {
            edges.push((root + p, root + 2 * p + 1));
            edges.push((root + p, root + 2 * p + 2));
        }
    }
    differential(
        &|| queries::sg().unwrap(),
        &|e| e.load_edges("arc", &edges).unwrap(),
        &["sg"],
        true,
    );
}

#[test]
fn attend_differential() {
    let mut friend = Vec::new();
    for p in 10..30i64 {
        friend.push((p, 1));
        friend.push((p, 2));
        if p % 2 == 0 {
            friend.push((p, 3));
        }
        friend.push((p + 1, p));
    }
    differential(
        &|| queries::attend(3).unwrap(),
        &|e| {
            e.load_edb(
                "organizer",
                vec![
                    Tuple::from_ints(&[1]),
                    Tuple::from_ints(&[2]),
                    Tuple::from_ints(&[3]),
                ],
            )
            .unwrap();
            e.load_edges("friend", &friend).unwrap();
        },
        &["attend", "cnt"],
        true,
    );
}

#[test]
fn delivery_differential() {
    // A part tree: part p is assembled from 2p+1 and 2p+2; leaves have
    // basic delivery days.
    let mut assbl = Vec::new();
    let mut basic = Vec::new();
    for p in 1..8i64 {
        assbl.push((p, 2 * p + 1));
        assbl.push((p, 2 * p + 2));
    }
    for leaf in 8..16i64 {
        basic.push(Tuple::from_ints(&[leaf, leaf % 5 + 1]));
    }
    differential(
        &|| queries::delivery().unwrap(),
        &|e| {
            e.load_edb("basic", basic.clone()).unwrap();
            e.load_edges("assbl", &assbl).unwrap();
        },
        &["results"],
        true,
    );
}

#[test]
fn pagerank_differential() {
    let n = 8usize;
    let rows: Vec<Tuple> = (0..n as i64)
        .flat_map(|i| {
            [
                Tuple::from_ints(&[i, (i + 1) % n as i64, 2]),
                Tuple::from_ints(&[i, (i + 3) % n as i64, 2]),
            ]
        })
        .collect();
    differential(
        &|| queries::pagerank(0.85, n).unwrap(),
        &|e| e.load_edb("matrix", rows.clone()).unwrap(),
        &["results"],
        false, // float sums: tolerance compare
    );
}
