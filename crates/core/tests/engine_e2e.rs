//! End-to-end evaluation tests: every paper query, small graphs with
//! hand-computable answers, all three coordination strategies, and 1, 2
//! and 4 workers.

use dcdatalog::{queries, Engine, EngineConfig, Program, Strategy, Tuple, Value};

fn strategies() -> Vec<Strategy> {
    vec![Strategy::Global, Strategy::Ssp { s: 2 }, Strategy::Dws]
}

fn configs() -> Vec<EngineConfig> {
    let mut out = Vec::new();
    for w in [1, 2, 4] {
        for s in strategies() {
            out.push(EngineConfig::with_workers(w).strategy(s));
        }
    }
    out
}

#[test]
fn tc_on_a_chain() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
        e.load_edges("arc", &[(1, 2), (2, 3), (3, 4)]).unwrap();
        let r = e.run().unwrap();
        let mut tc = r.sorted("tc");
        tc.dedup();
        assert_eq!(
            tc,
            vec![
                Tuple::from_ints(&[1, 2]),
                Tuple::from_ints(&[1, 3]),
                Tuple::from_ints(&[1, 4]),
                Tuple::from_ints(&[2, 3]),
                Tuple::from_ints(&[2, 4]),
                Tuple::from_ints(&[3, 4]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn tc_on_a_cycle_terminates() {
    for cfg in configs() {
        let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
        e.load_edges("arc", &[(1, 2), (2, 3), (3, 1)]).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.relation("tc").len(), 9, "3-cycle closure is complete");
    }
}

#[test]
fn cc_two_components() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::cc().unwrap(), cfg).unwrap();
        // Component {1,2,3} and {10,11}; CC needs symmetric edges.
        let edges = [(1, 2), (2, 1), (2, 3), (3, 2), (10, 11), (11, 10)];
        e.load_edges("arc", &edges).unwrap();
        let r = e.run().unwrap();
        let cc = r.sorted("cc");
        assert_eq!(
            cc,
            vec![
                Tuple::from_ints(&[1, 1]),
                Tuple::from_ints(&[2, 1]),
                Tuple::from_ints(&[3, 1]),
                Tuple::from_ints(&[10, 10]),
                Tuple::from_ints(&[11, 10]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn sssp_shortest_paths() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::sssp(1).unwrap(), cfg).unwrap();
        // 1→2 (10), 1→3 (2), 3→2 (3): shortest 1→2 is 5.
        e.load_weighted_edges("warc", &[(1, 2, 10), (1, 3, 2), (3, 2, 3), (2, 4, 1)])
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(
            r.sorted("results"),
            vec![
                Tuple::from_ints(&[1, 0]),
                Tuple::from_ints(&[2, 5]),
                Tuple::from_ints(&[3, 2]),
                Tuple::from_ints(&[4, 6]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn apsp_nonlinear() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::apsp().unwrap(), cfg).unwrap();
        e.load_weighted_edges("warc", &[(1, 2, 4), (2, 3, 1), (1, 3, 10), (3, 1, 2)])
            .unwrap();
        let r = e.run().unwrap();
        let apsp = r.sorted("apsp");
        // Distances: 1→2=4, 1→3=5, 2→3=1, 2→1=3, 3→1=2, 3→2=6,
        // self-loops via cycles: 1→1=7, 2→2=4... compute: 2→1=1+2=3,
        // 3→2=2+4=6, 1→1=4+1+2=7, 2→2=3+4? 2→1=3 then 1→2=4 ⇒ 7? No:
        // 2→3→1→2 = 1+2+4 = 7; 3→3 = 2+4+1 = 7; 1→1 = 7.
        assert_eq!(
            apsp,
            vec![
                Tuple::from_ints(&[1, 1, 7]),
                Tuple::from_ints(&[1, 2, 4]),
                Tuple::from_ints(&[1, 3, 5]),
                Tuple::from_ints(&[2, 1, 3]),
                Tuple::from_ints(&[2, 2, 7]),
                Tuple::from_ints(&[2, 3, 1]),
                Tuple::from_ints(&[3, 1, 2]),
                Tuple::from_ints(&[3, 2, 6]),
                Tuple::from_ints(&[3, 3, 7]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn sg_same_generation() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::sg().unwrap(), cfg).unwrap();
        // Perfect binary tree: 1 → {2,3}; 2 → {4,5}; 3 → {6,7}.
        e.load_edges("arc", &[(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (3, 7)])
            .unwrap();
        let r = e.run().unwrap();
        let sg = r.sorted("sg");
        // Generation 1: (2,3),(3,2). Generation 2: all ordered pairs of
        // {4,5,6,7} minus identities = 12.
        assert_eq!(sg.len(), 14, "strategy {name}: {sg:?}");
        assert!(sg.contains(&Tuple::from_ints(&[2, 3])));
        assert!(sg.contains(&Tuple::from_ints(&[4, 7])));
        assert!(!sg.contains(&Tuple::from_ints(&[4, 4])));
    }
}

#[test]
fn delivery_max_levels() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::delivery().unwrap(), cfg).unwrap();
        // Part 1 is assembled from 2 and 3; 2 from 4. Basic delivery days:
        // 3 → 7, 4 → 2.
        e.load_edb(
            "basic",
            vec![Tuple::from_ints(&[3, 7]), Tuple::from_ints(&[4, 2])],
        )
        .unwrap();
        e.load_edges("assbl", &[(1, 2), (1, 3), (2, 4)]).unwrap();
        let r = e.run().unwrap();
        assert_eq!(
            r.sorted("results"),
            vec![
                Tuple::from_ints(&[1, 7]),
                Tuple::from_ints(&[2, 2]),
                Tuple::from_ints(&[3, 7]),
                Tuple::from_ints(&[4, 2]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn attend_mutual_recursion() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::attend(3).unwrap(), cfg).unwrap();
        e.load_edb(
            "organizer",
            vec![
                Tuple::from_ints(&[1]),
                Tuple::from_ints(&[2]),
                Tuple::from_ints(&[3]),
            ],
        )
        .unwrap();
        // 10 is friends with 1,2,3 (≥3 ⇒ attends); 11 with 1,2 and 10
        // (attends once 10 does); 12 with 11 only (never reaches 3).
        e.load_edges(
            "friend",
            &[
                (10, 1),
                (10, 2),
                (10, 3),
                (11, 1),
                (11, 2),
                (11, 10),
                (12, 11),
            ],
        )
        .unwrap();
        let r = e.run().unwrap();
        let attend = r.sorted("attend");
        assert_eq!(
            attend,
            vec![
                Tuple::from_ints(&[1]),
                Tuple::from_ints(&[2]),
                Tuple::from_ints(&[3]),
                Tuple::from_ints(&[10]),
                Tuple::from_ints(&[11]),
            ],
            "strategy {name}"
        );
    }
}

#[test]
fn pagerank_converges_to_uniform_on_a_cycle() {
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut cfg = cfg;
        cfg.sum_epsilon = 1e-10;
        let n = 4usize;
        let mut e = Engine::new(queries::pagerank(0.85, n).unwrap(), cfg).unwrap();
        // 4-cycle: every vertex has out-degree 1 ⇒ uniform PR = 1/4.
        let rows = (0..n as i64)
            .map(|i| Tuple::from_ints(&[i, (i + 1) % n as i64, 1]))
            .collect();
        e.load_edb("matrix", rows).unwrap();
        let r = e.run().unwrap();
        let ranks = r.sorted("results");
        assert_eq!(ranks.len(), n, "strategy {name}");
        for row in &ranks {
            let v = row.values()[1].as_f64();
            assert!(
                (v - 0.25).abs() < 1e-6,
                "strategy {name}: rank {row:?} should be 0.25"
            );
        }
    }
}

#[test]
fn empty_edb_yields_empty_results() {
    let mut e = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[]).unwrap();
    let r = e.run().unwrap();
    assert!(r.relation("tc").is_empty());
}

#[test]
fn missing_edb_is_reported() {
    let e = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(1)).unwrap();
    let err = e.run().unwrap_err();
    assert!(err.to_string().contains("arc"));
}

#[test]
fn inline_facts_seed_derived_relations() {
    let program = Program::parse(
        "tc(0, 99).
         tc(X, Y) <- arc(X, Y).
         tc(X, Y) <- tc(X, Z), arc(Z, Y).",
    )
    .unwrap();
    let mut e = Engine::new(program, EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(99, 100)]).unwrap();
    let r = e.run().unwrap();
    let tc = r.sorted("tc");
    assert!(tc.contains(&Tuple::from_ints(&[0, 99])));
    assert!(tc.contains(&Tuple::from_ints(&[0, 100])), "{tc:?}");
}

#[test]
fn run_is_repeatable() {
    let mut e = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let a = e.run().unwrap().sorted("tc");
    let b = e.run().unwrap().sorted("tc");
    assert_eq!(a, b);
}

#[test]
fn stats_are_populated() {
    let mut e = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(1, 2), (2, 3), (3, 4)]).unwrap();
    let r = e.run().unwrap();
    assert_eq!(r.stats.workers.len(), 2);
    assert!(r.stats.total_iterations() > 0);
    let names = r.relation_names();
    assert_eq!(names, vec!["tc"]);
}

#[test]
fn float_values_survive_round_trip() {
    let program = Program::parse(
        "halved(X, V) <- weight(X, W), V = W / 2.
         halved(X, V) <- halved(X, V), weight(X, V).",
    )
    .unwrap();
    let mut e = Engine::new(program, EngineConfig::with_workers(2)).unwrap();
    e.load_edb(
        "weight",
        vec![Tuple::new(&[Value::Int(1), Value::Float(3.0)])],
    )
    .unwrap();
    let r = e.run().unwrap();
    assert_eq!(
        r.relation("halved"),
        &[Tuple::new(&[Value::Int(1), Value::Float(1.5)])]
    );
}

#[test]
fn nested_loop_over_derived_relation() {
    // `pairs` cross-joins two derived relations: the second is a
    // nested-loop scan of an IDB (broadcast routing fallback).
    let program = Program::parse(
        "odd(X) <- src(X), Y = X / 2, X != Y + Y.
         even(X) <- src(X), Y = X / 2, X = Y + Y.
         pairs(X, Y) <- odd(X), even(Y).",
    )
    .unwrap();
    for workers in [1, 3] {
        let mut e = Engine::new(program.clone(), EngineConfig::with_workers(workers)).unwrap();
        e.load_edb("src", (1..=6).map(|i| Tuple::from_ints(&[i])).collect())
            .unwrap();
        let r = e.run().unwrap();
        // odds {1,3,5} × evens {2,4,6} = 9 pairs.
        assert_eq!(r.relation("pairs").len(), 9, "workers={workers}");
    }
}

#[test]
fn multi_stratum_chain_of_recursions() {
    // Stratum 1: reachability; stratum 2: reachability over the reverse
    // of the derived relation — exercises IDB-as-EDB probing across
    // strata.
    let program = Program::parse(
        "fwd(X, Y) <- arc(X, Y).
         fwd(X, Y) <- fwd(X, Z), arc(Z, Y).
         back(X, Y) <- fwd(Y, X).
         back2(X, Y) <- back(X, Y).
         back2(X, Y) <- back2(X, Z), back(Z, Y).",
    )
    .unwrap();
    let mut e = Engine::new(program, EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let r = e.run().unwrap();
    let back2 = r.sorted("back2");
    assert_eq!(
        back2,
        vec![
            Tuple::from_ints(&[2, 1]),
            Tuple::from_ints(&[3, 1]),
            Tuple::from_ints(&[3, 2]),
        ]
    );
}

#[test]
fn constants_in_body_atoms_filter() {
    let program = Program::parse(
        "from_two(Y) <- arc(2, Y).
         from_two(Y) <- from_two(X), arc(X, Y).",
    )
    .unwrap();
    let mut e = Engine::new(program, EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(1, 5), (2, 6), (6, 7)]).unwrap();
    let r = e.run().unwrap();
    assert_eq!(
        r.sorted("from_two"),
        vec![Tuple::from_ints(&[6]), Tuple::from_ints(&[7])]
    );
}

#[test]
fn wildcards_in_recursive_rules() {
    let program = Program::parse(
        "seen(X) <- arc(X, _).
         seen(Y) <- seen(X), arc(X, Y).",
    )
    .unwrap();
    let mut e = Engine::new(program, EngineConfig::with_workers(2)).unwrap();
    e.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let r = e.run().unwrap();
    assert_eq!(r.relation("seen").len(), 3);
}

#[test]
fn report_reconciles_with_termination_counters() {
    // The tentpole invariant of the observability layer: the per-worker
    // recorders and the termination protocol describe the same exchange.
    let edges: Vec<(i64, i64)> = (0..200).map(|i| (i % 50, (i * 3 + 1) % 50)).collect();
    for cfg in configs() {
        let name = format!("{} x{}", cfg.strategy.name(), cfg.workers);
        let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
        e.load_edges("arc", &edges).unwrap();
        let r = e.run().unwrap();
        let rep = &r.stats.report;
        assert_eq!(rep.per_worker.len(), r.stats.workers.len(), "{name}");
        assert!(
            rep.reconciles(),
            "{name}: produced {} consumed {} sent {} received {}",
            rep.produced,
            rep.consumed,
            rep.total(|w| w.tuples_sent),
            rep.total(|w| w.tuples_in),
        );
        // The legacy WorkerStats are derived from the same recorders.
        for (snap, legacy) in rep.per_worker.iter().zip(&r.stats.workers) {
            assert_eq!(snap.iterations, legacy.iterations, "{name}");
            assert_eq!(snap.tuples_processed, legacy.processed, "{name}");
            assert_eq!(snap.tuples_sent, legacy.sent, "{name}");
            assert_eq!(snap.batches_in, legacy.batches_in, "{name}");
        }
        assert!(rep.total(|w| w.iterations) > 0, "{name}");
    }
}

#[test]
fn dws_report_carries_omega_tau_samples() {
    let edges: Vec<(i64, i64)> = (0..300).map(|i| (i % 60, (i * 7 + 1) % 60)).collect();
    let cfg = EngineConfig::with_workers(4).strategy(Strategy::Dws);
    let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
    e.load_edges("arc", &edges).unwrap();
    let r = e.run().unwrap();
    let rep = &r.stats.report;
    assert_eq!(rep.strategy, "DWS");
    let samples: u64 = rep.total(|w| w.dws_samples.len() as u64 + w.samples_dropped);
    assert!(samples > 0, "DWS must record ω/τ samples");
    let json = rep.to_json();
    assert!(json.contains("\"schema\": 4"));
    assert!(json.contains("\"dws_samples\""));
}

#[test]
fn queue_backpressure_with_tiny_capacity() {
    // A 2-slot SPSC queue forces constant backpressure; the drain-while-
    // retrying path must keep the run deadlock-free and correct.
    let mut cfg = EngineConfig::with_workers(4);
    cfg.queue_capacity = 2;
    cfg.batch_size = 8;
    let edges: Vec<(i64, i64)> = (0..400).map(|i| (i % 100, (i * 7 + 1) % 100)).collect();
    let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
    e.load_edges("arc", &edges).unwrap();
    let r1 = e.run().unwrap();
    let mut e2 = Engine::new(queries::tc().unwrap(), EngineConfig::with_workers(1)).unwrap();
    e2.load_edges("arc", &edges).unwrap();
    let r2 = e2.run().unwrap();
    assert_eq!(r1.sorted("tc"), r2.sorted("tc"));
}

#[test]
fn sent_filter_suppresses_duplicate_sends() {
    // TC on a cyclic graph derives the same closure row from many delta
    // rows. With the §6.2 optimizations on, Distribute's sent-filter must
    // drop exact repeats before they are serialized, so the optimized run
    // exchanges strictly fewer tuples than the ablation — with an
    // identical fixpoint.
    let edges: Vec<(i64, i64)> = (0..240).map(|i| (i % 48, (i * 7 + 1) % 48)).collect();
    let run = |optimized: bool| {
        let cfg = EngineConfig::with_workers(4).optimizations(optimized);
        let mut e = Engine::new(queries::tc().unwrap(), cfg).unwrap();
        e.load_edges("arc", &edges).unwrap();
        e.run().unwrap()
    };
    let opt = run(true);
    let abl = run(false);
    assert_eq!(opt.sorted("tc"), abl.sorted("tc"));
    let (p_opt, p_abl) = (opt.stats.report.produced, abl.stats.report.produced);
    assert!(
        p_opt < p_abl,
        "optimized run must exchange fewer tuples: {p_opt} vs {p_abl}"
    );
}
