#![warn(missing_docs)]
//! # DCDatalog
//!
//! A parallel recursive Datalog engine for shared-memory multicore
//! machines — a from-scratch Rust reproduction of *"Optimizing Parallel
//! Recursive Datalog Evaluation on Multicore Machines"* (SIGMOD 2022).
//!
//! The engine evaluates Datalog programs — including programs with
//! `min`/`max`/`sum`/`count` aggregates *inside* recursion, non-linear
//! recursion (APSP) and mutual recursion — by parallel semi-naive
//! evaluation over hash-partitioned relations. Workers exchange deltas
//! through lock-free SPSC buffers and coordinate with the paper's
//! **Dynamic Weight-based Strategy** (DWS) by default; the `Global`
//! barrier strategy and bounded-staleness `SSP` are available for
//! comparison.
//!
//! ## Quickstart
//!
//! ```
//! use dcdatalog::{queries, Engine, EngineConfig};
//!
//! // Transitive closure of a 4-cycle, on 2 workers.
//! let mut engine = Engine::new(queries::tc()?, EngineConfig::with_workers(2))?;
//! engine.load_edges("arc", &[(1, 2), (2, 3), (3, 4), (4, 1)])?;
//! let result = engine.run()?;
//! assert_eq!(result.relation("tc").len(), 16); // complete digraph
//! # Ok::<(), dcd_common::DcdError>(())
//! ```
//!
//! Custom programs are plain text:
//!
//! ```
//! use dcdatalog::{Engine, EngineConfig, Program};
//!
//! let program = Program::parse(
//!     "reach(Y) <- Y = start.
//!      reach(Y) <- reach(X), arc(X, Y).",
//! )?
//! .with_param("start", 1i64);
//! let mut engine = Engine::new(program, EngineConfig::with_workers(2))?;
//! engine.load_edges("arc", &[(1, 2), (2, 3)])?;
//! let result = engine.run()?;
//! assert_eq!(result.relation("reach").len(), 3);
//! # Ok::<(), dcd_common::DcdError>(())
//! ```

pub mod catalog;
pub mod config;
pub mod engine;
pub mod eval;
pub mod queries;
pub mod report;
pub mod store;
pub mod worker;

pub use catalog::EdbCatalog;
pub use config::EngineConfig;
pub use dcd_common::{DcdError, Result, Tuple, Value};
pub use dcd_runtime::{MetricsSnapshot, Strategy};
pub use engine::{Engine, EvalResult, Program, RunStats};
pub use report::EvalReport;
