//! The rule interpreter: executes [`CompiledRule`] register machines
//! against a worker's local store.
//!
//! A delta rule runs once per delta tuple: bind the tuple into registers,
//! then walk the join chain (index probes of base/recursive relations,
//! nested-loop scans as fallback), applying assignments and filters at
//! their compiled levels, and emit one merge-layout head row per complete
//! binding. Initialization rules instead drive the chain from a leading
//! scan (strided across workers for replicated tables so no derivation is
//! duplicated).

use crate::store::WorkerStore;
use dcd_common::{Tuple, Value, WorkerId};
use dcd_frontend::physical::{
    BindAction, CompiledRule, PhysicalPlan, Placement, Probe, Step, Target,
};
use dcd_storage::EdbRead;

/// Applies a bind list to `row`, updating `regs`; returns `false` when a
/// check fails (candidate rejected).
#[inline]
fn apply_binds(row: &Tuple, binds: &[BindAction], regs: &mut [Value]) -> bool {
    let vals = row.values();
    debug_assert_eq!(vals.len(), binds.len(), "arity mismatch");
    for (v, b) in vals.iter().zip(binds) {
        match b {
            BindAction::Bind(r) => regs[*r as usize] = *v,
            BindAction::Check(r) => {
                if regs[*r as usize] != *v {
                    return false;
                }
            }
            BindAction::CheckConst(c) => {
                if v != c {
                    return false;
                }
            }
            BindAction::Skip => {}
        }
    }
    true
}

/// Applies a step's assignments then filters.
#[inline]
fn apply_level(step: &Step, regs: &mut [Value]) -> bool {
    for a in &step.assigns {
        regs[a.reg as usize] = a.expr.eval(regs);
    }
    step.filters.iter().all(|f| f.eval(regs))
}

/// Evaluation context shared by one worker.
pub struct Evaluator<'a> {
    /// The plan.
    pub plan: &'a PhysicalPlan,
    /// This worker.
    pub me: WorkerId,
    /// Total workers (for strided scans).
    pub workers: usize,
}

impl Evaluator<'_> {
    /// Runs a delta rule for one delta tuple, appending merge-layout head
    /// rows to `out`. Returns the number of rows emitted.
    pub fn eval_delta(
        &self,
        rule: &CompiledRule,
        store: &WorkerStore,
        delta_row: &Tuple,
        out: &mut Vec<Tuple>,
    ) -> usize {
        let spec = rule.delta.as_ref().expect("delta rule");
        let mut regs = vec![Value::Int(0); rule.nregs];
        if !apply_binds(delta_row, &spec.binds, &mut regs) {
            return 0;
        }
        for a in &rule.pre_assigns {
            regs[a.reg as usize] = a.expr.eval(&regs);
        }
        if !rule.pre_filters.iter().all(|f| f.eval(&regs)) {
            return 0;
        }
        let before = out.len();
        self.run_steps(rule, store, 0, &mut regs, out);
        out.len() - before
    }

    /// Runs an initialization rule (leading scan / constant rule),
    /// appending merge-layout head rows to `out`.
    pub fn eval_init(&self, rule: &CompiledRule, store: &WorkerStore, out: &mut Vec<Tuple>) {
        debug_assert!(rule.delta.is_none());
        let mut regs = vec![Value::Int(0); rule.nregs];
        if rule.steps.is_empty() {
            // Constant rule (`sp(To, min<C>) <- To = start, C = 0.`):
            // evaluated on worker 0 only.
            if self.me != 0 {
                return;
            }
            for a in &rule.pre_assigns {
                regs[a.reg as usize] = a.expr.eval(&regs);
            }
            if rule.pre_filters.iter().all(|f| f.eval(&regs)) {
                out.push(self.emit(rule, &regs));
            }
            return;
        }
        self.run_steps(rule, store, 0, &mut regs, out);
    }

    fn emit(&self, rule: &CompiledRule, regs: &[Value]) -> Tuple {
        // Evaluates head expressions straight into the tuple's inline
        // storage — no intermediate Vec on the emit hot path.
        Tuple::from_exact_iter(
            rule.head_exprs.len(),
            rule.head_exprs.iter().map(|e| e.eval(regs)),
        )
    }

    fn run_steps(
        &self,
        rule: &CompiledRule,
        store: &WorkerStore,
        k: usize,
        regs: &mut Vec<Value>,
        out: &mut Vec<Tuple>,
    ) {
        if k == rule.steps.len() {
            out.push(self.emit(rule, regs));
            return;
        }
        let step = &rule.steps[k];
        match (&step.probe, step.target) {
            (Probe::Index { col, key }, Target::Edb(rel)) => {
                let key_bits = key.eval(regs).key_bits();
                // The candidate list borrows the store; binds re-verify the
                // probe column exactly.
                let base = store.base(rel);
                for row in base.probe(*col, key_bits) {
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, out);
                    }
                }
            }
            (Probe::Index { col, key }, Target::Idb { rel, .. }) => {
                let key_bits = key.eval(regs).key_bits();
                // The store is immutable for the whole local iteration
                // (derived rows are buffered and merged afterwards), so the
                // bucket can be borrowed directly.
                for row in store.rec(rel).probe(*col, key_bits) {
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, out);
                    }
                }
            }
            (Probe::Scan, Target::Edb(rel)) => {
                let base = store.base(rel);
                let strided = k == 0
                    && rule.delta.is_none()
                    && matches!(
                        self.plan.edb[rel].as_ref().map(|d| d.placement),
                        Some(Placement::Replicated)
                    );
                for (i, row) in base.rows().iter().enumerate() {
                    if strided && i % self.workers != self.me {
                        continue;
                    }
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, out);
                    }
                }
            }
            (Probe::Scan, Target::Idb { rel, .. }) => {
                let rows = store.rec(rel).rows();
                for row in &rows {
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Merged, WorkerStore};
    use dcd_common::Partitioner;
    use dcd_frontend::physical::{plan, PlannerConfig};
    use dcd_frontend::{analyze, parse_program};

    fn build(src: &str, edb: &[(&str, Vec<Tuple>)]) -> (PhysicalPlan, WorkerStore) {
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let p = plan(&a, &PlannerConfig::default()).unwrap();
        let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        for (name, rows) in edb {
            let id = p.rel_by_name(name).unwrap();
            data[id] = Some(rows.clone());
        }
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &Partitioner::new(1));
        let store = WorkerStore::build(&p, &catalog, 0, true, 64);
        (p, store)
    }

    #[test]
    fn tc_single_worker_one_iteration() {
        let (p, mut store) = build(
            "tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).",
            &[(
                "arc",
                vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 3])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let tc = p.rel_by_name("tc").unwrap();
        // Init: tc := arc.
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out.len(), 2);
        let mut delta = Vec::new();
        for row in &out {
            if let Merged::New(l) = store.rec_mut(tc).merge(row) {
                delta.push(l);
            }
        }
        // One delta step: (1,2) ⋈ arc → (1,3).
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert!(out2.contains(&Tuple::from_ints(&[1, 3])));
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn constraints_filter_during_join() {
        let (p, store) = build(
            "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.",
            &[(
                "arc",
                vec![Tuple::from_ints(&[0, 1]), Tuple::from_ints(&[0, 2])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        out.sort();
        // (1,2) and (2,1); (1,1) and (2,2) removed by X != Y.
        assert_eq!(
            out,
            vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])]
        );
    }

    #[test]
    fn arithmetic_assignment_in_chain() {
        let (p, mut store) = build(
            "sp(To, min<C>) <- src(To), C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.",
            &[
                ("src", vec![Tuple::from_ints(&[1])]),
                (
                    "warc",
                    vec![Tuple::from_ints(&[1, 2, 10]), Tuple::from_ints(&[2, 3, 5])],
                ),
            ],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let sp = p.rel_by_name("sp").unwrap();
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out, vec![Tuple::from_ints(&[1, 0])]);
        let mut delta = Vec::new();
        if let Merged::New(l) = store.rec_mut(sp).merge(&out[0]) {
            delta.push(l);
        }
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert_eq!(out2, vec![Tuple::from_ints(&[2, 10])]);
    }

    #[test]
    fn strided_scan_splits_replicated_tables() {
        let src = "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
                   sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).";
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let p = plan(&a, &PlannerConfig::default()).unwrap();
        let arc_id = p.rel_by_name("arc").unwrap();
        let rows: Vec<Tuple> = (0..10)
            .flat_map(|i| {
                vec![
                    Tuple::from_ints(&[i, 100 + i]),
                    Tuple::from_ints(&[i, 200 + i]),
                ]
            })
            .collect();
        let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        data[arc_id] = Some(rows);
        let part = Partitioner::new(2);
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &part);
        let mut all = Vec::new();
        for me in 0..2 {
            let store = WorkerStore::build(&p, &catalog, me, true, 64);
            let ev = Evaluator {
                plan: &p,
                me,
                workers: 2,
            };
            let mut out = Vec::new();
            for r in &p.strata[0].init_rules {
                ev.eval_init(r, &store, &mut out);
            }
            all.extend(out);
        }
        all.sort();
        all.dedup();
        // Each parent i yields (100+i, 200+i) and (200+i, 100+i); the
        // strided scan must produce each exactly once across workers.
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn constant_rule_runs_on_worker_zero_only() {
        let src = "sp(To, min<C>) <- To = start, C = 0.
                   sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.";
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let mut cfg = PlannerConfig::default();
        cfg.params.insert("start".into(), Value::Int(7));
        let p = plan(&a, &cfg).unwrap();
        let data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        let part = Partitioner::new(3);
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &part);
        for me in 0..3 {
            let store = WorkerStore::build(&p, &catalog, me, true, 64);
            let ev = Evaluator {
                plan: &p,
                me,
                workers: 3,
            };
            let mut out = Vec::new();
            for r in &p.strata[0].init_rules {
                ev.eval_init(r, &store, &mut out);
            }
            if me == 0 {
                assert_eq!(out, vec![Tuple::from_ints(&[7, 0])]);
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn repeated_variable_in_delta_checks_equality() {
        let (p, mut store) = build(
            "loopy(X) <- arc(X, X). loopy(X) <- loopy(X), arc(X, X).",
            &[(
                "arc",
                vec![Tuple::from_ints(&[1, 1]), Tuple::from_ints(&[1, 2])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let loopy = p.rel_by_name("loopy").unwrap();
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out, vec![Tuple::from_ints(&[1])]);
        let mut delta = Vec::new();
        if let Merged::New(l) = store.rec_mut(loopy).merge(&out[0]) {
            delta.push(l);
        }
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert_eq!(out2, vec![Tuple::from_ints(&[1])]);
    }
}
