//! The rule interpreter: executes [`CompiledRule`] register machines
//! against a worker's local store.
//!
//! A delta rule binds a delta tuple into registers, then walks the join
//! chain (index probes of base/recursive relations, nested-loop scans as
//! fallback), applying assignments and filters at their compiled levels,
//! and emits one merge-layout head row per complete binding.
//! Initialization rules instead drive the chain from a leading scan
//! (strided across workers for replicated tables so no derivation is
//! duplicated).
//!
//! The hot path is the *batched* kernel [`Evaluator::eval_delta_batch`]:
//! one `(rel, route)` group of delta rows runs against one rule with a
//! single persistent register file (no per-row allocation) and, when the
//! rule opens with an index probe, the rows sorted by their probe key so
//! runs of equal keys descend the index once and reuse the bucket
//! (probe memoization). [`Evaluator::eval_delta`] is the tuple-at-a-time
//! reference the differential tests pin the kernel against.

use crate::store::WorkerStore;
use dcd_common::{Tuple, Value, WorkerId};
use dcd_frontend::physical::{
    BindAction, CompiledRule, PhysicalPlan, Placement, Probe, RelId, Step, Target,
};
use dcd_storage::EdbRead;

/// A pending delta row: `(relation, route, logical row)`.
pub type DeltaRow = (RelId, u8, Tuple);

/// Applies a bind list to `row`, updating `regs`; returns `false` when a
/// check fails (candidate rejected).
#[inline]
fn apply_binds(row: &Tuple, binds: &[BindAction], regs: &mut [Value]) -> bool {
    let vals = row.values();
    debug_assert_eq!(vals.len(), binds.len(), "arity mismatch");
    for (v, b) in vals.iter().zip(binds) {
        match b {
            BindAction::Bind(r) => regs[*r as usize] = *v,
            BindAction::Check(r) => {
                if regs[*r as usize] != *v {
                    return false;
                }
            }
            BindAction::CheckConst(c) => {
                if v != c {
                    return false;
                }
            }
            BindAction::Skip => {}
        }
    }
    true
}

/// Applies a step's assignments then filters.
#[inline]
fn apply_level(step: &Step, regs: &mut [Value]) -> bool {
    for a in &step.assigns {
        regs[a.reg as usize] = a.expr.eval(regs);
    }
    step.filters.iter().all(|f| f.eval(regs))
}

/// Delta-row prelude: binds the delta tuple into registers and applies the
/// rule's pre-assignments and pre-filters. Returns `false` when the row is
/// rejected before the join chain starts.
#[inline]
fn bind_prelude(rule: &CompiledRule, row: &Tuple, regs: &mut [Value]) -> bool {
    let spec = rule.delta.as_ref().expect("delta rule");
    if !apply_binds(row, &spec.binds, regs) {
        return false;
    }
    for a in &rule.pre_assigns {
        regs[a.reg as usize] = a.expr.eval(regs);
    }
    rule.pre_filters.iter().all(|f| f.eval(regs))
}

/// Reusable per-worker evaluation state for the batched kernel: one
/// register file (resized per rule, never reallocated per row), the
/// first-probe sort buffer, and the probe-memoization counters. A worker
/// allocates one of these and threads it through every
/// [`Evaluator::eval_delta_batch`] call, so the steady-state hot loop
/// performs zero allocations per delta row.
#[derive(Default)]
pub struct EvalScratch {
    regs: Vec<Value>,
    /// `(first-probe key, batch row index)` pairs, sorted to cluster rows
    /// that probe the same key.
    order: Vec<(u64, u32)>,
    /// Index descents performed by batched first probes.
    pub probe_hits: u64,
    /// Batched first probes answered by reusing the previous row's bucket.
    pub probe_reuse: u64,
}

impl EvalScratch {
    /// A fresh scratch with zeroed counters.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// The memoized bucket of the batched kernel's first probe.
enum Bucket<'a> {
    /// A recursive relation's index bucket.
    Idb(&'a [Tuple]),
    /// A base relation's row ids plus the row store to resolve them.
    Edb { rows: &'a [Tuple], ids: &'a [u32] },
}

/// Evaluation context shared by one worker.
pub struct Evaluator<'a> {
    /// The plan.
    pub plan: &'a PhysicalPlan,
    /// This worker.
    pub me: WorkerId,
    /// Total workers (for strided scans).
    pub workers: usize,
}

impl Evaluator<'_> {
    /// Runs a delta rule for one delta tuple, appending merge-layout head
    /// rows to `out`. Returns the number of rows emitted. This is the
    /// tuple-at-a-time reference path; the engine's default is
    /// [`Evaluator::eval_delta_batch`].
    pub fn eval_delta(
        &self,
        rule: &CompiledRule,
        store: &WorkerStore,
        delta_row: &Tuple,
        out: &mut Vec<Tuple>,
    ) -> usize {
        let mut regs = vec![Value::Int(0); rule.nregs];
        if !bind_prelude(rule, delta_row, &mut regs) {
            return 0;
        }
        let before = out.len();
        self.run_steps(rule, store, 0, &mut regs, &mut |t| out.push(t));
        out.len() - before
    }

    /// The batched delta-join kernel: runs `rule` over a whole
    /// `(rel, route)` group of delta rows, feeding head rows to `sink`.
    /// Returns the number of rows emitted.
    ///
    /// The register file lives in `scratch` and is sized once per rule, so
    /// the per-row cost is pure binding work. When the rule opens with an
    /// index probe, the surviving rows are sorted by their probe key
    /// (stably, preserving arrival order within a key) and runs of equal
    /// keys reuse one index descent — `scratch` counts descents
    /// (`probe_hits`) and reuses (`probe_reuse`).
    pub fn eval_delta_batch(
        &self,
        rule: &CompiledRule,
        store: &WorkerStore,
        batch: &[DeltaRow],
        scratch: &mut EvalScratch,
        sink: &mut impl FnMut(Tuple),
    ) -> u64 {
        let EvalScratch {
            regs,
            order,
            probe_hits,
            probe_reuse,
        } = scratch;
        regs.clear();
        regs.resize(rule.nregs, Value::Int(0));
        let mut emitted = 0u64;
        let mut counting = |t: Tuple| {
            emitted += 1;
            sink(t)
        };

        let first_index = matches!(
            rule.steps.first(),
            Some(Step {
                probe: Probe::Index { .. },
                ..
            })
        );
        if !first_index || batch.len() == 1 {
            // No leading index probe (or nothing to cluster): run the
            // chain per row, still sharing the one register file.
            for (_, _, row) in batch {
                if bind_prelude(rule, row, regs) {
                    self.run_steps(rule, store, 0, regs, &mut counting);
                }
            }
            return emitted;
        }

        let step = &rule.steps[0];
        let Probe::Index { col, key } = &step.probe else {
            unreachable!("first_index checked above")
        };

        // Pass 1: prelude every row; survivors record their first-probe
        // key. The stable sort clusters equal keys without reordering
        // rows within a key.
        order.clear();
        for (i, (_, _, row)) in batch.iter().enumerate() {
            if bind_prelude(rule, row, regs) {
                order.push((key.eval(regs).key_bits(), i as u32));
            }
        }
        order.sort_by_key(|&(k, _)| k);

        // Pass 2: walk the clustered rows; descend the index only when the
        // key changes. The store is immutable for the whole local
        // iteration, so the bucket borrow stays valid across rows.
        let mut cached: Option<(u64, Bucket<'_>)> = None;
        for &(key_bits, i) in order.iter() {
            let (_, _, row) = &batch[i as usize];
            // Re-run the prelude: it passed in pass 1 (it is deterministic)
            // but the shared registers now hold the previous row's state.
            let ok = bind_prelude(rule, row, regs);
            debug_assert!(ok, "prelude re-run diverged");
            if !ok {
                continue;
            }
            match &cached {
                Some((k, _)) if *k == key_bits => *probe_reuse += 1,
                _ => {
                    *probe_hits += 1;
                    let bucket = match step.target {
                        Target::Idb { rel, .. } => {
                            Bucket::Idb(store.rec(rel).probe(*col, key_bits))
                        }
                        Target::Edb(rel) => {
                            let base = store.base(rel);
                            Bucket::Edb {
                                rows: base.rows(),
                                ids: base.probe_ids(*col, key_bits),
                            }
                        }
                    };
                    cached = Some((key_bits, bucket));
                }
            }
            let (_, bucket) = cached.as_ref().expect("bucket cached above");
            match bucket {
                Bucket::Idb(rows) => {
                    for cand in *rows {
                        if apply_binds(cand, &step.binds, regs) && apply_level(step, regs) {
                            self.run_steps(rule, store, 1, regs, &mut counting);
                        }
                    }
                }
                Bucket::Edb { rows, ids } => {
                    for &id in *ids {
                        let cand = &rows[id as usize];
                        if apply_binds(cand, &step.binds, regs) && apply_level(step, regs) {
                            self.run_steps(rule, store, 1, regs, &mut counting);
                        }
                    }
                }
            }
        }
        emitted
    }

    /// Runs an initialization rule (leading scan / constant rule),
    /// appending merge-layout head rows to `out`.
    pub fn eval_init(&self, rule: &CompiledRule, store: &WorkerStore, out: &mut Vec<Tuple>) {
        debug_assert!(rule.delta.is_none());
        let mut regs = vec![Value::Int(0); rule.nregs];
        if rule.steps.is_empty() {
            // Constant rule (`sp(To, min<C>) <- To = start, C = 0.`):
            // evaluated on worker 0 only.
            if self.me != 0 {
                return;
            }
            for a in &rule.pre_assigns {
                regs[a.reg as usize] = a.expr.eval(&regs);
            }
            if rule.pre_filters.iter().all(|f| f.eval(&regs)) {
                out.push(self.emit(rule, &regs));
            }
            return;
        }
        self.run_steps(rule, store, 0, &mut regs, &mut |t| out.push(t));
    }

    fn emit(&self, rule: &CompiledRule, regs: &[Value]) -> Tuple {
        // Evaluates head expressions straight into the tuple's inline
        // storage — no intermediate Vec on the emit hot path.
        Tuple::from_exact_iter(
            rule.head_exprs.len(),
            rule.head_exprs.iter().map(|e| e.eval(regs)),
        )
    }

    fn run_steps(
        &self,
        rule: &CompiledRule,
        store: &WorkerStore,
        k: usize,
        regs: &mut [Value],
        sink: &mut impl FnMut(Tuple),
    ) {
        if k == rule.steps.len() {
            sink(self.emit(rule, regs));
            return;
        }
        let step = &rule.steps[k];
        match (&step.probe, step.target) {
            (Probe::Index { col, key }, Target::Edb(rel)) => {
                let key_bits = key.eval(regs).key_bits();
                // The candidate list borrows the store; binds re-verify the
                // probe column exactly.
                let base = store.base(rel);
                for row in base.probe(*col, key_bits) {
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, sink);
                    }
                }
            }
            (Probe::Index { col, key }, Target::Idb { rel, .. }) => {
                let key_bits = key.eval(regs).key_bits();
                // The store is immutable for the whole local iteration
                // (derived rows are buffered and merged afterwards), so the
                // bucket can be borrowed directly.
                for row in store.rec(rel).probe(*col, key_bits) {
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, sink);
                    }
                }
            }
            (Probe::Scan, Target::Edb(rel)) => {
                let base = store.base(rel);
                let strided = k == 0
                    && rule.delta.is_none()
                    && matches!(
                        self.plan.edb[rel].as_ref().map(|d| d.placement),
                        Some(Placement::Replicated)
                    );
                for (i, row) in base.rows().iter().enumerate() {
                    if strided && i % self.workers != self.me {
                        continue;
                    }
                    if apply_binds(row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, sink);
                    }
                }
            }
            (Probe::Scan, Target::Idb { rel, .. }) => {
                // Stream the store's logical rows in place — no
                // materialized Vec per scan step.
                for row in store.rec(rel).scan() {
                    if apply_binds(&row, &step.binds, regs) && apply_level(step, regs) {
                        self.run_steps(rule, store, k + 1, regs, sink);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Merged, WorkerStore};
    use dcd_common::Partitioner;
    use dcd_frontend::physical::{plan, PlannerConfig};
    use dcd_frontend::{analyze, parse_program};

    fn build(src: &str, edb: &[(&str, Vec<Tuple>)]) -> (PhysicalPlan, WorkerStore) {
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let p = plan(&a, &PlannerConfig::default()).unwrap();
        let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        for (name, rows) in edb {
            let id = p.rel_by_name(name).unwrap();
            data[id] = Some(rows.clone());
        }
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &Partitioner::new(1));
        let store = WorkerStore::build(&p, &catalog, 0, true, 64);
        (p, store)
    }

    #[test]
    fn tc_single_worker_one_iteration() {
        let (p, mut store) = build(
            "tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).",
            &[(
                "arc",
                vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 3])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let tc = p.rel_by_name("tc").unwrap();
        // Init: tc := arc.
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out.len(), 2);
        let mut delta = Vec::new();
        for row in &out {
            if let Merged::New(l) = store.rec_mut(tc).merge(row) {
                delta.push(l);
            }
        }
        // One delta step: (1,2) ⋈ arc → (1,3).
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert!(out2.contains(&Tuple::from_ints(&[1, 3])));
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn constraints_filter_during_join() {
        let (p, store) = build(
            "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.",
            &[(
                "arc",
                vec![Tuple::from_ints(&[0, 1]), Tuple::from_ints(&[0, 2])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        out.sort();
        // (1,2) and (2,1); (1,1) and (2,2) removed by X != Y.
        assert_eq!(
            out,
            vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])]
        );
    }

    #[test]
    fn arithmetic_assignment_in_chain() {
        let (p, mut store) = build(
            "sp(To, min<C>) <- src(To), C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.",
            &[
                ("src", vec![Tuple::from_ints(&[1])]),
                (
                    "warc",
                    vec![Tuple::from_ints(&[1, 2, 10]), Tuple::from_ints(&[2, 3, 5])],
                ),
            ],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let sp = p.rel_by_name("sp").unwrap();
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out, vec![Tuple::from_ints(&[1, 0])]);
        let mut delta = Vec::new();
        if let Merged::New(l) = store.rec_mut(sp).merge(&out[0]) {
            delta.push(l);
        }
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert_eq!(out2, vec![Tuple::from_ints(&[2, 10])]);
    }

    #[test]
    fn strided_scan_splits_replicated_tables() {
        let src = "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
                   sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).";
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let p = plan(&a, &PlannerConfig::default()).unwrap();
        let arc_id = p.rel_by_name("arc").unwrap();
        let rows: Vec<Tuple> = (0..10)
            .flat_map(|i| {
                vec![
                    Tuple::from_ints(&[i, 100 + i]),
                    Tuple::from_ints(&[i, 200 + i]),
                ]
            })
            .collect();
        let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        data[arc_id] = Some(rows);
        let part = Partitioner::new(2);
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &part);
        let mut all = Vec::new();
        for me in 0..2 {
            let store = WorkerStore::build(&p, &catalog, me, true, 64);
            let ev = Evaluator {
                plan: &p,
                me,
                workers: 2,
            };
            let mut out = Vec::new();
            for r in &p.strata[0].init_rules {
                ev.eval_init(r, &store, &mut out);
            }
            all.extend(out);
        }
        all.sort();
        all.dedup();
        // Each parent i yields (100+i, 200+i) and (200+i, 100+i); the
        // strided scan must produce each exactly once across workers.
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn constant_rule_runs_on_worker_zero_only() {
        let src = "sp(To, min<C>) <- To = start, C = 0.
                   sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.";
        let a = analyze(parse_program(src).unwrap()).unwrap();
        let mut cfg = PlannerConfig::default();
        cfg.params.insert("start".into(), Value::Int(7));
        let p = plan(&a, &cfg).unwrap();
        let data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        let part = Partitioner::new(3);
        let catalog = crate::catalog::EdbCatalog::build(&p, &data, &part);
        for me in 0..3 {
            let store = WorkerStore::build(&p, &catalog, me, true, 64);
            let ev = Evaluator {
                plan: &p,
                me,
                workers: 3,
            };
            let mut out = Vec::new();
            for r in &p.strata[0].init_rules {
                ev.eval_init(r, &store, &mut out);
            }
            if me == 0 {
                assert_eq!(out, vec![Tuple::from_ints(&[7, 0])]);
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn batch_kernel_matches_tuple_at_a_time_and_reuses_probes() {
        // Arcs chosen so two tc delta rows probe the same key (2): the
        // kernel must reuse the bucket and still emit identical rows.
        let (p, mut store) = build(
            "tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).",
            &[(
                "arc",
                vec![
                    Tuple::from_ints(&[0, 2]),
                    Tuple::from_ints(&[1, 2]),
                    Tuple::from_ints(&[2, 3]),
                    Tuple::from_ints(&[2, 4]),
                    Tuple::from_ints(&[3, 5]),
                ],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let tc = p.rel_by_name("tc").unwrap();
        let mut init = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut init);
        }
        let mut batch: Vec<DeltaRow> = Vec::new();
        for row in &init {
            if let Merged::New(l) = store.rec_mut(tc).merge(row) {
                batch.push((tc, 0, l));
            }
        }
        let rule = &p.strata[0].delta_rules[0];
        let mut want = Vec::new();
        for (_, _, row) in &batch {
            ev.eval_delta(rule, &store, row, &mut want);
        }
        let mut got = Vec::new();
        let mut scratch = EvalScratch::new();
        let n = ev.eval_delta_batch(rule, &store, &batch, &mut scratch, &mut |t| got.push(t));
        assert_eq!(n as usize, got.len());
        want.sort();
        got.sort();
        assert_eq!(got, want);
        // Keys probed: 2, 2, 3, 4, 5 → one reused descent.
        assert_eq!(scratch.probe_reuse, 1);
        assert_eq!(scratch.probe_hits, 4);
    }

    #[test]
    fn batch_kernel_handles_prefilters_and_arithmetic() {
        let (p, mut store) = build(
            "sp(To, min<C>) <- src(To), C = 0.
             sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2, C < 100.",
            &[
                ("src", vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[4])]),
                (
                    "warc",
                    vec![
                        Tuple::from_ints(&[1, 2, 10]),
                        Tuple::from_ints(&[1, 3, 200]),
                        Tuple::from_ints(&[4, 5, 7]),
                    ],
                ),
            ],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let sp = p.rel_by_name("sp").unwrap();
        let mut init = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut init);
        }
        let mut batch: Vec<DeltaRow> = Vec::new();
        for row in &init {
            if let Merged::New(l) = store.rec_mut(sp).merge(row) {
                batch.push((sp, 0, l));
            }
        }
        let rule = &p.strata[0].delta_rules[0];
        let mut want = Vec::new();
        for (_, _, row) in &batch {
            ev.eval_delta(rule, &store, row, &mut want);
        }
        let mut got = Vec::new();
        let mut scratch = EvalScratch::new();
        ev.eval_delta_batch(rule, &store, &batch, &mut scratch, &mut |t| got.push(t));
        want.sort();
        got.sort();
        assert_eq!(got, want);
        // The C < 100 filter prunes (1 → 3, 200) in both paths.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn repeated_variable_in_delta_checks_equality() {
        let (p, mut store) = build(
            "loopy(X) <- arc(X, X). loopy(X) <- loopy(X), arc(X, X).",
            &[(
                "arc",
                vec![Tuple::from_ints(&[1, 1]), Tuple::from_ints(&[1, 2])],
            )],
        );
        let ev = Evaluator {
            plan: &p,
            me: 0,
            workers: 1,
        };
        let loopy = p.rel_by_name("loopy").unwrap();
        let mut out = Vec::new();
        for r in &p.strata[0].init_rules {
            ev.eval_init(r, &store, &mut out);
        }
        assert_eq!(out, vec![Tuple::from_ints(&[1])]);
        let mut delta = Vec::new();
        if let Merged::New(l) = store.rec_mut(loopy).merge(&out[0]) {
            delta.push(l);
        }
        let mut out2 = Vec::new();
        for d in &delta {
            for r in &p.strata[0].delta_rules {
                ev.eval_delta(r, &store, d, &mut out2);
            }
        }
        assert_eq!(out2, vec![Tuple::from_ints(&[1])]);
    }
}
