//! The per-worker evaluation loop: Algorithm 1 (Global), its SSP
//! relaxation, and Algorithm 2 (DWS).
//!
//! Every worker runs the strata in order, synchronizing at stratum entry.
//! Within a recursive stratum it repeatedly: drains its message buffers
//! (Gather), merges the arrivals into its local stores (emitting delta
//! rows), decides per its strategy whether to wait or proceed, evaluates
//! one local semi-naive iteration, and distributes the derived tuples
//! (Distribute). Termination is per-strategy: the round barrier's all-zero
//! round for Global, the produced/consumed counter protocol for SSP/DWS.
//!
//! Routing note: a derived tuple is *sent* once per distinct destination
//! worker, and every receiver re-derives locally which of the relation's
//! routes (§4.3) apply to it — this keeps multi-route relations (APSP)
//! correct even when two routes hash to the same worker.

use crate::config::EngineConfig;
use crate::eval::{DeltaRow, EvalScratch, Evaluator};
use crate::store::{Merged, WorkerStore};
use dcd_common::hash::FastMap;
use dcd_common::{DcdError, Frame, Partitioner, Result, Tuple, WorkerId};
use dcd_frontend::physical::{PhysicalPlan, RelId};
use dcd_runtime::trace::{Mark, Phase};
use dcd_runtime::{
    Batch, BufferMatrix, DwsController, DwsSample, IdleOutcome, MetricsRecorder, RoundBarrier,
    SspClock, Strategy, Termination, Tracer, WorkerEndpoints,
};
use dcd_storage::TupleCache;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Per-stratum coordination objects (shared by all workers).
pub struct StratumCoord {
    /// Entry synchronization (also separates init sends from round 1).
    pub entry: Barrier,
    /// Post-init synchronization.
    pub post_init: Barrier,
    /// Counter-based fixpoint detection (SSP/DWS).
    pub termination: Termination,
    /// Per-global-iteration barrier (Global).
    pub round: RoundBarrier,
    /// Bounded-staleness clock (SSP).
    pub ssp: SspClock,
}

/// All shared coordination state for one evaluation.
pub struct Coordination {
    /// The message-buffer matrix.
    pub buffers: BufferMatrix,
    /// The discriminating function `H`.
    pub part: Partitioner,
    /// Per-stratum coordination.
    pub strata: Vec<StratumCoord>,
    /// Per-worker observability (indexed by worker id).
    pub metrics: Vec<MetricsRecorder>,
    /// Per-worker event tracers (indexed by worker id). All share one
    /// epoch `Instant`, so the exported tracks align on a common clock.
    /// No-ops unless `EngineConfig::trace` is set.
    pub tracers: Vec<Tracer>,
    /// Error/timeout flag.
    pub abort: AtomicBool,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Coordination {
    /// Builds coordination state for `plan` under `cfg`.
    pub fn new(plan: &PhysicalPlan, cfg: &EngineConfig) -> Self {
        let n = cfg.workers;
        let ssp_s = match cfg.strategy {
            Strategy::Ssp { s } => s,
            _ => 0,
        };
        let strata = plan
            .strata
            .iter()
            .map(|_| StratumCoord {
                entry: Barrier::new(n),
                post_init: Barrier::new(n),
                termination: Termination::new(n, cfg.idle_poll),
                round: RoundBarrier::new(n),
                ssp: SspClock::new(n, ssp_s),
            })
            .collect();
        let epoch = Instant::now();
        Coordination {
            buffers: BufferMatrix::new(n, cfg.queue_capacity),
            part: Partitioner::new(n),
            strata,
            metrics: (0..n).map(|_| MetricsRecorder::default()).collect(),
            tracers: (0..n)
                .map(|_| {
                    if cfg.trace {
                        Tracer::new(cfg.trace_capacity, epoch)
                    } else {
                        Tracer::disabled(epoch)
                    }
                })
                .collect(),
            abort: AtomicBool::new(false),
            deadline: cfg.timeout.map(|t| Instant::now() + t),
        }
    }

    /// Sum of `(produced, consumed)` termination counters over all strata.
    /// After a completed evaluation the two totals are equal (that is the
    /// fixpoint condition); the observability layer reconciles the
    /// per-worker recorders against them.
    pub fn termination_totals(&self) -> (u64, u64) {
        self.strata
            .iter()
            .map(|s| s.termination.counters())
            .fold((0, 0), |(p, c), (sp, sc)| (p + sp, c + sc))
    }

    /// Flags an abort and releases everything blocked.
    pub fn cancel(&self) {
        self.abort.store(true, Ordering::SeqCst);
        for s in &self.strata {
            s.termination.cancel();
            s.round.cancel();
        }
    }

    fn check_deadline(&self) -> Result<()> {
        if self.abort.load(Ordering::SeqCst) {
            return Err(DcdError::Execution("evaluation aborted".into()));
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                self.cancel();
                return Err(DcdError::Execution("evaluation timed out".into()));
            }
        }
        Ok(())
    }
}

/// Per-worker statistics.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Local iterations executed.
    pub iterations: u64,
    /// Delta tuples processed.
    pub processed: u64,
    /// Tuples sent to other workers.
    pub sent: u64,
    /// Batches received.
    pub batches_in: u64,
}

/// Pre-Distribute partial aggregation (§5.2.3): merge-layout rows derived
/// within one local iteration collapse per key before routing — min/max
/// keep the best row per group, sum/count keep the latest row per
/// (group, contributor). Set-relation rows skip the map entirely: their
/// only collapse is exact-duplicate elimination, which Distribute's
/// sent-filter (and, ultimately, the idempotent merge) already performs
/// — hashing every head row into a per-round map just to drop dupes a
/// later stage drops anyway was pure round-trip cost.
#[derive(Default)]
struct PartialAgg {
    best: FastMap<(RelId, Tuple), Tuple>,
    rows: Vec<(RelId, Tuple)>,
}

impl PartialAgg {
    fn push(&mut self, plan: &PhysicalPlan, rel: RelId, row: Tuple) {
        use dcd_frontend::ast::AggFunc;
        use dcd_frontend::physical::StorageKind;
        let decl = plan.idb[rel].as_ref().expect("IDB head");
        match &decl.kind {
            StorageKind::Set => {
                self.rows.push((rel, row));
            }
            StorageKind::Agg {
                func, group_cols, ..
            } => {
                let (key_cols, keep_better): (usize, Option<AggFunc>) = match func {
                    AggFunc::Min | AggFunc::Max => (*group_cols, Some(*func)),
                    // Contributor is part of the key; later rows replace.
                    AggFunc::Sum | AggFunc::Count => (*group_cols + 1, None),
                };
                let key = row.prefix(key_cols);
                match self.best.entry((rel, key)) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(row);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => match keep_better {
                        Some(AggFunc::Min) => {
                            if row.values()[key_cols] < o.get().values()[key_cols] {
                                o.insert(row);
                            }
                        }
                        Some(AggFunc::Max) => {
                            if row.values()[key_cols] > o.get().values()[key_cols] {
                                o.insert(row);
                            }
                        }
                        _ => {
                            o.insert(row); // sum: latest contribution wins
                        }
                    },
                }
            }
        }
    }

    /// Consumes the accumulator, yielding `(head relation, row)` pairs
    /// straight into Distribute — no intermediate `Vec` round-trip.
    fn drain(self) -> impl Iterator<Item = (RelId, Tuple)> {
        self.rows
            .into_iter()
            .chain(self.best.into_iter().map(|((rel, _), row)| (rel, row)))
    }
}

/// Pending delta rows: `(relation, route, logical row)`.
struct DeltaSet {
    rows: Vec<DeltaRow>,
}

impl DeltaSet {
    fn new() -> Self {
        DeltaSet { rows: Vec::new() }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn take(&mut self) -> Vec<DeltaRow> {
        std::mem::take(&mut self.rows)
    }
}

/// The worker context bundling everything one thread needs.
pub struct Worker<'a> {
    plan: &'a PhysicalPlan,
    cfg: &'a EngineConfig,
    coord: &'a Coordination,
    endpoints: WorkerEndpoints<'a>,
    me: WorkerId,
    evaluator: Evaluator<'a>,
    /// Persistent register file + probe counters for the batched kernel.
    scratch: EvalScratch,
    /// Per-relation exact-duplicate filter for Distribute — the §6.2
    /// existence-check cache applied to the *exchange*: a head row
    /// identical to one this worker already routed is dropped before it
    /// is serialized. Merging an identical row is a no-op, so
    /// suppression can never change the fixpoint; it only saves the
    /// serialize → queue → deserialize → reject round-trip duplicates
    /// otherwise pay. `None` for aggregate relations (their rows evolve,
    /// so exact repeats are rare) and for single-worker or unoptimized
    /// runs.
    sent_filter: Vec<Option<TupleCache>>,
    metrics: &'a MetricsRecorder,
    tracer: &'a Tracer,
}

impl<'a> Worker<'a> {
    /// Claims worker `me`'s endpoints and builds its context.
    pub fn new(
        plan: &'a PhysicalPlan,
        cfg: &'a EngineConfig,
        coord: &'a Coordination,
        me: WorkerId,
    ) -> Self {
        use dcd_frontend::physical::StorageKind;
        let sent_filter: Vec<Option<TupleCache>> = plan
            .idb
            .iter()
            .map(|decl| match decl {
                Some(d)
                    if cfg.optimized && cfg.workers > 1 && matches!(d.kind, StorageKind::Set) =>
                {
                    // 4× the merge-side cache: this filter guards the
                    // whole relation's row universe, not just recency,
                    // and every eviction turns into a wasted remote send.
                    Some(TupleCache::new(cfg.cache_slots * 4))
                }
                _ => None,
            })
            .collect();
        Worker {
            plan,
            cfg,
            coord,
            endpoints: coord.buffers.claim(me),
            me,
            evaluator: Evaluator {
                plan,
                me,
                workers: cfg.workers,
            },
            scratch: EvalScratch::new(),
            sent_filter,
            metrics: &coord.metrics[me],
            tracer: &coord.tracers[me],
        }
    }

    /// Runs the full evaluation for this worker; returns the final local
    /// store and statistics.
    pub fn run(mut self, mut store: WorkerStore) -> Result<(WorkerStore, WorkerStats)> {
        for si in 0..self.plan.strata.len() {
            self.run_stratum(si, &mut store)?;
        }
        // Fold the storage layer's cache counters and the kernel's probe
        // counters into the recorder so the engine-level snapshot carries
        // them.
        let (hits, misses) = store.cache_totals();
        self.metrics.record_cache(hits, misses);
        for f in self.sent_filter.iter().flatten() {
            let (h, m) = f.stats();
            self.metrics.record_cache(h, m);
        }
        self.metrics
            .record_probes(self.scratch.probe_hits, self.scratch.probe_reuse);
        let snap = self.metrics.snapshot();
        let stats = WorkerStats {
            iterations: snap.iterations,
            processed: snap.tuples_processed,
            sent: snap.tuples_sent,
            batches_in: snap.batches_in,
        };
        Ok((store, stats))
    }

    fn run_stratum(&mut self, si: usize, store: &mut WorkerStore) -> Result<()> {
        let sc = &self.coord.strata[si];
        let te = Instant::now();
        sc.entry.wait();
        self.tracer.span(Phase::Idle, te, self.metrics.iterations());
        self.coord.check_deadline()?;

        // ---- Init phase: base rules + inline facts ----
        let stratum = &self.plan.strata[si];
        let mut acc = PartialAgg::default();
        {
            let mut rows = Vec::new();
            for rule in &stratum.init_rules {
                rows.clear();
                self.evaluator.eval_init(rule, store, &mut rows);
                for t in rows.drain(..) {
                    acc.push(self.plan, rule.head_rel, t);
                }
            }
        }
        if self.me == 0 {
            for (rel, t) in &self.plan.facts {
                if stratum.rels.contains(rel) {
                    acc.push(self.plan, *rel, t.clone());
                }
            }
        }
        let mut delta = DeltaSet::new();
        self.distribute(si, store, acc, &mut delta, &mut None)?;
        let tp = Instant::now();
        sc.post_init.wait();
        self.tracer.span(Phase::Idle, tp, self.metrics.iterations());

        // ---- Fixpoint phase ----
        match &self.cfg.strategy {
            Strategy::Global => self.global_loop(si, store, delta),
            Strategy::Ssp { .. } => self.async_loop(si, store, delta, None),
            Strategy::Dws | Strategy::DwsWith(_) => {
                let dws_cfg = self.cfg.strategy.dws_config().expect("dws strategy");
                let controller = DwsController::new(self.cfg.workers, dws_cfg);
                self.async_loop(si, store, delta, Some(controller))
            }
        }
    }

    /// Algorithm 1: a global barrier after every iteration.
    fn global_loop(
        &mut self,
        si: usize,
        store: &mut WorkerStore,
        mut delta: DeltaSet,
    ) -> Result<()> {
        // Initial new-tuple count: what init distributed locally + remotely
        // is already in `delta`/queues; the first round drains and counts.
        loop {
            self.coord.check_deadline()?;
            let tg = Instant::now();
            self.drain(si, store, &mut delta, None);
            self.metrics.add_gather(tg.elapsed());
            self.tracer
                .span(Phase::Gather, tg, self.metrics.iterations());
            let processed = delta.len() as u64;
            let outs = self.iterate(si, store, &mut delta);
            let (local_new, remote_sent) =
                self.distribute(si, store, outs, &mut delta, &mut None)?;
            let produced = remote_sent + local_new;
            self.tracer.instant(
                Mark::Iteration,
                self.metrics.iterations().saturating_sub(1),
                processed,
                local_new + remote_sent,
                self.coord.buffers.inbound_len(self.me) as u64,
            );
            let tb = Instant::now();
            let cont = self.coord.strata[si].round.arrive(produced);
            self.metrics.add_idle(tb.elapsed());
            self.tracer.span(Phase::Idle, tb, self.metrics.iterations());
            self.tracer.instant(
                Mark::TerminationRound,
                self.metrics.iterations(),
                cont as u64,
                0,
                0,
            );
            if !cont {
                if self.coord.abort.load(Ordering::SeqCst) {
                    return Err(DcdError::Execution("evaluation aborted".into()));
                }
                return Ok(());
            }
        }
    }

    /// Algorithm 2 (DWS) and the SSP relaxation: no global barrier.
    fn async_loop(
        &mut self,
        si: usize,
        store: &mut WorkerStore,
        mut delta: DeltaSet,
        mut dws: Option<DwsController>,
    ) -> Result<()> {
        let sc = &self.coord.strata[si];
        let is_ssp = matches!(self.cfg.strategy, Strategy::Ssp { .. });
        loop {
            self.coord.check_deadline()?;
            let tg = Instant::now();
            self.drain(si, store, &mut delta, dws.as_mut());
            self.metrics.add_gather(tg.elapsed());
            self.tracer
                .span(Phase::Gather, tg, self.metrics.iterations());

            if delta.is_empty() {
                // Local fixpoint: park until new work or global fixpoint.
                if is_ssp {
                    sc.ssp.finish(self.me);
                }
                let ti = Instant::now();
                let outcome = sc.termination.idle_wait(|| self.endpoints.has_inbound());
                self.metrics.add_idle(ti.elapsed());
                self.tracer.span(Phase::Idle, ti, self.metrics.iterations());
                match outcome {
                    IdleOutcome::Done => {
                        self.tracer.instant(
                            Mark::TerminationRound,
                            self.metrics.iterations(),
                            0,
                            0,
                            0,
                        );
                        if self.coord.abort.load(Ordering::SeqCst) {
                            return Err(DcdError::Execution("evaluation aborted".into()));
                        }
                        return Ok(());
                    }
                    IdleOutcome::Work => {
                        self.tracer.instant(
                            Mark::TerminationRound,
                            self.metrics.iterations(),
                            1,
                            0,
                            0,
                        );
                        if is_ssp {
                            sc.ssp.rejoin(self.me);
                        }
                        continue;
                    }
                }
            }

            // DWS: wait up to τ while the delta is smaller than ω
            // (Algorithm 2 lines 5–8), collecting more tuples meanwhile.
            if let Some(ctrl) = dws.as_mut() {
                let omega = ctrl.omega();
                if delta.len() < omega {
                    let tw = Instant::now();
                    let deadline = tw + ctrl.tau();
                    while delta.len() < omega
                        && Instant::now() < deadline
                        && !sc.termination.is_done()
                    {
                        if self.endpoints.has_inbound() {
                            // The controller must see these batches too:
                            // dropping them here systematically
                            // underestimated λ (arrival-stat loss).
                            let mut ctrl_opt = Some(&mut *ctrl);
                            self.drain_into(si, store, &mut delta, &mut ctrl_opt);
                        } else {
                            std::thread::sleep(Duration::from_micros(5));
                        }
                    }
                    self.metrics.add_omega_wait(tw.elapsed());
                    self.tracer
                        .span(Phase::OmegaWait, tw, self.metrics.iterations());
                }
                ctrl.update_params();
                self.metrics.push_sample(DwsSample {
                    iteration: self.metrics.iterations(),
                    omega: ctrl.omega() as u64,
                    tau_ns: ctrl.tau().as_nanos() as u64,
                    delta_len: delta.len() as u64,
                });
                self.tracer.instant(
                    Mark::DwsDecision,
                    self.metrics.iterations(),
                    ctrl.omega() as u64,
                    ctrl.tau().as_nanos() as u64,
                    delta.len() as u64,
                );
            }

            // SSP: stay within `s` iterations of the frontier.
            if is_ssp {
                let abort = || self.coord.abort.load(Ordering::SeqCst) || sc.termination.is_done();
                sc.ssp.wait_if_ahead(self.me, abort);
            }

            let t0 = Instant::now();
            let processed = delta.len();
            let outs = self.iterate(si, store, &mut delta);
            let (local_new, remote_sent) =
                self.distribute(si, store, outs, &mut delta, &mut dws.as_mut())?;
            if let Some(ctrl) = dws.as_mut() {
                ctrl.on_iteration(processed, t0.elapsed());
            }
            self.tracer.instant(
                Mark::Iteration,
                self.metrics.iterations().saturating_sub(1),
                processed as u64,
                local_new + remote_sent,
                self.coord.buffers.inbound_len(self.me) as u64,
            );
            if is_ssp {
                sc.ssp.advance(self.me);
            }
        }
    }

    /// Coalesces pending delta rows (the Gather semantics of §5.2.2): an
    /// aggregate group that updated several times since the last local
    /// iteration keeps only its newest logical row. Without this, `sum`
    /// relations fragment convergence into O(total-change/ε) micro-deltas.
    fn coalesce(&self, rows: Vec<DeltaRow>) -> Vec<DeltaRow> {
        use dcd_frontend::physical::StorageKind;
        // (rel, route, group prefix) → index of the newest row.
        let mut latest: FastMap<(RelId, u8, Tuple), usize> = FastMap::default();
        let mut keep = vec![true; rows.len()];
        for (i, (rel, route, row)) in rows.iter().enumerate() {
            let decl = self.plan.idb[*rel].as_ref().expect("IDB");
            let StorageKind::Agg { group_cols, .. } = &decl.kind else {
                continue; // set relations never duplicate
            };
            let key = (*rel, *route, row.prefix(*group_cols));
            if let Some(prev) = latest.insert(key, i) {
                keep[prev] = false;
            }
        }
        rows.into_iter()
            .zip(keep)
            .filter_map(|(r, k)| k.then_some(r))
            .collect()
    }

    /// One local semi-naive iteration: runs every matching delta variant
    /// over the pending delta rows. Outputs pass through the partial
    /// aggregation of §5.2.3 ("the Distribute operators also perform some
    /// partial aggregation"), so the returned list is bounded by the
    /// number of distinct output groups, not raw join results.
    fn iterate(&mut self, si: usize, store: &WorkerStore, delta: &mut DeltaSet) -> PartialAgg {
        let t0 = Instant::now();
        let stratum = &self.plan.strata[si];
        let mut rows = self.coalesce(delta.take());
        let nrows = rows.len() as u64;
        self.metrics.note_iteration(nrows);
        let mut acc = PartialAgg::default();
        if self.cfg.batch_kernel {
            // Cluster the delta by (rel, route): each cluster runs as one
            // batch per matching rule. The sort is stable, so rows keep
            // their arrival order within a cluster.
            rows.sort_by_key(|r| (r.0, r.1));
            let plan = self.plan;
            let evaluator = &self.evaluator;
            let scratch = &mut self.scratch;
            let mut start = 0;
            while start < rows.len() {
                let (rel, route) = (rows[start].0, rows[start].1);
                let mut end = start + 1;
                while end < rows.len() && rows[end].0 == rel && rows[end].1 == route {
                    end += 1;
                }
                let group = &rows[start..end];
                for rule in &stratum.delta_rules {
                    let spec = rule.delta.as_ref().expect("delta rule");
                    if spec.rel != rel || spec.route != route as usize {
                        continue;
                    }
                    let head = rule.head_rel;
                    evaluator.eval_delta_batch(rule, store, group, scratch, &mut |t| {
                        acc.push(plan, head, t)
                    });
                    self.metrics.note_kernel_batch(group.len() as u64);
                }
                start = end;
            }
        } else {
            // Tuple-at-a-time reference path, kept reachable end to end so
            // the differential tests can pin the kernel against it.
            let mut buf = Vec::new();
            for (rel, route, row) in &rows {
                for rule in &stratum.delta_rules {
                    let spec = rule.delta.as_ref().expect("delta rule");
                    if spec.rel != *rel || spec.route != *route as usize {
                        continue;
                    }
                    self.evaluator.eval_delta(rule, store, row, &mut buf);
                    for t in buf.drain(..) {
                        acc.push(self.plan, rule.head_rel, t);
                    }
                }
            }
        }
        self.metrics.add_iterate(t0.elapsed());
        self.tracer.span_args(
            Phase::EvalDelta,
            t0,
            self.metrics.iterations().saturating_sub(1),
            nrows,
            0,
            0,
        );
        acc
    }

    /// Routes derived tuples (Distribute): local merges feed the next
    /// delta immediately, remote rows are batched into the SPSC buffers.
    /// Returns `(new local merges, tuples sent to peers)`. The DWS
    /// controller (when present) must observe any batches consumed during
    /// backpressure retries, or λ is underestimated.
    fn distribute(
        &mut self,
        si: usize,
        store: &mut WorkerStore,
        outs: PartialAgg,
        delta: &mut DeltaSet,
        dws: &mut Option<&mut DwsController>,
    ) -> Result<(u64, u64)> {
        let t0 = Instant::now();
        let n = self.cfg.workers;
        let termination = &self.coord.strata[si].termination;
        let mut local_new = 0u64;
        let mut remote_sent = 0u64;
        // Staging area: (dest, rel) → a flat frame builder. Head rows flow
        // from the partial-aggregation map straight into the frames; no
        // intermediate Vec<(RelId, Tuple)> and no per-row Tuple clone on
        // the remote path.
        let mut staged: FastMap<(WorkerId, RelId), Frame> = FastMap::default();
        let mut dests: Vec<WorkerId> = Vec::with_capacity(2);
        // Taken (not borrowed) so the filter can be consulted while
        // `merge_local` borrows `self`; restored right after the loop.
        let mut filters = std::mem::take(&mut self.sent_filter);
        for (rel, row) in outs.drain() {
            // A row this worker already routed went to the same
            // (deterministic) destinations then; re-merging it anywhere
            // is a no-op, so the whole row can be dropped.
            if let Some(filter) = &mut filters[rel] {
                if filter.check(&row) {
                    continue;
                }
                filter.record(&row);
            }
            let decl = self.plan.idb[rel].as_ref().expect("IDB head");
            dests.clear();
            if decl.broadcast {
                dests.extend(0..n);
            } else {
                for &c in &decl.partition_cols {
                    let d = self.coord.part.of_key(row.key(c));
                    if !dests.contains(&d) {
                        dests.push(d);
                    }
                }
            }
            for &d in &dests {
                if d == self.me {
                    local_new += self.merge_local(store, rel, &row, delta);
                } else {
                    staged
                        .entry((d, rel))
                        .or_insert_with(Frame::for_rel)
                        .push_row(row.values());
                }
            }
        }
        self.sent_filter = filters;
        // Flush batches. When a queue is full we drain our own inbox while
        // retrying, which breaks producer/consumer cycles (two workers
        // flooding each other would otherwise deadlock).
        for ((dest, rel), frame) in staged {
            for piece in frame.into_batches(self.cfg.batch_size) {
                let k = piece.len() as u64;
                termination.note_produced(k);
                remote_sent += k;
                self.metrics.note_batch_out(k, piece.payload_bytes());
                let mut batch = Batch {
                    rel: rel as u32,
                    route: 0, // receivers re-derive applicable routes
                    frame: piece,
                    sent_at: Instant::now(),
                    from: self.me,
                };
                let mut tbp: Option<Instant> = None;
                loop {
                    match self.endpoints.send(dest, batch) {
                        Ok(()) => break,
                        Err(back) => {
                            batch = back;
                            if self.coord.abort.load(Ordering::SeqCst) {
                                return Err(DcdError::Execution("evaluation aborted".into()));
                            }
                            if self.tracer.is_enabled() && tbp.is_none() {
                                tbp = Some(Instant::now());
                            }
                            self.metrics.note_backpressure_retry();
                            self.drain_into(si, store, delta, dws);
                            std::thread::yield_now();
                        }
                    }
                }
                if let Some(t) = tbp {
                    // One span per batch that hit a full queue, covering
                    // the whole retry window (nests inside Distribute).
                    self.tracer
                        .span(Phase::Backpressure, t, self.metrics.iterations());
                }
            }
        }
        self.metrics.note_local_new(local_new);
        self.metrics.add_distribute(t0.elapsed());
        self.tracer.span_args(
            Phase::Distribute,
            t0,
            self.metrics.iterations().saturating_sub(1),
            local_new,
            remote_sent,
            0,
        );
        Ok((local_new, remote_sent))
    }

    /// Merges one merge-layout row into the local store; on success, adds
    /// a delta entry for every route of the relation that maps here.
    fn merge_local(
        &self,
        store: &mut WorkerStore,
        rel: RelId,
        row: &Tuple,
        delta: &mut DeltaSet,
    ) -> u64 {
        let decl = self.plan.idb[rel].as_ref().expect("IDB");
        match store.rec_mut(rel).merge(row) {
            Merged::New(logical) => {
                if decl.broadcast {
                    // Broadcast relations run every variant everywhere.
                    for r in 0..decl.partition_cols.len().max(1) {
                        delta.rows.push((rel, r as u8, logical.clone()));
                    }
                } else {
                    for (ri, &c) in decl.partition_cols.iter().enumerate() {
                        if self.coord.part.of_key(logical.key(c)) == self.me {
                            delta.rows.push((rel, ri as u8, logical.clone()));
                        }
                    }
                }
                1
            }
            Merged::Old => 0,
        }
    }

    /// Drains every inbound queue into the store/delta (Gather).
    fn drain(
        &mut self,
        si: usize,
        store: &mut WorkerStore,
        delta: &mut DeltaSet,
        mut dws: Option<&mut DwsController>,
    ) {
        self.drain_into(si, store, delta, &mut dws);
    }

    fn drain_into(
        &mut self,
        si: usize,
        store: &mut WorkerStore,
        delta: &mut DeltaSet,
        dws: &mut Option<&mut DwsController>,
    ) {
        let termination = &self.coord.strata[si].termination;
        let tm = self.tracer.is_enabled().then(Instant::now);
        let mut batches = 0u64;
        let mut new = 0u64;
        for j in 0..self.cfg.workers {
            while let Some(batch) = self.endpoints.recv(j) {
                let k = batch.len() as u64;
                self.metrics.note_batch_in(k, batch.payload_bytes());
                if let Some(ctrl) = dws.as_deref_mut() {
                    ctrl.on_batch(batch.from, batch.len(), batch.sent_at);
                }
                batches += 1;
                let rel = batch.rel as usize;
                for i in 0..batch.frame.len() {
                    new += self.merge_local(store, rel, &batch.frame.tuple(i), delta);
                }
                termination.note_consumed(k);
            }
        }
        self.metrics.note_local_new(new);
        if batches > 0 {
            if let Some(tm) = tm {
                // Nested inside whichever phase drained: Gather, ω-wait
                // or a backpressure retry.
                self.tracer
                    .span_args(Phase::Merge, tm, self.metrics.iterations(), batches, new, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_frontend::physical::{plan, PlannerConfig};
    use dcd_frontend::{analyze, parse_program};

    fn cc_plan() -> PhysicalPlan {
        let a = analyze(
            parse_program(
                "cc2(Y, min<Y>) <- arc(Y, _).
                 cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).",
            )
            .unwrap(),
        )
        .unwrap();
        plan(&a, &PlannerConfig::default()).unwrap()
    }

    fn tc_plan() -> PhysicalPlan {
        let a = analyze(
            parse_program("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).").unwrap(),
        )
        .unwrap();
        plan(&a, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn partial_agg_collapses_min_groups() {
        let p = cc_plan();
        let cc2 = p.rel_by_name("cc2").unwrap();
        let mut acc = PartialAgg::default();
        acc.push(&p, cc2, Tuple::from_ints(&[1, 9]));
        acc.push(&p, cc2, Tuple::from_ints(&[1, 3]));
        acc.push(&p, cc2, Tuple::from_ints(&[1, 7]));
        acc.push(&p, cc2, Tuple::from_ints(&[2, 5]));
        let mut rows: Vec<(RelId, Tuple)> = acc.drain().collect();
        rows.sort_by(|a, b| a.1.cmp(&b.1));
        assert_eq!(
            rows.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>(),
            vec![Tuple::from_ints(&[1, 3]), Tuple::from_ints(&[2, 5])]
        );
    }

    #[test]
    fn partial_agg_passes_set_rows_through() {
        // Set rows are NOT collapsed here: exact-duplicate elimination is
        // Distribute's job (sent-filter + idempotent merge), so the
        // accumulator must forward every row without hashing it.
        let p = tc_plan();
        let tc = p.rel_by_name("tc").unwrap();
        let mut acc = PartialAgg::default();
        for _ in 0..5 {
            acc.push(&p, tc, Tuple::from_ints(&[1, 2]));
        }
        acc.push(&p, tc, Tuple::from_ints(&[1, 3]));
        assert_eq!(acc.drain().count(), 6);
    }

    #[test]
    fn delta_set_take_empties() {
        let mut d = DeltaSet::new();
        assert!(d.is_empty());
        d.rows.push((0, 0, Tuple::from_ints(&[1])));
        d.rows.push((0, 1, Tuple::from_ints(&[2])));
        assert_eq!(d.len(), 2);
        assert_eq!(d.take().len(), 2);
        assert!(d.is_empty());
    }

    #[test]
    fn coordination_cancel_is_idempotent_and_reports_deadline() {
        let p = tc_plan();
        let mut cfg = crate::config::EngineConfig::with_workers(2);
        cfg.timeout = Some(std::time::Duration::from_secs(0));
        let coord = Coordination::new(&p, &cfg);
        // Deadline in the past must trip the check.
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(coord.check_deadline().is_err());
        coord.cancel();
        coord.cancel();
        assert!(coord.check_deadline().is_err());
    }
}
