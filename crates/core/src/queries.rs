//! The paper's eight benchmark programs (Queries 1–8), as ready-to-use
//! Datalog sources, plus constructors that bind their parameters.

use crate::engine::Program;
use dcd_common::Result;

/// Query 1 — Transitive Closure.
pub const TC: &str = "
tc(X, Y) <- arc(X, Y).
tc(X, Y) <- tc(X, Z), arc(Z, Y).
";

/// Query 2 — Connected Components (min label propagation).
pub const CC: &str = "
cc2(Y, min<Y>) <- arc(Y, _).
cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).
cc(Y, min<Z>) <- cc2(Y, Z).
";

/// Query 3 — All Pairs Shortest Path (non-linear recursion).
pub const APSP: &str = "
path(A, B, min<D>) <- warc(A, B, D).
path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.
apsp(A, B, min<D>) <- path(A, B, D).
";

/// Query 4 — Who will attend the party (mutual recursion with count).
/// The threshold (paper: 3) is the `threshold` parameter.
pub const ATTEND: &str = "
attend(X) <- organizer(X).
cnt(Y, count<X>) <- attend(X), friend(Y, X).
attend(X) <- cnt(X, N), N >= threshold.
";

/// Query 5 — Same Generation.
pub const SG: &str = "
sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).
";

/// Query 6 — PageRank (sum in recursion). Parameters: `alpha` (damping),
/// `vnum` (vertex count). `matrix(Y, X, D)` is an edge Y→X with D =
/// out-degree(Y).
pub const PAGERANK: &str = "
rank(X, sum<(X, I)>) <- matrix(X, _, _), I = (1 - alpha) / vnum.
rank(X, sum<(Y, K)>) <- rank(Y, C), matrix(Y, X, D), K = alpha * (C / D).
results(X, V) <- rank(X, V).
";

/// Query 7 — Single Source Shortest Path. Parameter: `start`.
pub const SSSP: &str = "
sp(To, min<C>) <- To = start, C = 0.
sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
results(To, min<C>) <- sp(To, C).
";

/// Query 8 — Bill of Materials / Delivery (max in recursion).
pub const DELIVERY: &str = "
delivery(P, max<D>) <- basic(P, D).
delivery(P, max<D>) <- assbl(P, S), delivery(S, D).
results(P, max<D>) <- delivery(P, D).
";

/// Transitive closure program.
pub fn tc() -> Result<Program> {
    Program::parse(TC)
}

/// Connected components program.
pub fn cc() -> Result<Program> {
    Program::parse(CC)
}

/// All-pairs shortest path program.
pub fn apsp() -> Result<Program> {
    Program::parse(APSP)
}

/// Party-attendance program with the given count threshold.
pub fn attend(threshold: i64) -> Result<Program> {
    Ok(Program::parse(ATTEND)?.with_param("threshold", threshold))
}

/// Same-generation program.
pub fn sg() -> Result<Program> {
    Program::parse(SG)
}

/// PageRank with damping `alpha` over `vnum` vertices.
pub fn pagerank(alpha: f64, vnum: usize) -> Result<Program> {
    Ok(Program::parse(PAGERANK)?
        .with_param("alpha", alpha)
        .with_param("vnum", vnum as f64))
}

/// Single-source shortest path from `start`.
pub fn sssp(start: i64) -> Result<Program> {
    Ok(Program::parse(SSSP)?.with_param("start", start))
}

/// Delivery / bill-of-materials program.
pub fn delivery() -> Result<Program> {
    Program::parse(DELIVERY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_queries_parse_and_analyze() {
        tc().unwrap();
        cc().unwrap();
        apsp().unwrap();
        attend(3).unwrap();
        sg().unwrap();
        pagerank(0.85, 100).unwrap();
        sssp(1).unwrap();
        delivery().unwrap();
    }

    #[test]
    fn recursion_classification_matches_the_paper() {
        let a = apsp().unwrap();
        assert!(a.analyzed().strata.iter().any(|s| s.is_nonlinear()));
        let a = attend(3).unwrap();
        assert!(a.analyzed().strata.iter().any(|s| s.is_mutual()));
        let a = tc().unwrap();
        assert!(a
            .analyzed()
            .strata
            .iter()
            .all(|s| !s.is_nonlinear() && !s.is_mutual()));
    }
}
