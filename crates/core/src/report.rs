//! Run-level observability: the [`EvalReport`] merges every worker's
//! [`MetricsSnapshot`] with the termination-protocol totals into one
//! machine-readable document.
//!
//! The report answers the questions the paper's evaluation section asks of
//! a run — how balanced was the load (per-worker iterate/idle split), how
//! chatty was the exchange (batches and tuples per worker), and what ω/τ
//! trajectory did the DWS controller follow — without attaching a
//! profiler. `to_json` emits the document behind the CLI's `--stats-json`
//! flag; the schema is versioned so downstream tooling can detect drift.
//!
//! Invariant worth stating: after a completed evaluation the termination
//! counters satisfy `produced == consumed` (that *is* the fixpoint test),
//! and both equal the tuples that crossed worker boundaries, so
//! `sum(tuples_sent) == produced` and `sum(tuples_in) == consumed` across
//! the per-worker recorders. [`EvalReport::reconciles`] checks all four.

use dcd_runtime::trace::{iteration_series, IterationPoint};
use dcd_runtime::{chrome_trace_json, MetricsSnapshot, TraceMeta, WorkerTrace};

/// Current `schema` field value of the JSON document.
///
/// Schema 4 adds the tracing fields: per-worker `dropped_events` (ring
/// overflow accounting) and the top-level `iteration_series` table
/// (empty arrays when tracing was disabled).
pub const REPORT_SCHEMA: u32 = 4;

/// A full per-run observability report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvalReport {
    /// Strategy name: `"Global"`, `"SSP"`, or `"DWS"`.
    pub strategy: String,
    /// Number of workers.
    pub workers: usize,
    /// Wall-clock evaluation time in nanoseconds.
    pub elapsed_ns: u64,
    /// Total tuples announced to the termination protocol as produced.
    pub produced: u64,
    /// Total tuples announced as consumed.
    pub consumed: u64,
    /// Resident bytes of replicated EDB relations, counted **once** for
    /// the whole run (they are Arc-shared, so per-worker attribution would
    /// be fiction; partitioned slices appear in each worker's
    /// `edb_resident_bytes` instead).
    pub edb_replicated_bytes: u64,
    /// One snapshot per worker, indexed by worker id.
    pub per_worker: Vec<MetricsSnapshot>,
    /// One event trace per worker (empty event lists when tracing was
    /// disabled — the tracers still exist, so overflow accounting and the
    /// JSON shape stay uniform).
    pub traces: Vec<WorkerTrace>,
}

impl EvalReport {
    /// Sums `f` over the per-worker snapshots.
    pub fn total(&self, f: impl Fn(&MetricsSnapshot) -> u64) -> u64 {
        self.per_worker.iter().map(f).sum()
    }

    /// Whether the recorder counters reconcile with the termination
    /// protocol: `produced == consumed`, every produced tuple was recorded
    /// as sent, and every consumed tuple was recorded as received.
    pub fn reconciles(&self) -> bool {
        self.produced == self.consumed
            && self.total(|w| w.tuples_sent) == self.produced
            && self.total(|w| w.tuples_in) == self.consumed
    }

    /// Load-imbalance factor: max over workers of iterate-time divided by
    /// the mean (1.0 = perfectly balanced; meaningless with 0 workers).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 1.0;
        }
        let times: Vec<u64> = self.per_worker.iter().map(|w| w.iterate_ns).collect();
        let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        *times.iter().max().expect("non-empty") as f64 / mean
    }

    /// Total payload bytes that crossed the exchange (producer side).
    pub fn exchanged_bytes(&self) -> u64 {
        self.total(|w| w.bytes_sent)
    }

    /// Fraction of total worker-time spent idle (parked or ω-waiting).
    pub fn idle_fraction(&self) -> f64 {
        let busy = self.total(|w| w.gather_ns + w.iterate_ns + w.distribute_ns);
        let idle = self.total(|w| w.idle_ns + w.omega_wait_ns);
        if busy + idle == 0 {
            0.0
        } else {
            idle as f64 / (busy + idle) as f64
        }
    }

    /// Events dropped by worker `i`'s trace ring (0 when tracing was off
    /// or the worker index is out of range).
    pub fn dropped_events(&self, i: usize) -> u64 {
        self.traces.get(i).map_or(0, |t| t.dropped)
    }

    /// The per-iteration time-series table derived from the traces
    /// (empty when tracing was disabled).
    pub fn iteration_series(&self) -> Vec<IterationPoint> {
        iteration_series(&self.traces)
    }

    /// Serializes the traces as Chrome/Perfetto trace JSON (`"ns"` clock)
    /// — the document behind the CLI's `--trace-json`.
    pub fn trace_json(&self) -> String {
        chrome_trace_json(
            &self.traces,
            &TraceMeta {
                strategy: self.strategy.clone(),
                workers: self.workers,
                clock: "ns",
            },
        )
    }

    /// Serializes the report as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let workers: Vec<String> = self
            .per_worker
            .iter()
            .enumerate()
            .map(|(i, w)| format!("    {}", worker_json(i, w, self.dropped_events(i))))
            .collect();
        let series: Vec<String> = self
            .iteration_series()
            .iter()
            .map(|p| {
                format!(
                    "    {{\"worker\":{},\"iteration\":{},\"ts\":{},\"rows_in\":{},\
                     \"rows_out\":{},\"queue_depth\":{},\"omega\":{},\"tau\":{}}}",
                    p.worker,
                    p.iteration,
                    p.ts,
                    p.rows_in,
                    p.rows_out,
                    p.queue_depth,
                    p.omega,
                    p.tau
                )
            })
            .collect();
        let series_json = if series.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", series.join(",\n"))
        };
        format!(
            "{{\n  \"schema\": {},\n  \"strategy\": {},\n  \"workers\": {},\n  \
             \"elapsed_ns\": {},\n  \"produced\": {},\n  \"consumed\": {},\n  \
             \"exchanged_bytes\": {},\n  \"edb_replicated_bytes\": {},\n  \
             \"per_worker\": [\n{}\n  ],\n  \"iteration_series\": {}\n}}\n",
            REPORT_SCHEMA,
            json_string(&self.strategy),
            self.workers,
            self.elapsed_ns,
            self.produced,
            self.consumed,
            self.exchanged_bytes(),
            self.edb_replicated_bytes,
            workers.join(",\n"),
            series_json
        )
    }
}

fn worker_json(i: usize, w: &MetricsSnapshot, dropped_events: u64) -> String {
    let samples: Vec<String> = w
        .dws_samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"iteration":{},"omega":{},"tau_ns":{},"delta_len":{}}}"#,
                s.iteration, s.omega, s.tau_ns, s.delta_len
            )
        })
        .collect();
    format!(
        r#"{{"worker":{},"iterations":{},"tuples_processed":{},"tuples_sent":{},"batches_out":{},"batches_in":{},"tuples_in":{},"bytes_sent":{},"bytes_in":{},"edb_resident_bytes":{},"local_new":{},"backpressure_retries":{},"idle_ns":{},"omega_wait_ns":{},"gather_ns":{},"iterate_ns":{},"distribute_ns":{},"cache_hits":{},"cache_misses":{},"probe_hits":{},"probe_reuse":{},"kernel_batches":{},"kernel_rows":{},"rows_per_batch":{:.3},"samples_dropped":{},"dropped_events":{},"dws_samples":[{}]}}"#,
        i,
        w.iterations,
        w.tuples_processed,
        w.tuples_sent,
        w.batches_out,
        w.batches_in,
        w.tuples_in,
        w.bytes_sent,
        w.bytes_in,
        w.edb_resident_bytes,
        w.local_new,
        w.backpressure_retries,
        w.idle_ns,
        w.omega_wait_ns,
        w.gather_ns,
        w.iterate_ns,
        w.distribute_ns,
        w.cache_hits,
        w.cache_misses,
        w.probe_hits,
        w.probe_reuse,
        w.kernel_batches,
        w.kernel_rows,
        w.rows_per_batch(),
        w.samples_dropped,
        dropped_events,
        samples.join(",")
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_runtime::DwsSample;

    fn sample_report() -> EvalReport {
        let mut a = MetricsSnapshot {
            iterations: 3,
            tuples_sent: 10,
            tuples_in: 4,
            bytes_sent: 160,
            bytes_in: 64,
            edb_resident_bytes: 2048,
            iterate_ns: 300,
            idle_ns: 100,
            gather_ns: 50,
            distribute_ns: 50,
            probe_hits: 5,
            probe_reuse: 15,
            kernel_batches: 2,
            kernel_rows: 9,
            ..MetricsSnapshot::default()
        };
        a.dws_samples.push(DwsSample {
            iteration: 2,
            omega: 8,
            tau_ns: 1000,
            delta_len: 5,
        });
        let b = MetricsSnapshot {
            iterations: 1,
            tuples_sent: 4,
            tuples_in: 10,
            bytes_sent: 64,
            bytes_in: 160,
            iterate_ns: 100,
            omega_wait_ns: 200,
            ..MetricsSnapshot::default()
        };
        use dcd_runtime::trace::{EventKind, Mark, Phase, TraceEvent};
        let ev = |kind, ts, dur, iteration, aa, bb, cc| TraceEvent {
            kind,
            ts,
            dur,
            iteration,
            a: aa,
            b: bb,
            c: cc,
        };
        let t0 = WorkerTrace {
            worker: 0,
            events: vec![
                ev(EventKind::Span(Phase::EvalDelta), 0, 300, 0, 5, 0, 0),
                ev(EventKind::Instant(Mark::DwsDecision), 300, 0, 0, 8, 1000, 5),
                ev(EventKind::Instant(Mark::Iteration), 320, 0, 0, 5, 10, 1),
            ],
            dropped: 2,
        };
        let t1 = WorkerTrace {
            worker: 1,
            events: vec![ev(EventKind::Instant(Mark::Iteration), 150, 0, 0, 4, 4, 0)],
            dropped: 0,
        };
        EvalReport {
            strategy: "DWS".into(),
            workers: 2,
            elapsed_ns: 1_000,
            produced: 14,
            consumed: 14,
            edb_replicated_bytes: 4096,
            per_worker: vec![a, b],
            traces: vec![t0, t1],
        }
    }

    #[test]
    fn reconciliation_checks_all_four_identities() {
        let mut r = sample_report();
        assert!(r.reconciles());
        r.produced += 1;
        assert!(!r.reconciles(), "produced != consumed");
        r.produced -= 1;
        r.per_worker[0].tuples_sent += 1;
        assert!(!r.reconciles(), "sent total drifted");
    }

    #[test]
    fn imbalance_and_idle_fraction() {
        let r = sample_report();
        // iterate times 300 and 100 → mean 200, max 300 → 1.5.
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
        // busy = 300+50+50+100 = 500, idle = 100+200 = 300.
        assert!((r.idle_fraction() - 300.0 / 800.0).abs() < 1e-12);
        assert_eq!(EvalReport::default().imbalance(), 1.0);
        assert_eq!(EvalReport::default().idle_fraction(), 0.0);
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.contains("\"schema\": 4"));
        assert!(json.contains("\"strategy\": \"DWS\""));
        assert!(json.contains("\"exchanged_bytes\": 224"));
        assert!(json.contains("\"edb_replicated_bytes\": 4096"));
        assert!(json.contains("\"worker\":0"));
        assert!(json.contains("\"worker\":1"));
        assert!(json.contains("\"bytes_sent\":160"));
        assert!(json.contains("\"edb_resident_bytes\":2048"));
        assert!(json.contains("\"probe_hits\":5"));
        assert!(json.contains("\"probe_reuse\":15"));
        assert!(json.contains("\"kernel_batches\":2"));
        assert!(json.contains("\"rows_per_batch\":4.500"));
        assert_eq!(r.exchanged_bytes(), 224);
        assert!(json
            .contains(r#""dws_samples":[{"iteration":2,"omega":8,"tau_ns":1000,"delta_len":5}]"#));
        assert!(json.contains("\"dropped_events\":2"));
        assert!(json.contains("\"dropped_events\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn iteration_series_joins_controller_decisions() {
        let r = sample_report();
        let series = r.iteration_series();
        assert_eq!(series.len(), 2);
        // Ordered by completion time: worker 1's point (ts 150) first.
        assert_eq!(series[0].worker, 1);
        assert_eq!(series[0].omega, 0, "no controller decision on worker 1");
        assert_eq!(series[1].worker, 0);
        assert_eq!(series[1].rows_in, 5);
        assert_eq!(series[1].rows_out, 10);
        assert_eq!(series[1].queue_depth, 1);
        assert_eq!((series[1].omega, series[1].tau), (8, 1000));
        let json = r.to_json();
        assert!(json.contains("\"iteration_series\": [\n"));
        assert!(json.contains("\"queue_depth\":1"));
        // Empty-trace reports keep the field with an empty array.
        assert!(EvalReport::default()
            .to_json()
            .contains("\"iteration_series\": []"));
    }

    #[test]
    fn trace_json_exports_worker_and_controller_tracks() {
        let r = sample_report();
        let json = r.trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"name\":\"dws-controller\""));
        assert!(json.contains("\"name\":\"EvalDelta\""));
        // The decision instant lands on the controller tid (= workers).
        assert!(json.contains("\"name\":\"dws-decision\",\"cat\":\"controller\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2"));
        assert_eq!(r.dropped_events(0), 2);
        assert_eq!(r.dropped_events(1), 0);
        assert_eq!(r.dropped_events(9), 0, "out of range is 0");
    }

    #[test]
    fn json_escapes_strategy_name() {
        let r = EvalReport {
            strategy: "we\"ird".into(),
            ..EvalReport::default()
        };
        assert!(r.to_json().contains(r#""strategy": "we\"ird""#));
    }
}
