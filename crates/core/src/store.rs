//! Worker-local storage: shared/sliced base relations and
//! recursive-relation stores.
//!
//! Each worker owns one [`WorkerStore`]: an `Arc` handle per base relation
//! taken from the shared [`EdbCatalog`](crate::catalog::EdbCatalog)
//! (replicated relations point at the *same* sealed allocation on every
//! worker; partitioned relations at this worker's slice) and a [`RecStore`]
//! per derived relation combining the Gather merge logic (§5.2.2), the
//! aggregate-aware index (§6.2.1) and the existence-check cache (§6.2.2).

use crate::catalog::EdbCatalog;
use dcd_common::{Tuple, Value, WorkerId};
use dcd_frontend::ast::AggFunc;
use dcd_frontend::physical::{PhysicalPlan, RelId, StorageKind};
use dcd_storage::{
    AggCache, AggFunc as StAggFunc, AggRelation, BPlusTree, SealedRelation, SetRelation, TupleCache,
};
use std::sync::Arc;

/// Outcome of merging one incoming row.
#[derive(Debug, PartialEq)]
pub enum Merged {
    /// The logical row is new/improved: feed it to the next delta.
    New(Tuple),
    /// Duplicate / non-improving.
    Old,
}

/// Secondary probe index: column → bucket of current logical rows.
struct SecondaryIndex {
    col: usize,
    map: BPlusTree<Vec<Tuple>>,
    /// For aggregate relations, rows with equal leading `group_cols`
    /// replace each other; `usize::MAX` disables replacement (set rels).
    group_cols: usize,
}

impl SecondaryIndex {
    fn upsert(&mut self, row: &Tuple) {
        let key = row.key(self.col);
        let bucket = self.map.or_insert_with(key, Vec::new);
        if self.group_cols != usize::MAX {
            if let Some(slot) = bucket
                .iter_mut()
                .find(|r| r.values()[..self.group_cols] == row.values()[..self.group_cols])
            {
                *slot = row.clone();
                return;
            }
        }
        bucket.push(row.clone());
    }

    fn probe(&self, key: u64) -> &[Tuple] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Store for one derived relation on one worker.
pub struct RecStore {
    kind: StorageKind,
    set: Option<SetRelation>,
    agg: Option<AggRelation>,
    secondary: Vec<SecondaryIndex>,
    tuple_cache: Option<TupleCache>,
    agg_cache: Option<AggCache>,
    /// §6.2 optimizations enabled? When off, aggregate merges locate their
    /// group by a linear scan (the pre-optimization behaviour of §6.2.1)
    /// and the caches are bypassed.
    optimized: bool,
}

impl RecStore {
    /// Creates the store for `rel` as declared in `plan`.
    pub fn new(plan: &PhysicalPlan, rel: RelId, optimized: bool, cache_slots: usize) -> Self {
        let decl = plan.idb[rel].as_ref().expect("IDB relation");
        let mut secondary: Vec<SecondaryIndex> = Vec::new();
        let (set, agg, tuple_cache, agg_cache, sec_group);
        match &decl.kind {
            StorageKind::Set => {
                let key_col = decl.partition_cols[0];
                set = Some(SetRelation::new(key_col));
                agg = None;
                tuple_cache = optimized.then(|| TupleCache::new(cache_slots));
                agg_cache = None;
                sec_group = usize::MAX;
                // The primary set index covers `key_col`; extra probe
                // columns get secondaries.
                for &c in &decl.index_cols {
                    if c != key_col {
                        secondary.push(SecondaryIndex {
                            col: c,
                            map: BPlusTree::new(),
                            group_cols: sec_group,
                        });
                    }
                }
            }
            StorageKind::Agg {
                func,
                group_cols,
                epsilon,
            } => {
                set = None;
                agg = Some(AggRelation::new(
                    to_storage_func(*func),
                    *group_cols,
                    *epsilon,
                ));
                tuple_cache = None;
                agg_cache = (optimized && matches!(func, AggFunc::Min | AggFunc::Max))
                    .then(|| AggCache::new(cache_slots));
                sec_group = *group_cols;
                for &c in &decl.index_cols {
                    secondary.push(SecondaryIndex {
                        col: c,
                        map: BPlusTree::new(),
                        group_cols: sec_group,
                    });
                }
            }
        }
        RecStore {
            kind: decl.kind.clone(),
            set,
            agg,
            secondary,
            tuple_cache,
            agg_cache,
            optimized,
        }
    }

    /// Storage semantics.
    pub fn kind(&self) -> &StorageKind {
        &self.kind
    }

    /// Number of logical rows / groups.
    pub fn len(&self) -> usize {
        match (&self.set, &self.agg) {
            (Some(s), _) => s.len(),
            (_, Some(a)) => a.len(),
            _ => 0,
        }
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges one incoming merge-layout row (the Gather operator).
    pub fn merge(&mut self, row: &Tuple) -> Merged {
        // Matching on the place (not a clone) is fine: every bound field is
        // `Copy`, so the scrutinee borrow ends before the arms run.
        match self.kind {
            StorageKind::Set => {
                if let Some(cache) = &mut self.tuple_cache {
                    if cache.check(row) {
                        return Merged::Old;
                    }
                }
                let set = self.set.as_mut().expect("set store");
                if set.insert(row.clone()) {
                    if let Some(cache) = &mut self.tuple_cache {
                        cache.record(row);
                    }
                    for idx in &mut self.secondary {
                        idx.upsert(row);
                    }
                    Merged::New(row.clone())
                } else {
                    if let Some(cache) = &mut self.tuple_cache {
                        cache.record(row);
                    }
                    Merged::Old
                }
            }
            StorageKind::Agg {
                func, group_cols, ..
            } => {
                // Cache pre-check (min/max only): prune non-improving rows
                // without touching the B+-tree.
                if let Some(cache) = &mut self.agg_cache {
                    let group = row.prefix(group_cols);
                    if let Some(cached) = cache.get(&group) {
                        let candidate = row.values()[group_cols];
                        let non_improving = match func {
                            AggFunc::Min => candidate >= cached,
                            AggFunc::Max => candidate <= cached,
                            _ => false,
                        };
                        if non_improving {
                            return Merged::Old;
                        }
                    }
                }
                if !self.optimized {
                    // Pre-§6.2.1 behaviour: locate the group with a linear
                    // scan of the relation before merging.
                    let agg = self.agg.as_ref().expect("agg store");
                    let group_vals = &row.values()[..group_cols];
                    let mut _found = false;
                    for logical in agg.iter() {
                        if &logical.values()[..group_cols] == group_vals {
                            _found = true;
                            break;
                        }
                    }
                }
                let agg = self.agg.as_mut().expect("agg store");
                match agg.merge(row) {
                    dcd_storage::aggregate::MergeOutcome::Updated(logical) => {
                        if let Some(cache) = &mut self.agg_cache {
                            let group = logical.prefix(group_cols);
                            cache.record(&group, logical.values()[group_cols]);
                        }
                        for idx in &mut self.secondary {
                            idx.upsert(&logical);
                        }
                        Merged::New(logical)
                    }
                    dcd_storage::aggregate::MergeOutcome::Unchanged => Merged::Old,
                }
            }
        }
    }

    /// Probes the relation on `col == key` (index join).
    pub fn probe(&self, col: usize, key: u64) -> &[Tuple] {
        if let Some(set) = &self.set {
            if set.key_col() == col {
                return set.probe(key);
            }
        }
        self.secondary
            .iter()
            .find(|s| s.col == col)
            .map(|s| s.probe(key))
            .unwrap_or_else(|| panic!("no index on column {col}"))
    }

    /// All current logical rows (scan).
    pub fn rows(&self) -> Vec<Tuple> {
        match (&self.set, &self.agg) {
            (Some(s), _) => s.iter().cloned().collect(),
            (_, Some(a)) => a.rows(),
            _ => Vec::new(),
        }
    }

    /// Streams the current logical rows without materializing a `Vec` —
    /// the evaluator's in-place IDB scan. Set rows are borrowed straight
    /// from the index; aggregate rows are assembled lazily.
    pub fn scan(&self) -> RecScan<'_> {
        match (&self.set, &self.agg) {
            (Some(s), _) => RecScan::Set(s.scan()),
            (_, Some(a)) => RecScan::Agg(a.scan()),
            _ => RecScan::Empty,
        }
    }

    /// Existence-cache `(hits, misses)` for this relation, summed over the
    /// tuple and aggregate caches (both zero when optimizations are off).
    pub fn cache_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = (0, 0);
        if let Some(c) = &self.tuple_cache {
            h += c.hits();
            m += c.misses();
        }
        if let Some(c) = &self.agg_cache {
            h += c.hits();
            m += c.misses();
        }
        (h, m)
    }
}

/// Streaming scan over a [`RecStore`]'s logical rows. `Cow` items let set
/// relations lend their rows borrow-only while aggregate relations yield
/// the `(group…, value)` rows they assemble on the fly.
pub enum RecScan<'a> {
    /// Borrowed rows from a set relation.
    Set(dcd_storage::SetScan<'a>),
    /// Assembled rows from an aggregate relation.
    Agg(dcd_storage::AggScan<'a>),
    /// Defensive arm for a store with no backing relation.
    Empty,
}

impl<'a> Iterator for RecScan<'a> {
    type Item = std::borrow::Cow<'a, Tuple>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RecScan::Set(s) => s.next().map(std::borrow::Cow::Borrowed),
            RecScan::Agg(a) => a.next().map(std::borrow::Cow::Owned),
            RecScan::Empty => None,
        }
    }
}

fn to_storage_func(f: AggFunc) -> StAggFunc {
    match f {
        AggFunc::Min => StAggFunc::Min,
        AggFunc::Max => StAggFunc::Max,
        AggFunc::Sum => StAggFunc::Sum,
        AggFunc::Count => StAggFunc::Count,
    }
}

/// All per-worker storage.
pub struct WorkerStore {
    /// `edb[p]`: this worker's handle on base relation `p` — shared for
    /// replicated relations, a private slice for partitioned ones.
    pub edb: Vec<Option<Arc<SealedRelation>>>,
    /// `idb[p]`: this worker's store for derived relation `p`.
    pub idb: Vec<Option<RecStore>>,
}

impl WorkerStore {
    /// Builds the store for worker `me`: takes base-relation handles from
    /// the shared catalog and creates empty recursive stores. No EDB rows
    /// are copied and no indexes are built here — the catalog did both,
    /// exactly once.
    pub fn build(
        plan: &PhysicalPlan,
        catalog: &EdbCatalog,
        me: WorkerId,
        optimized: bool,
        cache_slots: usize,
    ) -> Self {
        let edb = (0..plan.edb.len())
            .map(|id| catalog.for_worker(id, me))
            .collect();
        let idb = plan
            .idb
            .iter()
            .map(|d| {
                d.as_ref()
                    .map(|d| RecStore::new(plan, d.id, optimized, cache_slots))
            })
            .collect();
        WorkerStore { edb, idb }
    }

    /// The base relation `rel` (panics if not EDB — planner bug).
    pub fn base(&self, rel: RelId) -> &SealedRelation {
        self.edb[rel].as_ref().expect("EDB relation present")
    }

    /// The derived store `rel`.
    pub fn rec(&self, rel: RelId) -> &RecStore {
        self.idb[rel].as_ref().expect("IDB relation present")
    }

    /// Mutable derived store `rel`.
    pub fn rec_mut(&mut self, rel: RelId) -> &mut RecStore {
        self.idb[rel].as_mut().expect("IDB relation present")
    }

    /// Existence-cache `(hits, misses)` totals over every derived store.
    pub fn cache_totals(&self) -> (u64, u64) {
        self.idb
            .iter()
            .flatten()
            .map(RecStore::cache_stats)
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }
}

/// Convenience for tests: the canonical group value of a logical row.
pub fn row_group(row: &Tuple, group_cols: usize) -> &[Value] {
    &row.values()[..group_cols]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_frontend::physical::{plan, PlannerConfig};
    use dcd_frontend::{analyze, parse_program};

    fn tc_plan() -> PhysicalPlan {
        let a = analyze(
            parse_program("tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).").unwrap(),
        )
        .unwrap();
        plan(&a, &PlannerConfig::default()).unwrap()
    }

    fn cc_plan() -> PhysicalPlan {
        let a = analyze(
            parse_program(
                "cc2(Y, min<Y>) <- arc(Y, _).
                 cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).
                 cc(Y, min<Z>) <- cc2(Y, Z).",
            )
            .unwrap(),
        )
        .unwrap();
        plan(&a, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn set_store_merges_and_probes() {
        let p = tc_plan();
        let tc = p.rel_by_name("tc").unwrap();
        let mut s = RecStore::new(&p, tc, true, 64);
        assert_eq!(
            s.merge(&Tuple::from_ints(&[1, 2])),
            Merged::New(Tuple::from_ints(&[1, 2]))
        );
        assert_eq!(s.merge(&Tuple::from_ints(&[1, 2])), Merged::Old);
        // tc is keyed on column 1 (its join column).
        let hits = s.probe(1, Tuple::from_ints(&[0, 2]).key(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn agg_store_improves_and_prunes() {
        let p = cc_plan();
        let cc2 = p.rel_by_name("cc2").unwrap();
        let mut s = RecStore::new(&p, cc2, true, 64);
        assert!(matches!(
            s.merge(&Tuple::from_ints(&[5, 9])),
            Merged::New(_)
        ));
        assert_eq!(s.merge(&Tuple::from_ints(&[5, 9])), Merged::Old);
        assert_eq!(s.merge(&Tuple::from_ints(&[5, 10])), Merged::Old);
        match s.merge(&Tuple::from_ints(&[5, 3])) {
            Merged::New(row) => assert_eq!(row, Tuple::from_ints(&[5, 3])),
            other => panic!("expected improvement, got {other:?}"),
        }
        assert_eq!(s.rows(), vec![Tuple::from_ints(&[5, 3])]);
    }

    #[test]
    fn unoptimized_store_agrees_with_optimized() {
        let p = cc_plan();
        let cc2 = p.rel_by_name("cc2").unwrap();
        let mut fast = RecStore::new(&p, cc2, true, 64);
        let mut slow = RecStore::new(&p, cc2, false, 64);
        let rows = [[1i64, 7], [2, 5], [1, 3], [1, 9], [2, 2], [3, 3]];
        for r in rows {
            let t = Tuple::from_ints(&r);
            let a = fast.merge(&t);
            let b = slow.merge(&t);
            assert_eq!(
                matches!(a, Merged::New(_)),
                matches!(b, Merged::New(_)),
                "divergence on {t:?}"
            );
        }
        let mut fr = fast.rows();
        let mut sr = slow.rows();
        fr.sort();
        sr.sort();
        assert_eq!(fr, sr);
    }

    #[test]
    fn scan_streams_the_same_rows_as_rows() {
        let p = tc_plan();
        let tc = p.rel_by_name("tc").unwrap();
        let mut s = RecStore::new(&p, tc, true, 64);
        for i in 0..50i64 {
            s.merge(&Tuple::from_ints(&[i % 7, i]));
        }
        let a = s.rows();
        let b: Vec<Tuple> = s.scan().map(|c| c.into_owned()).collect();
        assert_eq!(a, b);

        let p = cc_plan();
        let cc2 = p.rel_by_name("cc2").unwrap();
        let mut s = RecStore::new(&p, cc2, true, 64);
        for i in 0..50i64 {
            s.merge(&Tuple::from_ints(&[i % 7, i]));
        }
        let a = s.rows();
        let b: Vec<Tuple> = s.scan().map(|c| c.into_owned()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_store_partitions_edb() {
        use dcd_common::Partitioner;
        use dcd_storage::EdbRead;
        let p = tc_plan();
        let arc = p.rel_by_name("arc").unwrap();
        let rows: Vec<Tuple> = (0..100).map(|i| Tuple::from_ints(&[i, i + 1])).collect();
        let mut edb_data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        edb_data[arc] = Some(rows.clone());
        let part = Partitioner::new(4);
        let catalog = EdbCatalog::build(&p, &edb_data, &part);
        let mut total = 0;
        for w in 0..4 {
            let ws = WorkerStore::build(&p, &catalog, w, true, 64);
            total += ws.base(arc).len();
            // Index on column 0 was built (tc's rule probes arc on col 0).
            assert!(ws.base(arc).has_index(0));
            for r in ws.base(arc).rows() {
                assert_eq!(part.of_key(r.key(0)), w);
            }
        }
        assert_eq!(total, 100);
    }
}
