//! Engine configuration.

use dcd_runtime::Strategy;
use std::time::Duration;

/// Configuration for a DCDatalog evaluation.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of workers (threads). Defaults to available parallelism.
    pub workers: usize,
    /// Coordination strategy (§4): Global, SSP(s) or DWS.
    pub strategy: Strategy,
    /// Enable the §6.2 optimizations (aggregate-aware index lookups and
    /// the existence-check cache). Disabled for the Table-4 ablation.
    pub optimized: bool,
    /// Existence-cache slots per worker per relation.
    pub cache_slots: usize,
    /// ε for `sum` aggregate convergence (PageRank).
    pub sum_epsilon: f64,
    /// Capacity (batches) of each SPSC queue.
    pub queue_capacity: usize,
    /// Max tuples per outgoing batch.
    pub batch_size: usize,
    /// Idle poll interval for termination detection.
    pub idle_poll: Duration,
    /// Wall-clock evaluation timeout (`None` = unbounded). On expiry the
    /// run aborts with an execution error, mirroring the paper's 10-hour
    /// cap (`TO` entries).
    pub timeout: Option<Duration>,
    /// Route every derived tuple to *all* workers instead of its hash
    /// partition(s). This emulates the broadcast behaviour the paper
    /// attributes to SociaLite/DDlog on non-linear queries (Table 3) and
    /// exists only as a comparison baseline.
    pub broadcast_routing: bool,
    /// Evaluate Iterate with the batched delta-join kernel (the default).
    /// When off, delta rows run tuple-at-a-time through `eval_delta` —
    /// the reference path the differential tests compare against.
    pub batch_kernel: bool,
    /// Record per-worker phase spans and instant marks into bounded ring
    /// buffers (`dcd_runtime::trace`). Off by default: the tracer then
    /// compiles down to a branch on a `false` flag per phase.
    pub trace: bool,
    /// Events retained per worker ring when tracing; overflow increments
    /// the worker's `dropped_events` counter instead of reallocating.
    pub trace_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            strategy: Strategy::Dws,
            optimized: true,
            cache_slots: 1 << 15,
            sum_epsilon: 1e-9,
            queue_capacity: 1 << 10,
            batch_size: 4096,
            idle_poll: Duration::from_micros(100),
            timeout: None,
            broadcast_routing: false,
            batch_kernel: true,
            trace: false,
            trace_capacity: dcd_runtime::trace::DEFAULT_TRACE_CAP,
        }
    }
}

impl EngineConfig {
    /// Convenience: config with `n` workers, defaults otherwise.
    pub fn with_workers(n: usize) -> Self {
        EngineConfig {
            workers: n.max(1),
            ..Default::default()
        }
    }

    /// Convenience: set the coordination strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Convenience: toggle the §6.2 optimizations.
    pub fn optimizations(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }

    /// Convenience: toggle the batched Iterate kernel.
    pub fn batch_kernel(mut self, on: bool) -> Self {
        self.batch_kernel = on;
        self
    }

    /// Convenience: toggle per-worker event tracing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.workers >= 1);
        assert!(c.optimized);
        assert!(c.timeout.is_none());
        assert!(c.batch_kernel, "batched kernel is the default path");
        assert!(!EngineConfig::default().batch_kernel(false).batch_kernel);
        assert!(!c.trace, "tracing is opt-in");
        assert!(c.trace_capacity > 0);
        assert!(EngineConfig::default().tracing(true).trace);
    }

    #[test]
    fn builders() {
        let c = EngineConfig::with_workers(0);
        assert_eq!(c.workers, 1, "clamped to one worker");
        let c = EngineConfig::with_workers(3)
            .strategy(Strategy::Ssp { s: 5 })
            .optimizations(false);
        assert_eq!(c.workers, 3);
        assert_eq!(c.strategy.name(), "SSP");
        assert!(!c.optimized);
    }
}
