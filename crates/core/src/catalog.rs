//! The shared, immutable EDB catalog: base data built exactly once.
//!
//! Before workers spawn, the engine turns the loaded EDB into an
//! [`EdbCatalog`]: for every replicated relation one
//! `Arc<SealedRelation>` — rows *and* hash indexes — shared by every
//! worker, and for every partitioned relation one sealed slice per worker.
//! This replaces the seed design where each worker copied every replicated
//! relation (`rows.to_vec()`) and rebuilt its indexes privately, which made
//! replicated-EDB residency O(workers); with the catalog it is O(1), and
//! catalog construction happens off the evaluation clock.

use dcd_common::{Partitioner, Tuple, WorkerId};
use dcd_frontend::physical::{PhysicalPlan, Placement, RelId};
use dcd_storage::SealedRelation;
use std::sync::Arc;

/// How one base relation is materialized.
enum CatalogEntry {
    /// One shared copy (rows + indexes) for all workers.
    Replicated(Arc<SealedRelation>),
    /// One sealed slice per worker, by `H(row[col])`.
    Partitioned(Vec<Arc<SealedRelation>>),
}

/// All base relations of one evaluation, sealed and placement-resolved.
pub struct EdbCatalog {
    rels: Vec<Option<CatalogEntry>>,
    workers: usize,
}

impl EdbCatalog {
    /// Seals every loaded base relation per the plan's placement.
    pub fn build(plan: &PhysicalPlan, edb_data: &[Option<Vec<Tuple>>], part: &Partitioner) -> Self {
        let rels = plan
            .edb
            .iter()
            .map(|decl| {
                let d = decl.as_ref()?;
                let rows = edb_data[d.id].as_deref().unwrap_or(&[]);
                Some(match d.placement {
                    Placement::Replicated => CatalogEntry::Replicated(Arc::new(
                        SealedRelation::build(rows.to_vec(), &d.index_cols),
                    )),
                    Placement::Partitioned(c) => CatalogEntry::Partitioned(
                        SealedRelation::partition_rows(rows, part, c)
                            .into_iter()
                            .map(|slice| Arc::new(SealedRelation::build(slice, &d.index_cols)))
                            .collect(),
                    ),
                })
            })
            .collect();
        EdbCatalog {
            rels,
            workers: part.partitions(),
        }
    }

    /// Number of worker slots the catalog was partitioned for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The sealed relation worker `me` reads for `rel` (`None` for IDB
    /// slots). Replicated relations hand out clones of the same `Arc`.
    pub fn for_worker(&self, rel: RelId, me: WorkerId) -> Option<Arc<SealedRelation>> {
        match self.rels.get(rel)?.as_ref()? {
            CatalogEntry::Replicated(shared) => Some(Arc::clone(shared)),
            CatalogEntry::Partitioned(slices) => Some(Arc::clone(&slices[me])),
        }
    }

    /// Resident bytes of all replicated relations — counted once, because
    /// they exist once regardless of worker count.
    pub fn replicated_bytes(&self) -> u64 {
        self.rels
            .iter()
            .flatten()
            .map(|e| match e {
                CatalogEntry::Replicated(r) => r.resident_bytes(),
                CatalogEntry::Partitioned(_) => 0,
            })
            .sum()
    }

    /// Resident bytes of the partitioned slices held for worker `me` —
    /// the EDB storage unique to that worker.
    pub fn partitioned_bytes(&self, me: WorkerId) -> u64 {
        self.rels
            .iter()
            .flatten()
            .map(|e| match e {
                CatalogEntry::Replicated(_) => 0,
                CatalogEntry::Partitioned(slices) => slices[me].resident_bytes(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_frontend::physical::{plan, PlannerConfig};
    use dcd_frontend::{analyze, parse_program};
    use dcd_storage::EdbRead;

    fn plan_for(src: &str) -> PhysicalPlan {
        plan(
            &analyze(parse_program(src).unwrap()).unwrap(),
            &PlannerConfig::default(),
        )
        .unwrap()
    }

    /// TC partitions `arc` on column 0; SG replicates it (two probe keys).
    const TC: &str = "tc(X, Y) <- arc(X, Y). tc(X, Y) <- tc(X, Z), arc(Z, Y).";
    const SG: &str = "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.
                      sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).";

    fn arcs(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::from_ints(&[i, i + 1])).collect()
    }

    fn catalog_for(src: &str, workers: usize, rows: Vec<Tuple>) -> (PhysicalPlan, EdbCatalog) {
        let p = plan_for(src);
        let arc = p.rel_by_name("arc").unwrap();
        let mut data: Vec<Option<Vec<Tuple>>> = vec![None; p.edb.len()];
        data[arc] = Some(rows);
        let cat = EdbCatalog::build(&p, &data, &Partitioner::new(workers));
        (p, cat)
    }

    #[test]
    fn replicated_relations_share_one_allocation() {
        let (p, cat) = catalog_for(SG, 4, arcs(50));
        let arc = p.rel_by_name("arc").unwrap();
        let a = cat.for_worker(arc, 0).unwrap();
        let b = cat.for_worker(arc, 3).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same Arc handed to every worker");
        assert_eq!(a.len(), 50);
        assert!(cat.replicated_bytes() > 0);
        assert_eq!(cat.partitioned_bytes(0), 0);
    }

    #[test]
    fn replicated_bytes_do_not_scale_with_workers() {
        let (_, cat1) = catalog_for(SG, 1, arcs(50));
        let (_, cat4) = catalog_for(SG, 4, arcs(50));
        assert_eq!(cat1.replicated_bytes(), cat4.replicated_bytes());
    }

    #[test]
    fn partitioned_relations_split_rows_exhaustively() {
        let (p, cat) = catalog_for(TC, 4, arcs(100));
        let arc = p.rel_by_name("arc").unwrap();
        let part = Partitioner::new(4);
        let mut total = 0;
        for w in 0..4 {
            let slice = cat.for_worker(arc, w).unwrap();
            total += slice.len();
            for row in slice.rows() {
                assert_eq!(part.of_key(row.key(0)), w);
            }
            assert!(cat.partitioned_bytes(w) > 0 || slice.is_empty());
        }
        assert_eq!(total, 100);
        assert_eq!(cat.replicated_bytes(), 0);
    }

    #[test]
    fn idb_slots_are_absent() {
        let (p, cat) = catalog_for(TC, 2, arcs(10));
        let tc = p.rel_by_name("tc").unwrap();
        assert!(cat.for_worker(tc, 0).is_none());
    }
}
