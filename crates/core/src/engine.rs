//! The public DCDatalog API: [`Program`] → [`Engine`] → [`EvalResult`].

use crate::catalog::EdbCatalog;
use crate::config::EngineConfig;
use crate::report::EvalReport;
use crate::store::WorkerStore;
use crate::worker::{Coordination, Worker, WorkerStats};
use dcd_common::hash::{FastMap, FastSet};
use dcd_common::{DcdError, Result, Tuple, Value};
use dcd_frontend::ast::AggFunc;
use dcd_frontend::physical::{plan, PhysicalPlan, PlannerConfig, StorageKind};
use dcd_frontend::{analyze, parse_program, AnalyzedProgram};
use std::time::{Duration, Instant};

/// A parsed and analyzed Datalog program plus its parameters.
#[derive(Clone, Debug)]
pub struct Program {
    analyzed: AnalyzedProgram,
    params: FastMap<String, Value>,
}

impl Program {
    /// Parses and analyzes Datalog source text.
    pub fn parse(src: &str) -> Result<Program> {
        Ok(Program {
            analyzed: analyze(parse_program(src)?)?,
            params: FastMap::default(),
        })
    }

    /// Binds a named parameter (`start`, `alpha`, …).
    pub fn with_param(mut self, name: &str, value: impl Into<Value>) -> Program {
        self.params.insert(name.to_string(), value.into());
        self
    }

    /// The analyzed form (for inspection).
    pub fn analyzed(&self) -> &AnalyzedProgram {
        &self.analyzed
    }
}

/// Evaluation statistics.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock evaluation time (excludes loading, includes planning-free
    /// execution only).
    pub elapsed: Duration,
    /// Per-worker statistics.
    pub workers: Vec<WorkerStats>,
    /// The full observability report (per-worker counters, time splits,
    /// DWS ω/τ samples, termination totals).
    pub report: EvalReport,
}

impl RunStats {
    /// Total local iterations across workers.
    pub fn total_iterations(&self) -> u64 {
        self.workers.iter().map(|w| w.iterations).sum()
    }

    /// Total tuples exchanged between workers.
    pub fn total_sent(&self) -> u64 {
        self.workers.iter().map(|w| w.sent).sum()
    }
}

/// The result of an evaluation: every derived relation, fully merged.
#[derive(Clone, Debug)]
pub struct EvalResult {
    relations: FastMap<String, Vec<Tuple>>,
    /// Statistics of the run.
    pub stats: RunStats,
}

impl EvalResult {
    /// Rows of derived relation `name` (empty slice when absent).
    pub fn relation(&self, name: &str) -> &[Tuple] {
        self.relations
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Sorted rows of `name` (convenience for tests/doctests).
    pub fn sorted(&self, name: &str) -> Vec<Tuple> {
        let mut rows = self.relation(name).to_vec();
        rows.sort();
        rows
    }

    /// Names of all derived relations.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }
}

/// The DCDatalog engine: a planned program plus loaded base data.
pub struct Engine {
    plan: PhysicalPlan,
    cfg: EngineConfig,
    edb_data: Vec<Option<Vec<Tuple>>>,
}

impl Engine {
    /// Plans `program` for execution under `cfg`.
    pub fn new(program: Program, cfg: EngineConfig) -> Result<Engine> {
        let planner_cfg = PlannerConfig {
            params: program.params.clone(),
            sum_epsilon: cfg.sum_epsilon,
        };
        let mut plan = plan(&program.analyzed, &planner_cfg)?;
        if cfg.broadcast_routing {
            for decl in plan.idb.iter_mut().flatten() {
                decl.broadcast = true;
            }
        }
        // Inline facts for sum/count relations would need contributor
        // columns; reject them early with a clear message.
        for (rel, _) in &plan.facts {
            if let Some(decl) = plan.idb[*rel].as_ref() {
                if let StorageKind::Agg {
                    func: AggFunc::Sum | AggFunc::Count,
                    ..
                } = decl.kind
                {
                    return Err(DcdError::Planning(format!(
                        "inline facts for sum/count relation '{}' are not supported",
                        decl.name
                    )));
                }
            }
        }
        let edb_data = vec![None; plan.edb.len()];
        Ok(Engine {
            plan,
            cfg,
            edb_data,
        })
    }

    /// The physical plan (EXPLAIN).
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// Loads rows for base relation `name`, replacing any previous load.
    pub fn load_edb(&mut self, name: &str, rows: Vec<Tuple>) -> Result<()> {
        let rel = self
            .plan
            .rel_by_name(name)
            .ok_or_else(|| DcdError::MissingRelation(name.to_string()))?;
        let decl = self.plan.edb[rel]
            .as_ref()
            .ok_or_else(|| DcdError::Planning(format!("'{name}' is a derived relation")))?;
        for t in &rows {
            if t.arity() != decl.arity {
                return Err(DcdError::Execution(format!(
                    "row {t:?} has arity {} but '{name}' expects {}",
                    t.arity(),
                    decl.arity
                )));
            }
        }
        self.edb_data[rel] = Some(rows);
        Ok(())
    }

    /// Convenience: loads `(src, dst)` integer edges.
    pub fn load_edges(&mut self, name: &str, edges: &[(i64, i64)]) -> Result<()> {
        self.load_edb(
            name,
            edges
                .iter()
                .map(|&(a, b)| Tuple::from_ints(&[a, b]))
                .collect(),
        )
    }

    /// Convenience: loads `(src, dst, weight)` integer edges.
    pub fn load_weighted_edges(&mut self, name: &str, edges: &[(i64, i64, i64)]) -> Result<()> {
        self.load_edb(
            name,
            edges
                .iter()
                .map(|&(a, b, w)| Tuple::from_ints(&[a, b, w]))
                .collect(),
        )
    }

    /// Runs the parallel evaluation to the global fixpoint.
    pub fn run(&self) -> Result<EvalResult> {
        // Every EDB referenced by a rule must be loaded (empty is legal but
        // must be explicit, guarding against typos in relation names).
        for decl in self.plan.edb.iter().flatten() {
            if self.edb_data[decl.id].is_none() {
                return Err(DcdError::MissingRelation(decl.name.clone()));
            }
        }
        let coord = Coordination::new(&self.plan, &self.cfg);
        // Seal the EDB once, before any worker spawns: replicated relations
        // become a single Arc-shared copy (rows + indexes), partitioned
        // relations one sealed slice per worker. Catalog construction is
        // off the evaluation clock, like the paper's load phase.
        let catalog = EdbCatalog::build(&self.plan, &self.edb_data, &coord.part);
        for me in 0..self.cfg.workers {
            coord.metrics[me].record_edb_resident(catalog.partitioned_bytes(me));
        }
        let start = Instant::now();
        let n = self.cfg.workers;

        let results: Vec<Result<(WorkerStore, WorkerStats)>> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for me in 0..n {
                let coord = &coord;
                let plan = &self.plan;
                let cfg = &self.cfg;
                let catalog = &catalog;
                handles.push(s.spawn(move || {
                    let store =
                        WorkerStore::build(plan, catalog, me, cfg.optimized, cfg.cache_slots);
                    let worker = Worker::new(plan, cfg, coord, me);
                    let out = worker.run(store);
                    if out.is_err() {
                        coord.cancel();
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => {
                        coord.cancel();
                        Err(DcdError::Execution("worker panicked".into()))
                    }
                })
                .collect()
        });
        let elapsed = start.elapsed();

        // On failure, prefer the root-cause error: one worker trips the
        // deadline ("timed out") and cancels the rest, which then report
        // the generic "aborted" — the timeout is the answer.
        if results.iter().any(|r| r.is_err()) {
            let mut first_err = None;
            for r in results {
                if let Err(e) = r {
                    if e.to_string().contains("timed out") {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
            return Err(first_err.expect("at least one error"));
        }
        let mut stores = Vec::with_capacity(n);
        let mut worker_stats = Vec::with_capacity(n);
        for r in results {
            let (store, stats) = r?;
            stores.push(store);
            worker_stats.push(stats);
        }
        let (produced, consumed) = coord.termination_totals();
        let report = EvalReport {
            strategy: self.cfg.strategy.name().to_string(),
            workers: n,
            elapsed_ns: elapsed.as_nanos() as u64,
            produced,
            consumed,
            edb_replicated_bytes: catalog.replicated_bytes(),
            per_worker: coord.metrics.iter().map(|m| m.snapshot()).collect(),
            traces: coord
                .tracers
                .iter()
                .enumerate()
                .map(|(i, t)| t.take(i))
                .collect(),
        };
        let relations = self.collect(stores);
        Ok(EvalResult {
            relations,
            stats: RunStats {
                elapsed,
                workers: worker_stats,
                report,
            },
        })
    }

    /// Merges per-worker stores into global relations. Multi-route and
    /// broadcast relations hold replicas that have converged to identical
    /// values, so grouping dedup is safe.
    fn collect(&self, stores: Vec<WorkerStore>) -> FastMap<String, Vec<Tuple>> {
        let mut out: FastMap<String, Vec<Tuple>> = FastMap::default();
        for decl in self.plan.idb.iter().flatten() {
            let mut rows: Vec<Tuple> = Vec::new();
            match &decl.kind {
                StorageKind::Set => {
                    let mut seen: FastSet<Tuple> = FastSet::default();
                    for st in &stores {
                        for row in st.rec(decl.id).rows() {
                            if seen.insert(row.clone()) {
                                rows.push(row);
                            }
                        }
                    }
                }
                StorageKind::Agg {
                    func, group_cols, ..
                } => {
                    let mut best: FastMap<Vec<Value>, Value> = FastMap::default();
                    for st in &stores {
                        for row in st.rec(decl.id).rows() {
                            let group = row.values()[..*group_cols].to_vec();
                            let val = row.values()[*group_cols];
                            best.entry(group)
                                .and_modify(|cur| {
                                    let replace = match func {
                                        AggFunc::Min => val < *cur,
                                        AggFunc::Max => val > *cur,
                                        // Converged replicas are equal;
                                        // keep the first.
                                        AggFunc::Sum | AggFunc::Count => false,
                                    };
                                    if replace {
                                        *cur = val;
                                    }
                                })
                                .or_insert(val);
                        }
                    }
                    rows.extend(best.into_iter().map(|(mut g, v)| {
                        g.push(v);
                        Tuple::new(&g)
                    }));
                }
            }
            out.insert(decl.name.clone(), rows);
        }
        out
    }
}
