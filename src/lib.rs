//! Umbrella crate for the DCDatalog reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. Library consumers should depend on [`dcdatalog`]
//! directly.

pub use dcd_baselines as baselines;
pub use dcd_common as common;
pub use dcd_datagen as datagen;
pub use dcd_frontend as frontend;
pub use dcd_runtime as runtime;
pub use dcd_storage as storage;
pub use dcdatalog as engine;
