//! The paper's "who will attend the party" query (Query 4): mutual
//! recursion between `attend` and a `count` aggregate. A person attends
//! if at least `threshold` of their friends attend — a social cascade.
//!
//! ```text
//! cargo run --release --example party_invitations [people] [threshold]
//! ```

use dcd_common::rng::Rng;
use dcdatalog_repro::engine::{queries, Engine, EngineConfig, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let people: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let threshold: i64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // A small-world friendship graph: everyone knows their three
    // predecessors plus ~5 random people; the first five organize the
    // party. The local links let attendance cascade through the crowd.
    let mut rng = Rng::seed_from_u64(0xbeef);
    let mut friends = Vec::new();
    for p in 0..people {
        for d in 1..=3 {
            if p - d >= 0 {
                friends.push((p, p - d)); // friend(Y, X): Y's friend X
            }
        }
        for _ in 0..5 {
            let q = rng.gen_range(0..people);
            if q != p {
                friends.push((p, q));
            }
        }
    }
    let organizers: Vec<Tuple> = (0..5).map(|p| Tuple::from_ints(&[p])).collect();

    let mut engine = Engine::new(queries::attend(threshold)?, EngineConfig::default())?;
    engine.load_edb("organizer", organizers)?;
    engine.load_edges("friend", &friends)?;
    let t = std::time::Instant::now();
    let result = engine.run()?;
    let attending = result.relation("attend").len();
    println!(
        "{attending} of {people} people attend (threshold {threshold}) — computed in {:?}",
        t.elapsed()
    );

    // Cascades are monotone in the threshold: raising it can only shrink
    // the party.
    let mut engine = Engine::new(queries::attend(threshold + 2)?, EngineConfig::default())?;
    engine.load_edb(
        "organizer",
        (0..5).map(|p| Tuple::from_ints(&[p])).collect(),
    )?;
    engine.load_edges("friend", &friends)?;
    let stricter = engine.run()?.relation("attend").len();
    println!("with threshold {}: {stricter} attend", threshold + 2);
    assert!(stricter <= attending);
    Ok(())
}
