//! Quickstart: write a Datalog program as text, load base facts, run the
//! parallel engine, read results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcdatalog_repro::engine::{queries, Engine, EngineConfig, Program, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The classic: transitive closure over an edge relation.
    let mut engine = Engine::new(queries::tc()?, EngineConfig::with_workers(2))?;
    engine.load_edges("arc", &[(1, 2), (2, 3), (3, 4), (2, 5)])?;
    let result = engine.run()?;
    println!("tc has {} facts:", result.relation("tc").len());
    for row in result.sorted("tc") {
        println!("  tc{row}");
    }

    // 2. A custom program with a parameter and an aggregate in recursion:
    //    shortest hop-count from a start vertex.
    let program = Program::parse(
        "hops(V, min<H>) <- V = start, H = 0.
         hops(V, min<H>) <- hops(U, H0), arc(U, V), H = H0 + 1.",
    )?
    .with_param("start", 1i64);
    let mut engine = Engine::new(
        program,
        EngineConfig::with_workers(2).strategy(Strategy::Dws),
    )?;
    engine.load_edges("arc", &[(1, 2), (2, 3), (3, 4), (2, 5), (1, 5)])?;
    let result = engine.run()?;
    println!("\nhop counts from vertex 1:");
    for row in result.sorted("hops") {
        println!("  hops{row}");
    }

    // 3. Inspect the parallel plan the engine produced (EXPLAIN).
    let engine = Engine::new(queries::cc()?, EngineConfig::with_workers(4))?;
    println!("\nCC physical plan:\n{}", engine.explain());
    Ok(())
}
