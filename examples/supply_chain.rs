//! Bill-of-materials analysis (the paper's Delivery query): given an
//! assembly tree and per-part delivery days for basic parts, compute each
//! assembly's delivery time — `max` in recursion over a deep DAG.
//!
//! ```text
//! cargo run --release --example supply_chain [parts]
//! ```

use dcdatalog_repro::datagen::{n_tree, trees::leaf_days, vertex_count};
use dcdatalog_repro::engine::{queries, Engine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parts: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    // `assbl(P, S)`: assembly P contains sub-part S. `basic(P, D)`: basic
    // part P takes D days to source.
    let assbl = n_tree(parts, 7);
    let basic = leaf_days(&assbl, 30, 7);
    println!(
        "bill of materials: {} parts, {} basic parts",
        vertex_count(&assbl),
        basic.len()
    );

    let mut engine = Engine::new(queries::delivery()?, EngineConfig::default())?;
    engine.load_edges("assbl", &assbl)?;
    engine.load_edges("basic", &basic)?;
    let t = std::time::Instant::now();
    let result = engine.run()?;
    let rows = result.relation("results");
    println!(
        "computed {} delivery times in {:?}",
        rows.len(),
        t.elapsed()
    );

    // The root assembly (part 0) is gated by its slowest basic part chain.
    let root = rows
        .iter()
        .find(|r| r.values()[0].expect_int() == 0)
        .expect("root part present");
    println!("root assembly delivery time: {} days", root.values()[1]);

    // Sanity: the root's time is the max over all parts.
    let max_days = rows
        .iter()
        .map(|r| r.values()[1].expect_int())
        .max()
        .unwrap();
    assert_eq!(root.values()[1].expect_int(), max_days);
    println!("(equals the maximum over all parts: {max_days} — as max-in-recursion requires)");
    Ok(())
}
