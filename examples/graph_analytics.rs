//! Graph analytics on a generated social-network-like graph: connected
//! components, single-source shortest paths and PageRank — the three
//! graph workloads of the paper's evaluation — in one session.
//!
//! ```text
//! cargo run --release --example graph_analytics [scale-divisor]
//! ```

use dcdatalog_repro::datagen;
use dcdatalog_repro::engine::{queries, Engine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let edges = datagen::livejournal_like(scale, 42);
    let nv = datagen::vertex_count(&edges);
    println!(
        "graph: {} vertices, {} edges (LiveJournal-like / {scale})",
        nv,
        edges.len()
    );

    // Connected components (min-label propagation; undirected).
    let mut engine = Engine::new(queries::cc()?, EngineConfig::default())?;
    engine.load_edges("arc", &datagen::symmetrize(&edges))?;
    let t = std::time::Instant::now();
    let cc = engine.run()?;
    let mut labels: Vec<i64> = cc
        .relation("cc")
        .iter()
        .map(|r| r.values()[1].expect_int())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    println!(
        "CC: {} components in {:?} ({} local iterations)",
        labels.len(),
        t.elapsed(),
        cc.stats.total_iterations()
    );

    // Single-source shortest paths over random weights.
    let weighted = datagen::weighted(&edges, 100, 42);
    let source = weighted[0].0;
    let mut engine = Engine::new(queries::sssp(source)?, EngineConfig::default())?;
    engine.load_weighted_edges("warc", &weighted)?;
    let t = std::time::Instant::now();
    let sp = engine.run()?;
    println!(
        "SSSP from {source}: reached {} vertices in {:?}",
        sp.relation("results").len(),
        t.elapsed()
    );

    // PageRank with damping 0.85 (sum aggregate in recursion).
    let cfg = EngineConfig {
        sum_epsilon: 1e-7,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(queries::pagerank(0.85, nv)?, cfg)?;
    engine.load_edb("matrix", datagen::pagerank_matrix(&edges))?;
    let t = std::time::Instant::now();
    let pr = engine.run()?;
    let mut ranks: Vec<(f64, i64)> = pr
        .relation("results")
        .iter()
        .map(|r| (r.values()[1].as_f64(), r.values()[0].expect_int()))
        .collect();
    ranks.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("PageRank converged in {:?}; top 5:", t.elapsed());
    for (rank, v) in ranks.iter().take(5) {
        println!("  vertex {v}: {rank:.6}");
    }
    Ok(())
}
