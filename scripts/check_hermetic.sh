#!/usr/bin/env bash
# Hermetic-build gate (see DESIGN.md): the workspace must depend on no
# external crates, so that `cargo build`/`cargo test` succeed with an
# empty registry cache and CARGO_NET_OFFLINE=true. This script fails if
# a registry dependency sneaks back in, at either of two layers:
#
#   1. the resolved dependency graph (`cargo metadata`) must contain
#      only workspace packages, and
#   2. no Cargo.toml may declare a dependency that is not a path /
#      workspace dependency.
#
# Run from anywhere inside the repo: scripts/check_hermetic.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fail=0

# ---- Layer 1: the resolved graph contains only workspace members ----
# Workspace packages resolve with `(path+file://...)` source annotations
# in `cargo metadata`; anything else (registry, git) is external.
metadata=$(cargo metadata --format-version 1 --offline)
external=$(printf '%s' "$metadata" \
    | tr ',' '\n' \
    | grep -o '"id":"[^"]*"' \
    | grep -v 'path+file://' || true)
if [ -n "$external" ]; then
    echo "FAIL: non-path packages in the resolved dependency graph:" >&2
    echo "$external" | sed 's/^/  /' >&2
    fail=1
fi

# ---- Layer 2: no manifest declares a registry dependency ----
# Inside any [*dependencies*] section, every entry must be either a
# `workspace = true` reference, a `path = ...` dependency, or (in the
# root manifest) the path declarations themselves.
while IFS= read -r -d '' manifest; do
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /workspace[[:space:]]*=[[:space:]]*true/ &&
                $0 !~ /path[[:space:]]*=/) {
                print FILENAME ": " $0
            }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "FAIL: registry-style dependency declaration:" >&2
        echo "$bad" | sed 's/^/  /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*' -print0)

# ---- Layer 3: the lockfile lists only workspace versions ----
if [ -f Cargo.lock ] && grep -q 'source = "registry' Cargo.lock; then
    echo "FAIL: Cargo.lock pins registry packages:" >&2
    grep -B2 'source = "registry' Cargo.lock | sed 's/^/  /' >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "hermetic check FAILED — the workspace must build with zero external crates" >&2
    exit 1
fi
echo "hermetic check OK: dependency graph is workspace-only"
