#!/usr/bin/env bash
# Memory smoke check (see DESIGN.md §7): replicated EDB residency must be
# flat in the worker count.
#
# The shared-catalog data plane builds every replicated base relation
# exactly once and hands each worker an Arc to the same sealed copy, so
# the report's run-level `edb_replicated_bytes` at 4 workers must be
# within 1.1x of the 1-worker run. SG exercises this path (its `arc` is
# probed on both columns, so the planner replicates it); TC partitions
# its EDB and must report zero replicated bytes while its per-worker
# partitioned slices (`edb_resident_bytes`) stay roughly flat in total.
#
# Run from anywhere inside the repo: scripts/check_memory_smoke.sh
# Pass a prebuilt binary path as $1 to skip the cargo build.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
    export CARGO_NET_OFFLINE=true
    cargo build --release -p dcd-cli >&2
    BIN=target/release/dcdatalog
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# A two-level tree plus cross edges: SG derives real same-generation
# pairs and every strategy exchanges tuples at 4 workers.
awk 'BEGIN {
    for (i = 1; i <= 30; i++) print int((i - 1) / 3), i;
}' > "$workdir/tree.csv"
awk 'BEGIN { for (i = 0; i < 120; i++) print i % 40, (i * 7 + 1) % 40 }' \
    > "$workdir/edges.csv"

field() { # field <name> <file>: first integer value of a top-level field
    grep -o "\"$1\": [0-9]*" "$2" | head -1 | awk '{print $2}'
}

sum_field() { # sum_field <name> <file>: sum over per-worker entries
    grep -o "\"$1\":[0-9]*" "$2" | awk -F: '{s += $2} END {print s + 0}'
}

fail=0
for q in sg tc; do
    case "$q" in
        sg) edb="arc=$workdir/tree.csv" ;;
        tc) edb="arc=$workdir/edges.csv" ;;
    esac
    for w in 1 4; do
        "$BIN" run "programs/$q.dl" --edb "$edb" \
            --workers "$w" --limit 1 \
            --stats-json "$workdir/$q$w.json" > /dev/null
    done
    rep1=$(field edb_replicated_bytes "$workdir/${q}1.json")
    rep4=$(field edb_replicated_bytes "$workdir/${q}4.json")
    res1=$(sum_field edb_resident_bytes "$workdir/${q}1.json")
    res4=$(sum_field edb_resident_bytes "$workdir/${q}4.json")
    echo "$q: replicated ${rep1}B@1w ${rep4}B@4w, partitioned-total ${res1}B@1w ${res4}B@4w"
    case "$q" in
        sg)
            if [ "$rep1" -eq 0 ] || [ "$rep4" -eq 0 ]; then
                echo "FAIL(sg): expected a replicated EDB, got ${rep1}/${rep4} bytes" >&2
                fail=1
            fi
            # Within 1.1x of the 1-worker run (integer math: 10*rep4 <= 11*rep1).
            if [ $((10 * rep4)) -gt $((11 * rep1)) ]; then
                echo "FAIL(sg): replicated residency scaled with workers: ${rep1}B -> ${rep4}B" >&2
                fail=1
            fi
            ;;
        tc)
            if [ "$rep4" -ne 0 ]; then
                echo "FAIL(tc): partitioned EDB reported $rep4 replicated bytes" >&2
                fail=1
            fi
            if [ "$res4" -eq 0 ]; then
                echo "FAIL(tc): no partitioned EDB residency reported" >&2
                fail=1
            fi
            ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "memory smoke FAILED" >&2
    exit 1
fi
echo "memory smoke OK: replicated EDB residency is flat in the worker count"
