#!/usr/bin/env bash
# Metrics smoke check (see DESIGN.md §6): runs TC on 4 workers under all
# three coordination strategies with `--stats-json`, then validates the
# emitted EvalReport without any JSON tooling beyond grep/awk:
#
#   1. schema version and every per-worker counter field are present,
#   2. the report carries exactly --workers per_worker entries,
#   3. produced == consumed (the fixpoint/reconciliation invariant).
#
# Run from anywhere inside the repo: scripts/check_stats_json.sh
# Pass a prebuilt binary path as $1 to skip the cargo build.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
    export CARGO_NET_OFFLINE=true
    cargo build --release -p dcd-cli >&2
    BIN=target/release/dcdatalog
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# A small dense-ish graph: 120 edges over 40 vertices, cycles included,
# so every strategy does several iterations and real exchange.
awk 'BEGIN { for (i = 0; i < 120; i++) print i % 40, (i * 7 + 1) % 40 }' \
    > "$workdir/edges.csv"

fail=0
for strategy in global ssp:2 dws; do
    out="$workdir/stats_${strategy%%:*}.json"
    "$BIN" run programs/tc.dl \
        --edb arc="$workdir/edges.csv" \
        --workers 4 --strategy "$strategy" \
        --limit 1 --stats-json "$out" > /dev/null

    # -- Field presence --------------------------------------------------
    for field in schema strategy workers elapsed_ns produced consumed \
                 exchanged_bytes edb_replicated_bytes \
                 per_worker worker iterations tuples_processed tuples_sent \
                 batches_out batches_in tuples_in bytes_sent bytes_in \
                 edb_resident_bytes local_new \
                 backpressure_retries idle_ns omega_wait_ns gather_ns \
                 iterate_ns distribute_ns cache_hits cache_misses \
                 probe_hits probe_reuse kernel_batches kernel_rows \
                 rows_per_batch samples_dropped dws_samples \
                 dropped_events iteration_series; do
        if ! grep -q "\"$field\"" "$out"; then
            echo "FAIL($strategy): field \"$field\" missing from $out" >&2
            fail=1
        fi
    done

    # -- Schema version (4 = trace-aware report) -------------------------
    if ! grep -q '"schema": 4' "$out"; then
        echo "FAIL($strategy): report schema is not 4 in $out" >&2
        fail=1
    fi

    # -- Per-worker cardinality ------------------------------------------
    nworkers=$(grep -c '"worker":' "$out")
    if [ "$nworkers" -ne 4 ]; then
        echo "FAIL($strategy): expected 4 per_worker entries, got $nworkers" >&2
        fail=1
    fi

    # -- Reconciliation: produced == consumed ----------------------------
    produced=$(grep -o '"produced": [0-9]*' "$out" | awk '{print $2}')
    consumed=$(grep -o '"consumed": [0-9]*' "$out" | awk '{print $2}')
    if [ -z "$produced" ] || [ "$produced" != "$consumed" ]; then
        echo "FAIL($strategy): produced ($produced) != consumed ($consumed)" >&2
        fail=1
    fi

    # -- Byte accounting: producer and consumer totals agree -------------
    exchanged=$(grep -o '"exchanged_bytes": [0-9]*' "$out" | awk '{print $2}')
    bytes_in_total=$(grep -o '"bytes_in":[0-9]*' "$out" | awk -F: '{s += $2} END {print s + 0}')
    if [ -z "$exchanged" ] || [ "$exchanged" != "$bytes_in_total" ]; then
        echo "FAIL($strategy): exchanged_bytes ($exchanged) != sum bytes_in ($bytes_in_total)" >&2
        fail=1
    fi

    # -- DWS must carry ω/τ samples; the others must not -----------------
    samples=$(grep -c '"dws_samples":\[{' "$out" || true)
    case "$strategy" in
        dws)
            if [ "$samples" -eq 0 ]; then
                echo "FAIL(dws): no ω/τ samples recorded" >&2
                fail=1
            fi ;;
    esac

    echo "ok($strategy): produced=$produced consumed=$consumed workers=$nworkers"
done

if [ "$fail" -ne 0 ]; then
    echo "stats-json check FAILED" >&2
    exit 1
fi
echo "stats-json check OK: schema valid, counters reconcile"
