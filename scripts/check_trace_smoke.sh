#!/usr/bin/env bash
# Trace smoke check (see DESIGN.md §9): runs TC on 4 workers under DWS
# with `--trace-json` + `--stats-json`, plus the deterministic simulator
# with `--trace-json`, then validates both Chrome/Perfetto exports with
# no JSON tooling beyond grep/awk:
#
#   1. schema stamp, otherData (strategy/clock/workers/dropped_events)
#      and the traceEvents array are present,
#   2. one thread_name metadata track per worker plus the dws-controller
#      track,
#   3. phase spans (ph:"X") and instant marks (ph:"i") both occur and
#      carry the required name/ph/pid/tid/ts fields,
#   4. braces/brackets balance (cheap well-formedness; full parsing is
#      covered by the dcd-common JSON parser in the trace_e2e tests),
#   5. the engine export uses the ns clock, the simulator the tick
#      clock — same schema, comparable side by side,
#   6. the schema-4 stats JSON of the traced run carries a non-empty
#      iteration_series table.
#
# Run from anywhere inside the repo: scripts/check_trace_smoke.sh
# Pass a prebuilt binary path as $1 to skip the cargo build.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
    export CARGO_NET_OFFLINE=true
    cargo build --release -p dcd-cli >&2
    BIN=target/release/dcdatalog
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

awk 'BEGIN { for (i = 0; i < 120; i++) print i % 40, (i * 7 + 1) % 40 }' \
    > "$workdir/edges.csv"

"$BIN" run programs/tc.dl \
    --edb arc="$workdir/edges.csv" \
    --workers 4 --strategy dws --limit 1 \
    --stats-json "$workdir/stats.json" \
    --trace-json "$workdir/trace.json" > /dev/null

"$BIN" simulate --strategy dws --trace-json "$workdir/sim.json" > /dev/null

fail=0
check_trace() {
    local out="$1" clock="$2" label="$3"
    for field in '"schema": 1' '"displayTimeUnit"' '"otherData"' \
                 '"strategy"' '"workers"' '"dropped_events"' \
                 '"traceEvents"' '"ph":"X"' '"ph":"i"' \
                 '"name"' '"pid"' '"tid"' '"ts"' '"dur"'; do
        if ! grep -q "$field" "$out"; then
            echo "FAIL($label): $field missing from $out" >&2
            fail=1
        fi
    done
    if ! grep -q "\"clock\": \"$clock\"" "$out"; then
        echo "FAIL($label): clock is not \"$clock\"" >&2
        fail=1
    fi
    local nworkers w
    nworkers=$(grep -o '"workers": [0-9]*' "$out" | awk '{print $2}')
    if [ -z "$nworkers" ] || [ "$nworkers" -lt 1 ]; then
        echo "FAIL($label): otherData.workers missing" >&2
        fail=1
        nworkers=0
    fi
    w=0
    while [ "$w" -lt "$nworkers" ]; do
        if ! grep -q "\"name\":\"worker $w\"" "$out"; then
            echo "FAIL($label): missing worker $w track" >&2
            fail=1
        fi
        w=$((w + 1))
    done
    if ! grep -q '"name":"dws-controller"' "$out"; then
        echo "FAIL($label): missing dws-controller track" >&2
        fail=1
    fi
    local opens closes
    opens=$(grep -o '{' "$out" | wc -l)
    closes=$(grep -o '}' "$out" | wc -l)
    if [ "$opens" -ne "$closes" ]; then
        echo "FAIL($label): unbalanced braces ($opens vs $closes)" >&2
        fail=1
    fi
    opens=$(grep -o '\[' "$out" | wc -l)
    closes=$(grep -o '\]' "$out" | wc -l)
    if [ "$opens" -ne "$closes" ]; then
        echo "FAIL($label): unbalanced brackets ($opens vs $closes)" >&2
        fail=1
    fi
    echo "ok($label): $(grep -c '"ph":"X"' "$out") spans," \
         "$(grep -c '"ph":"i"' "$out") instants, clock=$clock"
}

check_trace "$workdir/trace.json" ns engine
check_trace "$workdir/sim.json" ticks simulator

# -- The traced run's stats JSON carries the iteration table -------------
if ! grep -q '"iteration_series": \[$' "$workdir/stats.json"; then
    echo 'FAIL(stats): traced run has an empty/missing iteration_series' >&2
    fail=1
fi
for col in rows_in rows_out queue_depth omega tau; do
    if ! grep -q "\"$col\"" "$workdir/stats.json"; then
        echo "FAIL(stats): iteration_series column \"$col\" missing" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "trace smoke FAILED" >&2
    exit 1
fi
echo "trace smoke OK: engine and simulator exports share the schema"
