#!/usr/bin/env bash
# Perf smoke check: re-times the TC 4-worker anchor workload with the
# baseline bin (filtered, so only that workload runs) and fails if its
# median wall time regressed more than 25% against the committed
# BENCH_baseline.json. This is a coarse gate — a CI container is noisy —
# meant to catch order-of-magnitude regressions in the Iterate hot path,
# not single-digit drift.
#
# Run from anywhere inside the repo: scripts/check_perf_smoke.sh
# Pass a prebuilt baseline binary path as $1 to skip the cargo build.

set -euo pipefail
cd "$(dirname "$0")/.."

ANCHOR_GROUP="baseline_tc"
ANCHOR_NAME="rmat256_workers4"
BUDGET_PCT=125 # new median may be at most 125% of the committed one

BIN="${1:-}"
if [ -z "$BIN" ]; then
    export CARGO_NET_OFFLINE=true
    cargo build --release -p dcd-bench --bin baseline >&2
    BIN=target/release/baseline
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# The baseline bin's records are single-line JSON objects, so the anchor's
# median is extractable with grep alone (no JSON tooling in CI).
extract_median() {
    grep -o "\"group\":\"$ANCHOR_GROUP\",\"name\":\"$ANCHOR_NAME\",\"median_ns\":[0-9]*" "$1" \
        | grep -o '[0-9]*$' || true
}

committed=$(extract_median BENCH_baseline.json)
if [ -z "$committed" ]; then
    echo "FAIL: anchor $ANCHOR_GROUP/$ANCHOR_NAME missing from BENCH_baseline.json" >&2
    exit 1
fi

"$BIN" "$workdir/now.json" "$ANCHOR_GROUP/$ANCHOR_NAME" >&2

current=$(extract_median "$workdir/now.json")
if [ -z "$current" ]; then
    echo "FAIL: anchor $ANCHOR_GROUP/$ANCHOR_NAME missing from the fresh run" >&2
    exit 1
fi

budget=$((committed * BUDGET_PCT / 100))
echo "perf smoke: $ANCHOR_GROUP/$ANCHOR_NAME committed=${committed}ns current=${current}ns budget=${budget}ns"
if [ "$current" -gt "$budget" ]; then
    echo "perf smoke FAILED: median ${current}ns exceeds ${BUDGET_PCT}% of the committed ${committed}ns" >&2
    exit 1
fi
echo "perf smoke OK: within budget"
